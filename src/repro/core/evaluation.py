"""Submission scoring.

"MIT Supercloud WCC submissions will be evaluated on classification
accuracy" (Section III-B).  A :class:`Submission` is just named predictions
for one dataset's test split; scoring validates shape and computes test
accuracy plus diagnostic per-class metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import ChallengeDataset
from repro.ml.metrics import accuracy_score, confusion_matrix, f1_score

__all__ = ["Submission", "evaluate_predictions", "evaluate_model"]


@dataclass
class Submission:
    """One challenge entry: predictions on a named dataset's test split."""

    entrant: str
    dataset_name: str
    predictions: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.predictions = np.asarray(self.predictions, dtype=np.int64)
        if self.predictions.ndim != 1:
            raise ValueError(
                f"predictions must be 1-D, got shape {self.predictions.shape}"
            )
        if not self.entrant:
            raise ValueError("entrant name must be non-empty")


def evaluate_predictions(
    dataset: ChallengeDataset, predictions: np.ndarray
) -> dict:
    """Score predictions against a dataset's test labels.

    Returns accuracy (the challenge metric), macro-F1 and the confusion
    matrix for diagnostics.
    """
    predictions = np.asarray(predictions, dtype=np.int64)
    if predictions.shape[0] != dataset.n_test:
        raise ValueError(
            f"{predictions.shape[0]} predictions for {dataset.n_test} test trials"
        )
    return {
        "dataset": dataset.name,
        "accuracy": accuracy_score(dataset.y_test, predictions),
        "macro_f1": f1_score(dataset.y_test, predictions, average="macro"),
        "confusion": confusion_matrix(
            dataset.y_test, predictions, n_classes=dataset.n_classes
        ),
        "n_test": dataset.n_test,
    }


def evaluate_model(model, dataset: ChallengeDataset) -> dict:
    """Fit a (pipeline) model on the train split and score the test split."""
    model.fit(dataset.X_train, dataset.y_train)
    return evaluate_predictions(dataset, model.predict(dataset.X_test))
