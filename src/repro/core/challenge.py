"""Top-level challenge object.

``WorkloadClassificationChallenge.from_simulation()`` is the one-call
entry point: simulate the labelled release, window it into the seven
datasets, and stand up the evaluation machinery — the synthetic analogue
of downloading the challenge data from https://dcc.mit.edu.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.evaluation import Submission, evaluate_model
from repro.core.leaderboard import Leaderboard, LeaderboardEntry
from repro.data.challenge import (
    CHALLENGE_DATASET_NAMES,
    WINDOW_SAMPLES,
    build_challenge_suite,
    load_challenge_suite,
    save_challenge_suite,
)
from repro.data.dataset import ChallengeDataset
from repro.data.labelled import build_labelled_dataset
from repro.simcluster.architectures import architecture_names
from repro.simcluster.cluster import SimulationConfig

__all__ = ["WorkloadClassificationChallenge"]


class WorkloadClassificationChallenge:
    """The MIT Supercloud WCC, reconstructed on synthetic telemetry."""

    def __init__(self, datasets: dict[str, ChallengeDataset]):
        if not datasets:
            raise ValueError("challenge needs at least one dataset")
        self.datasets = datasets
        self.leaderboard = Leaderboard(datasets)
        self.class_names = architecture_names()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_simulation(
        cls,
        sim_config: SimulationConfig | None = None,
        *,
        window: int = WINDOW_SAMPLES,
        test_fraction: float = 0.2,
        split_seed: int = 0,
        names: tuple[str, ...] = CHALLENGE_DATASET_NAMES,
    ) -> "WorkloadClassificationChallenge":
        """Simulate a labelled release and window it into challenge datasets."""
        labelled = build_labelled_dataset(sim_config)
        suite = build_challenge_suite(
            labelled, window=window, test_fraction=test_fraction,
            seed=split_seed, names=names,
        )
        return cls(suite)

    @classmethod
    def from_directory(cls, directory: str | Path,
                       names: tuple[str, ...] = CHALLENGE_DATASET_NAMES
                       ) -> "WorkloadClassificationChallenge":
        """Load a previously saved release (npz files)."""
        return cls(load_challenge_suite(directory, names))

    def save(self, directory: str | Path) -> list[Path]:
        """Persist all datasets as npz archives in a directory."""
        return save_challenge_suite(self.datasets, directory)

    # ------------------------------------------------------------------
    # Access & evaluation
    # ------------------------------------------------------------------
    def dataset(self, name: str) -> ChallengeDataset:
        """Look up one challenge dataset by name."""
        try:
            return self.datasets[name]
        except KeyError:
            raise KeyError(
                f"unknown dataset {name!r}; available: {sorted(self.datasets)}"
            ) from None

    def dataset_names(self) -> list[str]:
        """Names of the datasets in this challenge instance."""
        return list(self.datasets)

    def evaluate(self, model, dataset_name: str) -> dict:
        """Fit + test-score a model on one dataset (challenge protocol)."""
        return evaluate_model(model, self.dataset(dataset_name))

    def submit(self, entrant: str, dataset_name: str, predictions) -> LeaderboardEntry:
        """Score a prediction vector and record it on the leaderboard."""
        return self.leaderboard.submit(
            Submission(entrant=entrant, dataset_name=dataset_name,
                       predictions=predictions)
        )

    def summary(self) -> str:
        """Table IV analogue for this instance's datasets."""
        from repro.data.stats import challenge_suite_table, format_table

        return format_table(challenge_suite_table(self.datasets))
