"""Challenge leaderboard: scored submissions ranked by accuracy."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluation import Submission, evaluate_predictions
from repro.data.dataset import ChallengeDataset

__all__ = ["LeaderboardEntry", "Leaderboard"]


@dataclass(frozen=True)
class LeaderboardEntry:
    """One scored submission on the board."""

    entrant: str
    dataset_name: str
    accuracy: float
    macro_f1: float


@dataclass
class Leaderboard:
    """Accepts submissions for a suite of datasets and ranks them.

    The paper's baselines seed the board; challengers aim to exceed them
    ("the goal is to achieve an accuracy exceeding those presented in
    Sections IV and V").
    """

    datasets: dict[str, ChallengeDataset]
    entries: list[LeaderboardEntry] = field(default_factory=list)

    def submit(self, submission: Submission) -> LeaderboardEntry:
        """Score a submission and add it to the board."""
        if submission.dataset_name not in self.datasets:
            raise KeyError(
                f"unknown dataset {submission.dataset_name!r}; available: "
                f"{sorted(self.datasets)}"
            )
        dataset = self.datasets[submission.dataset_name]
        result = evaluate_predictions(dataset, submission.predictions)
        entry = LeaderboardEntry(
            entrant=submission.entrant,
            dataset_name=submission.dataset_name,
            accuracy=result["accuracy"],
            macro_f1=result["macro_f1"],
        )
        self.entries.append(entry)
        return entry

    def ranking(self, dataset_name: str | None = None) -> list[LeaderboardEntry]:
        """Entries sorted by accuracy (optionally for one dataset)."""
        pool = [
            e for e in self.entries
            if dataset_name is None or e.dataset_name == dataset_name
        ]
        return sorted(pool, key=lambda e: e.accuracy, reverse=True)

    def best(self, dataset_name: str) -> LeaderboardEntry | None:
        """Highest-accuracy entry for the dataset, if any."""
        ranked = self.ranking(dataset_name)
        return ranked[0] if ranked else None

    def format(self, dataset_name: str | None = None) -> str:
        """Render the ranked board as an aligned text table."""
        rows = self.ranking(dataset_name)
        if not rows:
            return "(no submissions)"
        lines = [f"{'rank':<5} {'entrant':<28} {'dataset':<14} {'acc %':>7} {'mF1':>6}"]
        for i, e in enumerate(rows, 1):
            lines.append(
                f"{i:<5} {e.entrant:<28} {e.dataset_name:<14} "
                f"{100 * e.accuracy:>7.2f} {e.macro_f1:>6.3f}"
            )
        return "\n".join(lines)
