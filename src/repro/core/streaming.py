"""Online classification of live workloads.

The paper's deployment vision (Section VI): models that "classify snapshots
of data from live workloads running in-progress".  This module wraps any
fitted window classifier into a streaming consumer: telemetry samples
arrive incrementally, a sliding 60-second buffer re-classifies on a
configurable hop, and predictions are smoothed over time (majority vote
with confidence), exactly how an operator-facing service would run.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.simcluster.sensors import N_GPU_SENSORS

__all__ = ["StreamPrediction", "OnlineWorkloadClassifier"]


@dataclass(frozen=True)
class StreamPrediction:
    """One emission of the online classifier."""

    sample_index: int          # stream position at emission time
    label: int                 # current window's predicted class
    smoothed_label: int        # majority vote over the vote window
    confidence: float          # fraction of recent votes agreeing


@dataclass
class OnlineWorkloadClassifier:
    """Sliding-window streaming wrapper around a fitted window model.

    Parameters
    ----------
    model:
        Fitted estimator with ``predict`` on ``(n, window, sensors)``
        tensors (any pipeline from :mod:`repro.models` qualifies).
    window:
        Samples per classification window (540 for the challenge models).
    hop:
        Re-classify every ``hop`` new samples once the buffer is full.
    vote_window:
        Number of recent window predictions pooled by the majority vote.
    monitor:
        Optional per-sample tap with an ``update(row)`` method (e.g. a
        :class:`~repro.monitor.drift.SensorDriftDetector`): every pushed
        row is forwarded to it, so single-stream deployments get drift
        detection without a second consumer of the telemetry.
    """

    model: object
    window: int = 540
    hop: int = 90
    vote_window: int = 5
    monitor: object = None
    _buffer: deque = field(default=None, repr=False)
    _since_last: int = field(default=0, repr=False)
    _votes: deque = field(default=None, repr=False)
    _n_seen: int = field(default=0, repr=False)

    def __post_init__(self):
        if self.window < 1 or self.hop < 1 or self.vote_window < 1:
            raise ValueError("window, hop and vote_window must be >= 1")
        if not hasattr(self.model, "predict"):
            raise TypeError("model must expose predict()")
        if self.monitor is not None and not hasattr(self.monitor, "update"):
            raise TypeError("monitor must expose update(row)")
        # deques with maxlen make the per-sample slide O(1); the old
        # list.pop(0) cost O(window) per sample.
        self._buffer = deque(maxlen=self.window)
        self._votes = deque(maxlen=self.vote_window)

    # ------------------------------------------------------------------
    def push(self, samples: np.ndarray) -> list[StreamPrediction]:
        """Feed new telemetry samples; returns any predictions emitted.

        ``samples`` is ``(k, n_sensors)`` — one or more new rows of the
        live series, in time order.  Bulk blocks are consumed segment by
        segment (each segment runs to the next emission point), extending
        the buffer once per segment instead of once per row; emissions
        are identical to pushing the same rows one at a time, which the
        parity suite pins.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        if samples.shape[1] != N_GPU_SENSORS:
            raise ValueError(
                f"expected {N_GPU_SENSORS} sensors per sample, "
                f"got {samples.shape[1]}"
            )
        out: list[StreamPrediction] = []
        pos, n = 0, samples.shape[0]
        while pos < n:
            # Rows until the next possible emission: fill the buffer,
            # then honor the hop (the first-ever window emits as soon as
            # the buffer fills).
            need_full = self.window - len(self._buffer)
            if self._votes:
                due = max(need_full, self.hop - self._since_last, 1)
            else:
                due = max(need_full, 1)
            block = samples[pos : pos + due]
            pos += block.shape[0]
            if self.monitor is not None:
                for row in block:
                    self.monitor.update(row)
            self._buffer.extend(block)
            self._n_seen += block.shape[0]
            self._since_last += block.shape[0]
            if len(self._buffer) == self.window and (
                self._since_last >= self.hop or len(self._votes) == 0
            ):
                out.append(self._classify())
                self._since_last = 0
        return out

    def _classify(self) -> StreamPrediction:
        window = np.stack(self._buffer)[None, :, :]
        label = int(np.asarray(self.model.predict(window))[0])
        self._votes.append(label)
        counts = Counter(self._votes)
        smoothed, n_agree = counts.most_common(1)[0]
        return StreamPrediction(
            sample_index=self._n_seen,
            label=label,
            smoothed_label=int(smoothed),
            confidence=n_agree / len(self._votes),
        )

    def reset(self) -> None:
        """Clear buffered samples and votes (e.g. when a new job starts)."""
        self._buffer.clear()
        self._votes.clear()
        self._since_last = 0
        self._n_seen = 0

    @property
    def ready(self) -> bool:
        """Whether a full window has been buffered."""
        return len(self._buffer) == self.window
