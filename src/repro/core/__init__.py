"""The Workload Classification Challenge itself (paper Section III).

:class:`WorkloadClassificationChallenge` bundles the seven datasets, the
evaluation protocol (test accuracy on held-out trials), a submission
scorer with a leaderboard, and harnesses that run the paper's baseline
models end-to-end.
"""

from repro.core.challenge import WorkloadClassificationChallenge
from repro.core.evaluation import Submission, evaluate_predictions, evaluate_model
from repro.core.leaderboard import Leaderboard, LeaderboardEntry
from repro.core.baselines import (
    run_rnn_baseline,
    run_traditional_baseline,
    run_xgboost_baseline,
)
from repro.core.streaming import OnlineWorkloadClassifier, StreamPrediction

__all__ = [
    "WorkloadClassificationChallenge",
    "Submission",
    "evaluate_predictions",
    "evaluate_model",
    "Leaderboard",
    "LeaderboardEntry",
    "run_traditional_baseline",
    "run_xgboost_baseline",
    "run_rnn_baseline",
    "OnlineWorkloadClassifier",
    "StreamPrediction",
]
