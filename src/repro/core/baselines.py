"""End-to-end baseline harnesses used by the benchmarks and examples.

These functions run exactly the experiments of Sections IV and V against a
challenge instance and return dictionaries shaped like the paper's tables.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.challenge import WorkloadClassificationChallenge
from repro.ml.metrics import accuracy_score
from repro.ml.model_selection import GridSearchCV
from repro.ml.preprocessing import TimeSeriesStandardScaler
from repro.models.cnn_lstm import CNNLSTMClassifier
from repro.models.lstm_baseline import LSTMClassifier
from repro.models.traditional import make_xgb_cov, traditional_grid
from repro.nn import Adam, CyclicCosineLR, NLLLoss, Trainer

__all__ = ["run_traditional_baseline", "run_xgboost_baseline", "run_rnn_baseline"]


def run_traditional_baseline(
    challenge: WorkloadClassificationChallenge,
    model: str,
    dataset_name: str,
    *,
    cv: int = 10,
    pca_dims: tuple[int, ...] | None = None,
    rf_trees: tuple[int, ...] | None = None,
    random_state: int = 0,
) -> dict:
    """One Table V cell: grid-search one model on one dataset, test-score it.

    ``model`` ∈ {"svm_pca", "svm_cov", "rf_pca", "rf_cov"}; ``cv=10``
    matches the paper's 10-fold grid search (reduce for quick runs).
    ``pca_dims`` defaults to the paper's {28, 64, 256, 512}, automatically
    capped at the training-set size for reduced-scale runs.
    """
    ds = challenge.dataset(dataset_name)
    kwargs = {}
    if pca_dims is not None:
        kwargs["pca_dims"] = pca_dims
    elif model.endswith("_pca"):
        from repro.models.traditional import PAPER_PCA_DIMS

        # PCA inside CV fits on (cv-1)/cv of the training trials; cap the
        # component grid so every fold stays full-rank.
        fold_train = ds.n_train * (cv - 1) // cv
        cap = min(fold_train, ds.n_samples * ds.n_sensors)
        kwargs["pca_dims"] = tuple(d for d in PAPER_PCA_DIMS if d <= cap) or (
            min(28, cap),)
    if rf_trees is not None:
        kwargs["rf_trees"] = rf_trees
    pipeline, grid = traditional_grid(model, **kwargs)
    search = GridSearchCV(pipeline, grid, cv=cv, random_state=random_state)
    tic = time.perf_counter()
    search.fit(ds.X_train, ds.y_train)
    fit_seconds = time.perf_counter() - tic
    tic = time.perf_counter()
    test_acc = accuracy_score(ds.y_test, search.predict(ds.X_test))
    return {
        "model": model,
        "dataset": dataset_name,
        "test_accuracy": test_acc,
        "cv_accuracy": search.best_score_,
        "best_params": search.best_params_,
        "fit_seconds": fit_seconds,
        "predict_seconds": time.perf_counter() - tic,
    }


def run_xgboost_baseline(
    challenge: WorkloadClassificationChallenge,
    dataset_name: str = "60-random-1",
    *,
    cv: int = 5,
    grid: dict | None = None,
    n_estimators: int = 40,
    random_state: int = 0,
) -> dict:
    """The Section IV-B experiment: XGBoost + covariance on 60-random-1.

    Returns the test accuracy, the round-by-round train/test curves (the
    plateau analysis) and gain-ranked covariance feature importances.
    """
    from repro.ml.preprocessing import covariance_feature_names
    from repro.models.traditional import PAPER_XGB_GRID

    ds = challenge.dataset(dataset_name)
    pipeline = make_xgb_cov(n_estimators=n_estimators, random_state=random_state)
    search = GridSearchCV(pipeline, grid or PAPER_XGB_GRID, cv=cv,
                          random_state=random_state)
    tic = time.perf_counter()
    search.fit(ds.X_train, ds.y_train)
    fit_seconds = time.perf_counter() - tic
    best = search.best_estimator_
    test_acc = accuracy_score(ds.y_test, best.predict(ds.X_test))

    # Round-by-round curves from the refit best model.
    clf = best["clf"]
    X_train_feat = best._transform_through(ds.X_train, upto=2)
    X_test_feat = best._transform_through(ds.X_test, upto=2)
    train_curve = clf.staged_accuracy(X_train_feat, ds.y_train)
    test_curve = clf.staged_accuracy(X_test_feat, ds.y_test)

    names = covariance_feature_names()
    importances = clf.feature_importances_
    ranked = sorted(zip(names, importances), key=lambda t: t[1], reverse=True)
    return {
        "model": "xgb_cov",
        "dataset": dataset_name,
        "test_accuracy": test_acc,
        "cv_accuracy": search.best_score_,
        "best_params": search.best_params_,
        "train_curve": train_curve,
        "test_curve": test_curve,
        "feature_importance": ranked,
        "fit_seconds": fit_seconds,
    }


def run_rnn_baseline(
    challenge: WorkloadClassificationChallenge,
    variant: str,
    dataset_name: str,
    *,
    hidden_size: int = 128,
    n_layers: int = 1,
    kernel_size: int = 7,
    stride: int = 2,
    max_epochs: int = 30,
    patience: int = 10,
    batch_size: int = 32,
    lr: float = 2e-3,
    cycle_len: int = 10,
    time_stride: int = 1,
    seed: int = 0,
    verbose: bool = False,
) -> dict:
    """One Table VI cell: train one RNN variant on one dataset.

    ``variant`` ∈ {"lstm", "cnn_lstm"}.  Data is standardized per sensor
    (the paper's only preprocessing).  ``time_stride`` optionally
    subsamples the window in time for CPU-budget runs (recorded in the
    result).  Following the paper, the reported accuracy is the best
    validation (test-split) accuracy over epochs.
    """
    ds = challenge.dataset(dataset_name)
    scaler = TimeSeriesStandardScaler()
    X_train = scaler.fit_transform(ds.X_train).astype(np.float32)
    X_test = scaler.transform(ds.X_test).astype(np.float32)
    if time_stride > 1:
        X_train = np.ascontiguousarray(X_train[:, ::time_stride])
        X_test = np.ascontiguousarray(X_test[:, ::time_stride])
    seq_len = X_train.shape[1]
    n_classes = int(max(ds.y_train.max(), ds.y_test.max())) + 1

    if variant == "lstm":
        model = LSTMClassifier(
            n_sensors=ds.n_sensors, seq_len=seq_len, n_classes=n_classes,
            hidden_size=hidden_size, n_layers=n_layers, seed=seed,
        )
    elif variant == "cnn_lstm":
        model = CNNLSTMClassifier(
            n_sensors=ds.n_sensors, seq_len=seq_len, n_classes=n_classes,
            hidden_size=hidden_size, kernel_size=kernel_size, stride=stride,
            seed=seed,
        )
    else:
        raise ValueError(f"variant must be 'lstm' or 'cnn_lstm', got {variant!r}")

    optimizer = Adam(model.parameters(), lr=lr)
    scheduler = CyclicCosineLR(optimizer, cycle_len=cycle_len)
    trainer = Trainer(
        model, optimizer, NLLLoss(), scheduler=scheduler,
        batch_size=batch_size, max_epochs=max_epochs, patience=patience,
        shuffle_rng=seed, verbose=verbose,
    )
    tic = time.perf_counter()
    history = trainer.fit(X_train, ds.y_train, X_test, ds.y_test)
    return {
        "model": f"{variant}(h={hidden_size}"
                 + (f", {n_layers}-layer" if variant == "lstm" else
                    f", k={kernel_size}, s={stride}") + ")",
        "dataset": dataset_name,
        "test_accuracy": history.best_val_accuracy,
        "best_epoch": history.best_epoch,
        "epochs_run": len(history.epochs),
        "time_stride": time_stride,
        "fit_seconds": time.perf_counter() - tic,
        "history": history,
        "n_parameters": model.n_parameters(),
    }
