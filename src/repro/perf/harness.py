"""Timing/throughput measurement core for ``repro perf-bench``.

Deliberately tiny: a bench is any zero-argument callable; :func:`measure`
runs it ``warmup`` times untimed (JIT-free Python still benefits — caches
warm, lazy imports resolve, scratch buffers allocate), then ``repeats``
timed runs, and reports the median (p50) and p95 wall-clock seconds, the
throughput implied by the median, and the max-RSS growth across the timed
runs.

Results serialize to the committed ``BENCH_*.json`` schema::

    {"bench": ..., "config": {...}, "samples_per_s": ...,
     "p50_s": ..., "p95_s": ..., "rss_mb": ...}

so regressions diff as JSON.  RSS uses ``getrusage``'s high-water mark:
it only ever grows, so the delta is "new peak memory this bench forced",
not instantaneous usage — 0.0 is the common (good) value for benches that
reuse scratch buffers.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = ["BenchResult", "ParityError", "measure", "write_bench_json", "rss_mb"]


class ParityError(AssertionError):
    """A fast path diverged from its slow reference implementation."""


def rss_mb() -> float:
    """Max resident set size so far, in MiB (Linux reports KiB)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":        # macOS reports bytes
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass(frozen=True)
class BenchResult:
    """One bench's measurement in the committed JSON schema."""

    bench: str
    config: dict = field(default_factory=dict)
    samples_per_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    rss_mb: float = 0.0

    def to_dict(self) -> dict:
        """The result as a plain dict (the BENCH_*.json entry)."""
        return asdict(self)

    def __str__(self) -> str:
        return (f"{self.bench:<28s} {self.samples_per_s:12.1f}/s  "
                f"p50 {self.p50_s * 1e3:9.2f} ms  "
                f"p95 {self.p95_s * 1e3:9.2f} ms  "
                f"+{self.rss_mb:.1f} MiB")


def measure(
    fn: Callable[[], object],
    *,
    bench: str,
    n_samples: int,
    config: dict | None = None,
    warmup: int = 1,
    repeats: int = 5,
) -> BenchResult:
    """Time ``fn`` and return its :class:`BenchResult`.

    ``n_samples`` is the work per call (rows classified, telemetry
    samples pushed, jobs generated); throughput is ``n_samples / p50``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    rss_before = rss_mb()
    times = np.empty(repeats)
    for r in range(repeats):
        tic = time.perf_counter()
        fn()
        times[r] = time.perf_counter() - tic
    rss_after = rss_mb()
    p50 = float(np.percentile(times, 50))
    p95 = float(np.percentile(times, 95))
    return BenchResult(
        bench=bench,
        config=dict(config or {}),
        samples_per_s=float(n_samples / p50) if p50 > 0 else float("inf"),
        p50_s=p50,
        p95_s=p95,
        rss_mb=max(0.0, rss_after - rss_before),
    )


def write_bench_json(path: str | Path, results: list[BenchResult]) -> Path:
    """Write one BENCH_*.json file (a JSON array in the schema above)."""
    path = Path(path)
    path.write_text(
        json.dumps([r.to_dict() for r in results], indent=2) + "\n"
    )
    return path
