"""Performance regression harness (``repro perf-bench``).

Times the repo's serving, training, and inference hot paths against the
slow reference implementations they replaced, gates on bit-identical
predictions, and writes the committed ``BENCH_*.json`` baselines.
"""

from repro.perf.benches import (
    bench_boosting,
    bench_datagen,
    bench_forest,
    bench_lstm,
    bench_serve,
    run_perf_suite,
)
from repro.perf.harness import (
    BenchResult,
    ParityError,
    measure,
    rss_mb,
    write_bench_json,
)
from repro.perf.train_bench import (
    check_fused_gradient_parity,
    check_parallel_trajectory,
    run_train_bench,
)

__all__ = [
    "BenchResult",
    "ParityError",
    "measure",
    "rss_mb",
    "write_bench_json",
    "bench_forest",
    "bench_boosting",
    "bench_lstm",
    "bench_datagen",
    "bench_serve",
    "run_perf_suite",
    "run_train_bench",
    "check_fused_gradient_parity",
    "check_parallel_trajectory",
]
