"""The ``repro train-bench`` suite: fused-kernel and data-parallel gates.

Three families of checks, all riding the :mod:`repro.perf.harness`
conventions:

1. **Fused-vs-slow gradient parity.**  Every layer with a fused backward
   (``Linear``, ``Conv1d``, ``MaxPool1d``, ``LSTM``, ``BiLSTM``) is run
   against its retained slow reference on the same inputs and cotangents;
   any gradient that is not *bit-identical* raises
   :class:`~repro.perf.harness.ParityError` (nonzero CLI exit).  A
   two-epoch whole-model training run (all-fused vs all-slow) gates the
   composition end to end.

2. **Serial-vs-parallel trajectory parity.**  The same model is trained
   with the in-process sharded path and with worker pools at several
   ``n_jobs``; histories and final parameters must match bit-for-bit.

3. **Throughput.**  ``lstm.train.epoch`` re-measures the committed
   single-process baseline shape; ``lstm.train.epoch.j4`` weak-scales it
   (shard of 256 samples per worker, global batch = shard × n_jobs) over
   the persistent worker pool; datagen serial vs chunked-parallel rides
   along.  Numbers land in ``BENCH_train.json``.
"""

from __future__ import annotations

import numpy as np

from repro.perf.harness import BenchResult, ParityError, measure

__all__ = [
    "BASELINE_TRAIN_SAMPLES_PER_S",
    "check_fused_gradient_parity",
    "check_parallel_trajectory",
    "bench_train_throughput",
    "run_train_bench",
]

#: The committed pre-fusion single-process baseline (BENCH_train.json at
#: the time the fused kernels landed); the throughput gates are multiples
#: of this number.
BASELINE_TRAIN_SAMPLES_PER_S = 906.6


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise ParityError(f"divergence: {what}")


# ----------------------------------------------------------------------
# 1. fused-vs-slow gradient parity
# ----------------------------------------------------------------------
def _grad_parity_case(make_layer, x_shape: tuple, seed: int, what: str) -> None:
    """Twin layers (same init), same input/cotangent, bitwise-equal grads."""
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(seed)
    x_data = rng.standard_normal(x_shape).astype(np.float32)
    grads = {}
    for fused in (True, False):
        layer = make_layer()
        layer.fused_backward = fused
        x = Tensor(x_data.copy(), requires_grad=True)
        out = layer(x)
        cot = np.random.default_rng(seed + 1) \
            .standard_normal(out.shape).astype(np.float32)
        out.backward(cot)
        grads[fused] = {
            **{name: p.grad.copy() for name, p in layer.named_parameters()},
            "__x__": x.grad.copy(),
        }
    for name in grads[True]:
        _require(
            np.array_equal(grads[True][name], grads[False][name]),
            f"{what}: gradient of {name} (fused vs slow)",
        )


def check_fused_gradient_parity(seed: int = 0) -> list[str]:
    """Bitwise fused-vs-slow gradient parity for every fused layer.

    Returns the list of checked case names; raises
    :class:`~repro.perf.harness.ParityError` on the first divergence.
    """
    from repro.nn.layers.conv import Conv1d, MaxPool1d
    from repro.nn.layers.linear import Linear
    from repro.nn.layers.rnn import BiLSTM, LSTM

    cases = [
        ("linear.2d", lambda: Linear(13, 7, rng=seed), (8, 13)),
        ("linear.3d", lambda: Linear(5, 9, rng=seed), (4, 6, 5)),
        ("linear.nobias", lambda: Linear(13, 7, bias=False, rng=seed), (8, 13)),
        ("conv1d.k5", lambda: Conv1d(7, 11, 5, rng=seed), (4, 30, 7)),
        ("conv1d.same", lambda: Conv1d(7, 11, 5, padding="same", rng=seed),
         (4, 30, 7)),
        ("conv1d.stride2", lambda: Conv1d(3, 4, 3, stride=2, rng=seed),
         (2, 19, 3)),
        ("maxpool.k2", lambda: MaxPool1d(2), (4, 30, 7)),
        ("maxpool.k3s2", lambda: MaxPool1d(3, stride=2), (4, 30, 7)),
        ("lstm", lambda: LSTM(7, 12, rng=seed), (5, 17, 7)),
        ("bilstm", lambda: BiLSTM(7, 12, rng=seed), (5, 17, 7)),
    ]
    for what, make_layer, x_shape in cases:
        _grad_parity_case(make_layer, x_shape, seed, what)

    _whole_model_parity(seed)
    return [c[0] for c in cases] + ["model.2epoch"]


def _make_classifier(seed: int, *, dropout: float = 0.5, t: int = 20,
                     hidden: int = 16, k: int = 5):
    from repro.models import LSTMClassifier

    return LSTMClassifier(n_sensors=7, seq_len=t, n_classes=k,
                          hidden_size=hidden, dropout=dropout, seed=seed)


def _fit_history(trainer, X, y, Xv, yv):
    hist = trainer.fit(X, y, Xv, yv)
    return (
        [(e.epoch, e.train_loss, e.val_accuracy, e.lr) for e in hist.epochs],
        {n: p.data.copy() for n, p in trainer.model.named_parameters()},
    )


def _train_data(seed: int, n: int = 64, t: int = 20, k: int = 5):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, t, 7)).astype(np.float32)
    y = rng.integers(0, k, size=n).astype(np.int64)
    return X, y, X[: n // 4], y[: n // 4]


def _whole_model_parity(seed: int) -> None:
    """Two training epochs, all layers fused vs all slow: same trajectory."""
    from repro.nn import Adam, NLLLoss, Trainer

    X, y, Xv, yv = _train_data(seed)
    runs = {}
    for fused in (True, False):
        model = _make_classifier(seed)
        for m in model.modules():
            if hasattr(m, "fused_backward"):
                m.fused_backward = fused
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), NLLLoss(),
                          batch_size=16, max_epochs=2, patience=100,
                          shuffle_rng=seed)
        runs[fused] = _fit_history(trainer, X, y, Xv, yv)
    _require(runs[True][0] == runs[False][0],
             "model.2epoch: loss/accuracy trajectory (fused vs slow)")
    for name in runs[True][1]:
        _require(np.array_equal(runs[True][1][name], runs[False][1][name]),
                 f"model.2epoch: final parameter {name} (fused vs slow)")


# ----------------------------------------------------------------------
# 2. serial-vs-parallel trajectory parity
# ----------------------------------------------------------------------
def check_parallel_trajectory(seed: int = 0,
                              worker_counts: tuple[int, ...] = (2, 4)) -> list[str]:
    """Sharded training must be a pure function of ``shard_size``.

    Gates, all bitwise: the unsharded loop vs one-shard batches
    (dropout-free model), and the in-process sharded path vs a worker
    pool at every count in ``worker_counts`` (dropout on, pinned
    ``shard_size``).
    """
    from repro.nn import Adam, NLLLoss, Trainer

    X, y, Xv, yv = _train_data(seed)
    checked = []

    def run(n_jobs, shard_size, dropout):
        model = _make_classifier(seed, dropout=dropout)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), NLLLoss(),
                          batch_size=16, max_epochs=2, patience=100,
                          shuffle_rng=seed, n_jobs=n_jobs,
                          shard_size=shard_size)
        with trainer:
            return _fit_history(trainer, X, y, Xv, yv)

    legacy = run(1, None, 0.0)
    one_shard = run(1, 16, 0.0)
    _require(legacy[0] == one_shard[0],
             "one-shard sharded vs classic loop (dropout-free)")
    for name in legacy[1]:
        _require(np.array_equal(legacy[1][name], one_shard[1][name]),
                 f"one-shard final parameter {name} vs classic loop")
    checked.append("sharded.oneshard")

    reference = run(1, 4, 0.5)
    for n_jobs in worker_counts:
        pooled = run(n_jobs, 4, 0.5)
        _require(reference[0] == pooled[0],
                 f"trajectory at n_jobs={n_jobs} vs in-process shards")
        for name in reference[1]:
            _require(np.array_equal(reference[1][name], pooled[1][name]),
                     f"final parameter {name} at n_jobs={n_jobs}")
        checked.append(f"sharded.j{n_jobs}")
    return checked


# ----------------------------------------------------------------------
# 3. throughput
# ----------------------------------------------------------------------
def bench_train_throughput(
    scale: float = 1.0, *, warmup: int = 1, repeats: int = 3,
    n_jobs: int = 4, seed: int = 0,
) -> list[BenchResult]:
    """Training throughput: baseline shape, then weak-scaled data-parallel.

    ``lstm.train.epoch`` reproduces the committed baseline protocol
    exactly (model built inside the timed region, batch 32, one epoch
    incl. validation).  The ``.sharded`` / ``.j{n}`` variants weak-scale:
    256-sample shards, global batch = shard × ``n_jobs``, measured on a
    pre-warmed persistent pool — per-worker work stays constant as
    workers are added, the honest scaling convention for a batch-size-
    dependent optimizer trajectory.
    """
    from repro.models import LSTMClassifier
    from repro.nn import Adam, NLLLoss, Trainer

    t, sensors, k, hidden = 96, 7, 26, 32
    n = max(16, int(256 * scale))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, t, sensors)).astype(np.float32)
    y = rng.integers(0, k, size=n)
    Xv, yv = X[: max(8, n // 8)], y[: max(8, n // 8)]
    cfg = {"n": n, "t": t, "sensors": sensors, "hidden": hidden, "k": k}

    def make_model() -> LSTMClassifier:
        return LSTMClassifier(n_sensors=sensors, seq_len=t, n_classes=k,
                              hidden_size=hidden, seed=seed)

    def train_epoch():
        model = make_model()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), NLLLoss(),
                          batch_size=32, max_epochs=1, patience=10,
                          shuffle_rng=seed)
        trainer.fit(X, y, Xv, yv)

    results = [
        measure(train_epoch, bench="lstm.train.epoch", n_samples=n,
                config=cfg, warmup=min(warmup, 1), repeats=repeats),
    ]

    # Weak-scaled data-parallel epochs: shard 256 (scaled), batch grows
    # with the worker count, the pool spawn cost sits outside the timed
    # region (workers persist across epochs — the steady state that
    # matters for a 100-epoch fit).
    shard = max(16, int(256 * scale))
    n_par = max(4 * shard, int(2048 * scale))
    Xp = rng.normal(size=(n_par, t, sensors)).astype(np.float32)
    yp = rng.integers(0, k, size=n_par)
    Xpv, ypv = Xp[: max(8, n_par // 8)], yp[: max(8, n_par // 8)]

    for jobs in (1, n_jobs):
        batch = shard * max(jobs, 4)  # same global batch at every n_jobs
        model = make_model()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), NLLLoss(),
                          batch_size=batch, max_epochs=1, patience=10,
                          shuffle_rng=seed, n_jobs=jobs, shard_size=shard)
        suffix = "sharded" if jobs == 1 else f"j{jobs}"
        pcfg = {**cfg, "n": n_par, "batch": batch, "shard": shard,
                "n_jobs": jobs}
        with trainer:
            results.append(measure(
                lambda: trainer.fit(Xp, yp, Xpv, ypv),
                bench=f"lstm.train.epoch.{suffix}", n_samples=n_par,
                config=pcfg, warmup=max(warmup, 1), repeats=repeats,
            ))
    return results


# ----------------------------------------------------------------------
def _bench_datagen_paired(
    scale: float, *, repeats: int = 5, n_jobs: int = 2, seed: int = 2022,
) -> list[BenchResult]:
    """Serial vs chunked-parallel datagen, *interleaved* timing.

    :func:`repro.perf.benches.bench_datagen` times the two paths in
    separate windows, so a background-load spike lands on one side only.
    Here each repeat times the two back to back, alternating which runs
    first — noise and allocator/cache order effects hit both sides, and
    the committed serial/parallel ratio reflects dispatch cost, not
    scheduler weather.  Parity is gated exactly as in the original.
    """
    import time

    from repro.simcluster.cluster import ClusterSimulator, SimulationConfig

    cfg = SimulationConfig(seed=seed, trials_scale=max(0.005, 0.03 * scale))
    sim = ClusterSimulator(cfg)
    n_gen = len(sim.job_plan())

    s_jobs, _ = sim.generate()
    p_jobs, _ = sim.generate(n_jobs=n_jobs)
    same = len(s_jobs) == len(p_jobs) and all(
        a.record == b.record
        and all(np.array_equal(ga.data, gb.data)
                for ga, gb in zip(a.gpu_series, b.gpu_series))
        for a, b in zip(s_jobs, p_jobs)
    )
    _require(same, f"parallel datagen at n_jobs={n_jobs}")
    del s_jobs, p_jobs

    t_serial = np.empty(repeats)
    t_par = np.empty(repeats)
    for r in range(repeats):
        first_serial = r % 2 == 0
        for serial_side in (first_serial, not first_serial):
            tic = time.perf_counter()
            if serial_side:
                sim.generate()
                t_serial[r] = time.perf_counter() - tic
            else:
                sim.generate(n_jobs=n_jobs)
                t_par[r] = time.perf_counter() - tic

    bench_cfg = {"trials_scale": cfg.trials_scale, "jobs": n_gen}

    def result(name: str, times: np.ndarray, extra: dict) -> BenchResult:
        p50 = float(np.percentile(times, 50))
        return BenchResult(
            bench=name, config={**bench_cfg, **extra},
            samples_per_s=float(n_gen / p50) if p50 > 0 else float("inf"),
            p50_s=p50, p95_s=float(np.percentile(times, 95)), rss_mb=0.0,
        )

    return [
        result("datagen.serial", t_serial, {}),
        result(f"datagen.parallel.j{n_jobs}", t_par, {"n_jobs": n_jobs}),
    ]


def run_train_bench(
    scale: float = 1.0, *, warmup: int = 1, repeats: int = 3,
    n_jobs: int = 4, seed: int = 0, gate_throughput: bool | None = None,
) -> tuple[list[BenchResult], list[str], list[str]]:
    """Full train-bench: parity gates, then throughput; returns results.

    Parity divergence raises :class:`~repro.perf.harness.ParityError`.
    Throughput gates (multiples of :data:`BASELINE_TRAIN_SAMPLES_PER_S`,
    and chunked-parallel datagen vs serial) are checked when
    ``gate_throughput`` is true (default: only at ``scale >= 1``, where
    the baseline shape is actually measured); failures are returned as a
    list of messages so the CLI can exit nonzero after writing results.
    """
    if gate_throughput is None:
        gate_throughput = scale >= 1.0

    checked = check_fused_gradient_parity(seed)
    checked += check_parallel_trajectory(
        seed, worker_counts=(2, n_jobs) if n_jobs != 2 else (2,))

    results = bench_train_throughput(scale, warmup=warmup, repeats=repeats,
                                     n_jobs=n_jobs, seed=seed)
    results += _bench_datagen_paired(scale, repeats=max(repeats, 5), n_jobs=2)

    failures: list[str] = []
    if gate_throughput:
        by_name = {r.bench: r for r in results}
        single = by_name["lstm.train.epoch"].samples_per_s
        par = by_name[f"lstm.train.epoch.j{n_jobs}"].samples_per_s
        gates = [
            (f"lstm.train.epoch {single:.0f}/s >= 1.5x baseline "
             f"{BASELINE_TRAIN_SAMPLES_PER_S:.0f}/s",
             single >= 1.5 * BASELINE_TRAIN_SAMPLES_PER_S),
            (f"lstm.train.epoch.j{n_jobs} {par:.0f}/s >= 2.5x baseline "
             f"{BASELINE_TRAIN_SAMPLES_PER_S:.0f}/s",
             par >= 2.5 * BASELINE_TRAIN_SAMPLES_PER_S),
        ]
        serial = by_name["datagen.serial"].samples_per_s
        par_dg = by_name["datagen.parallel.j2"].samples_per_s
        # 5% tolerance: on a single-core host the parallel path falls back
        # to the identical serial loop, so the two measurements differ
        # only by timer noise.
        gates.append((
            f"datagen.parallel.j2 {par_dg:.0f}/s >= datagen.serial "
            f"{serial:.0f}/s",
            par_dg >= 0.95 * serial,
        ))
        failures = [msg for msg, ok in gates if not ok]
    return results, failures, checked
