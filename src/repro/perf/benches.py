"""The ``repro perf-bench`` suite: serve, train, and inference benches.

Every optimisation this repo ships pairs a fast path with the slow
reference it replaced (``RandomForestClassifier._predict_proba_slow``,
``GradientBoostingClassifier._margins_slow``, the grad-mode LSTM forward,
``np.stack`` batch assembly, serial dataset generation).  Each bench here
times both sides *and* gates on bit-identity — a fast path that drifts
from its reference raises :class:`~repro.perf.harness.ParityError`, and
the CLI exits nonzero.  The committed ``BENCH_*.json`` files are the
measured baselines; regressions show up as JSON diffs.

Workloads are synthetic but shaped like the challenge: 26-class
Gaussian-blob features for the trees, ``(N, T, 7)`` float32 windows for
the nets, and the cluster simulator itself for datagen.  ``scale``
multiplies every size, so ``--scale 0.01`` is a CI smoke and
``--scale 1`` a workstation baseline.
"""

from __future__ import annotations

import numpy as np

from repro.perf.harness import BenchResult, ParityError, measure

__all__ = [
    "bench_forest",
    "bench_boosting",
    "bench_lstm",
    "bench_datagen",
    "bench_serve",
    "run_perf_suite",
]


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise ParityError(f"fast path diverged from slow path: {what}")


def _blobs(n: int, d: int, k: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian class blobs — enough structure to grow real trees."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(k, d))
    y = rng.integers(0, k, size=n)
    X = centers[y] + rng.normal(size=(n, d))
    return X, y


# ----------------------------------------------------------------------
# Tree-ensemble inference
# ----------------------------------------------------------------------
def bench_forest(
    scale: float = 1.0, *, warmup: int = 1, repeats: int = 5,
    n_jobs: int = 2, seed: int = 0,
) -> list[BenchResult]:
    """Forest predict: legacy per-tree loop vs flat joint traversal."""
    from repro.ml.ensemble.forest import RandomForestClassifier

    n_train = max(200, int(2000 * scale))
    n_test = max(500, int(20000 * scale))
    n_trees = max(10, int(50 * min(scale * 2, 1.0)))
    d, k = 28, 26
    X, y = _blobs(n_train, d, k, seed)
    Xt, _ = _blobs(n_test, d, k, seed + 1)
    rf = RandomForestClassifier(
        n_estimators=n_trees, max_depth=12, random_state=seed
    ).fit(X, y)

    _require(
        np.array_equal(rf._predict_proba_slow(Xt), rf.predict_proba(Xt)),
        "forest flat predict_proba",
    )
    _require(
        np.array_equal(rf.predict_proba(Xt), rf.predict_proba(Xt, n_jobs=n_jobs)),
        f"forest predict_proba at n_jobs={n_jobs}",
    )
    cfg = {"n_train": n_train, "n_test": n_test, "n_trees": n_trees,
           "d": d, "k": k}
    out = [
        measure(lambda: rf._predict_proba_slow(Xt),
                bench="forest.predict.slow", n_samples=n_test,
                config=cfg, warmup=warmup, repeats=repeats),
        measure(lambda: rf.predict_proba(Xt),
                bench="forest.predict.flat", n_samples=n_test,
                config=cfg, warmup=warmup, repeats=repeats),
    ]
    if n_jobs > 1:
        out.append(measure(
            lambda: rf.predict_proba(Xt, n_jobs=n_jobs),
            bench=f"forest.predict.flat.j{n_jobs}", n_samples=n_test,
            config={**cfg, "n_jobs": n_jobs}, warmup=warmup, repeats=repeats,
        ))
    return out


def bench_boosting(
    scale: float = 1.0, *, warmup: int = 1, repeats: int = 5, seed: int = 0,
) -> list[BenchResult]:
    """Boosted-tree margins: per-(round, class) loop vs flat traversal."""
    from repro.ml.boosting.xgb import GradientBoostingClassifier

    n_train = max(200, int(1500 * scale))
    n_test = max(400, int(10000 * scale))
    rounds = max(4, int(12 * min(scale * 2, 1.0)))
    d, k = 20, 8
    X, y = _blobs(n_train, d, k, seed + 2)
    Xt, _ = _blobs(n_test, d, k, seed + 3)
    gb = GradientBoostingClassifier(
        n_estimators=rounds, max_depth=4, random_state=seed
    ).fit(X, y)

    _require(np.array_equal(gb._margins_slow(Xt), gb._margins(Xt)),
             "boosting flat margins")
    cfg = {"n_train": n_train, "n_test": n_test, "rounds": rounds,
           "d": d, "k": k}
    return [
        measure(lambda: gb._margins_slow(Xt),
                bench="boosting.margins.slow", n_samples=n_test,
                config=cfg, warmup=warmup, repeats=repeats),
        measure(lambda: gb._margins(Xt),
                bench="boosting.margins.flat", n_samples=n_test,
                config=cfg, warmup=warmup, repeats=repeats),
    ]


# ----------------------------------------------------------------------
# LSTM train + predict
# ----------------------------------------------------------------------
def bench_lstm(
    scale: float = 1.0, *, warmup: int = 1, repeats: int = 3, seed: int = 0,
) -> list[BenchResult]:
    """LSTM one-epoch training plus predict with/without the no_grad path."""
    from repro.models import LSTMClassifier
    from repro.nn import Adam, NLLLoss, Tensor, Trainer
    from repro.nn.tensor import is_grad_enabled

    assert is_grad_enabled()
    n = max(16, int(256 * scale))
    t, sensors, k, hidden = 96, 7, 26, 32
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, t, sensors)).astype(np.float32)
    y = rng.integers(0, k, size=n)
    Xv, yv = X[: max(8, n // 8)], y[: max(8, n // 8)]
    cfg = {"n": n, "t": t, "sensors": sensors, "hidden": hidden, "k": k}

    def make_model() -> LSTMClassifier:
        return LSTMClassifier(n_sensors=sensors, seq_len=t, n_classes=k,
                              hidden_size=hidden, seed=seed)

    def train_epoch():
        model = make_model()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), NLLLoss(),
                          batch_size=32, max_epochs=1, patience=10,
                          shuffle_rng=seed, verbose=False)
        trainer.fit(X, y, Xv, yv)

    model = make_model()
    model.eval()

    def predict_grad() -> np.ndarray:
        # Reference: the same forward with autograd bookkeeping on.
        outs = [model(Tensor(X[s:s + 64])).data for s in range(0, n, 64)]
        return np.concatenate(outs)

    def predict_nograd() -> np.ndarray:
        from repro.nn.tensor import no_grad
        with no_grad():
            outs = [model(Tensor(X[s:s + 64])).data for s in range(0, n, 64)]
        return np.concatenate(outs)

    _require(np.array_equal(predict_grad(), predict_nograd()),
             "LSTM no_grad forward")
    return [
        measure(train_epoch, bench="lstm.train.epoch", n_samples=n,
                config=cfg, warmup=min(warmup, 1), repeats=repeats),
        measure(predict_grad, bench="lstm.predict.grad", n_samples=n,
                config=cfg, warmup=warmup, repeats=repeats),
        measure(predict_nograd, bench="lstm.predict.nograd", n_samples=n,
                config=cfg, warmup=warmup, repeats=repeats),
    ]


# ----------------------------------------------------------------------
# Dataset generation
# ----------------------------------------------------------------------
def bench_datagen(
    scale: float = 1.0, *, warmup: int = 0, repeats: int = 3,
    n_jobs: int = 2, seed: int = 2022,
) -> list[BenchResult]:
    """Cluster-simulator release generation, serial vs process-parallel."""
    from repro.simcluster.cluster import ClusterSimulator, SimulationConfig

    cfg = SimulationConfig(seed=seed, trials_scale=max(0.005, 0.03 * scale))
    sim = ClusterSimulator(cfg)
    n_gen = len(sim.job_plan())

    s_jobs, _ = sim.generate()
    p_jobs, _ = sim.generate(n_jobs=n_jobs)
    same = len(s_jobs) == len(p_jobs) and all(
        a.record == b.record
        and all(np.array_equal(ga.data, gb.data)
                for ga, gb in zip(a.gpu_series, b.gpu_series))
        for a, b in zip(s_jobs, p_jobs)
    )
    _require(same, f"parallel datagen at n_jobs={n_jobs}")
    del s_jobs, p_jobs

    bench_cfg = {"trials_scale": cfg.trials_scale, "jobs": n_gen}
    return [
        measure(lambda: sim.generate(), bench="datagen.serial",
                n_samples=n_gen, config=bench_cfg,
                warmup=warmup, repeats=repeats),
        measure(lambda: sim.generate(n_jobs=n_jobs),
                bench=f"datagen.parallel.j{n_jobs}", n_samples=n_gen,
                config={**bench_cfg, "n_jobs": n_jobs},
                warmup=warmup, repeats=repeats),
    ]


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------
class _MeanSignModel:
    """Near-free deterministic model so serve benches time the *serving*
    layer (ring writes, snapshots, batch assembly), not the classifier."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Label 1 where the window's grand mean is positive."""
        return (X.mean(axis=(1, 2)) > 0.0).astype(np.int64)


def bench_serve(
    scale: float = 1.0, *, warmup: int = 1, repeats: int = 3, seed: int = 0,
) -> list[BenchResult]:
    """Multi-session streaming replay through sessions + micro-batcher.

    Parity gates: every emitted window must equal the corresponding raw
    slice of the source stream (ring correctness), and scratch-assembled
    batch predictions must equal predictions on an ``np.stack`` copy.
    """
    from repro.serve.batcher import MicroBatcher
    from repro.serve.session import StreamSession
    from repro.simcluster.sensors import N_GPU_SENSORS

    n_sessions = max(8, int(64 * scale))
    window, hop, rate = 540, 90, 90
    samples_each = window + 4 * hop
    rng = np.random.default_rng(seed)
    streams = rng.normal(size=(n_sessions, samples_each, N_GPU_SENSORS)) \
                 .astype(np.float32)
    model = _MeanSignModel()

    def replay() -> tuple[int, list]:
        sessions = [StreamSession(session_id=i, window=window, hop=hop)
                    for i in range(n_sessions)]
        batcher = MicroBatcher(model, max_batch=32, max_delay_s=0.0)
        done = []
        for start in range(0, samples_each, rate):
            for i, sess in enumerate(sessions):
                for req in sess.push(streams[i, start:start + rate]):
                    done.extend(batcher.submit(req))
        done.extend(batcher.drain())
        return n_sessions * samples_each, done

    # Parity 1: ring snapshots == raw stream slices, for every emission.
    _, completions = replay()
    for comp in completions:
        sid, end = comp.request.session_id, comp.request.sample_index
        expected = streams[sid, end - window:end]
        _require(np.array_equal(comp.request.window, expected),
                 f"ring window for session {sid} @ {end}")
    # Parity 2: scratch-assembled batches == np.stack batches.
    windows = [c.request.window for c in completions[:32]]
    batcher = MicroBatcher(model, max_batch=32)
    _require(
        np.array_equal(model.predict(batcher._assemble(windows)),
                       model.predict(np.stack(windows))),
        "batch scratch assembly",
    )

    n_pushed = n_sessions * samples_each
    cfg = {"sessions": n_sessions, "samples_each": samples_each,
           "window": window, "hop": hop, "max_batch": 32}
    results = [
        measure(replay, bench="serve.replay", n_samples=n_pushed,
                config=cfg, warmup=warmup, repeats=repeats),
    ]

    # Micro-bench the assembly strategies head-to-head on one batch shape.
    big = [w for c in completions for w in (c.request.window,)][:32]
    while len(big) < 32:
        big.append(big[-1])
    stack_cfg = {"batch": 32, "window": window, "sensors": N_GPU_SENSORS}
    results.append(measure(
        lambda: np.stack(big), bench="serve.batch.stack", n_samples=32,
        config=stack_cfg, warmup=warmup, repeats=max(repeats, 20)))
    asm = MicroBatcher(model, max_batch=32)
    results.append(measure(
        lambda: asm._assemble(big), bench="serve.batch.scratch", n_samples=32,
        config=stack_cfg, warmup=warmup, repeats=max(repeats, 20)))
    return results


# ----------------------------------------------------------------------
def run_perf_suite(
    scale: float = 1.0, *, warmup: int = 1, repeats: int = 5,
    n_jobs: int = 2, seed: int = 0,
) -> dict[str, list[BenchResult]]:
    """Run every bench; returns results grouped by BENCH file stem.

    Raises :class:`ParityError` if any fast path diverges from its slow
    reference — the CLI turns that into a nonzero exit.
    """
    infer = bench_forest(scale, warmup=warmup, repeats=repeats,
                         n_jobs=n_jobs, seed=seed)
    infer += bench_boosting(scale, warmup=warmup, repeats=repeats, seed=seed)
    lstm = bench_lstm(scale, warmup=warmup, repeats=max(2, repeats // 2),
                      seed=seed)
    train = [r for r in lstm if r.bench.startswith("lstm.train")]
    infer += [r for r in lstm if r.bench.startswith("lstm.predict")]
    train += bench_datagen(scale, warmup=0, repeats=max(2, repeats // 2),
                           n_jobs=n_jobs)
    serve = bench_serve(scale, warmup=warmup, repeats=max(2, repeats // 2),
                        seed=seed)
    return {"serve": serve, "train": train, "infer": infer}
