"""End-to-end request tracing across the serving fleet.

Aggregate counters (:mod:`repro.serve.metrics`) say *how much*; traces
say *which path*.  Each telemetry chunk entering the fleet can carry a
:class:`TraceContext` through loadgen ingress → ring routing → worker
admission → micro-batch assembly → model predict → session emit →
monitor taps — across the subprocess-worker pipe boundary and through
failover-by-replay (rebuilt sessions record spans in the original
request's trace).  Completed :class:`Span` s land in a bounded
:class:`TraceSink` (optionally WAL-persisted with the store's torn-tail
recovery rule), and :class:`TraceQuery` reconstructs per-request span
trees, critical paths, and per-stage p50/p95 self-time profiles.

``repro trace-bench`` (:mod:`repro.trace.bench`) gates the subsystem:
traced and untraced fleets must emit identically (under failover too),
every completed request's trace must form one connected tree, and
sampled tracing must cost <5% on the serve hot path.
"""

from repro.trace.query import TraceQuery
from repro.trace.sink import TraceSink, load_spans
from repro.trace.span import Span, TraceContext, Tracer

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "TraceSink",
    "TraceQuery",
    "load_spans",
]
