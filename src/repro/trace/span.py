"""Spans and trace contexts: the vocabulary of fleet request tracing.

A *trace* is the causal record of one request — one telemetry chunk
entering the fleet — as it crosses subsystem boundaries: loadgen ingress
→ router ring lookup → worker admission → micro-batch assembly → model
predict → session emit → monitor taps.  Each stage records a
:class:`Span`; spans reference their parent by id, so the completed set
reassembles into a tree (:class:`~repro.trace.query.TraceQuery`) without
any global coordination — which is what lets spans recorded inside a
:class:`~repro.fleet.worker.SubprocessWorker` child ship back over the
pipe and merge with the router's spans by id alone.

Two time bases coexist on purpose:

* ``start_s`` / ``end_s`` are stamps on the component's injected clock —
  the fleet's shared :class:`~repro.serve.SimulatedClock` in benches —
  so span intervals line up with batching deadlines, lease expiries, and
  emission latencies on the *replay* timeline.
* ``wall_s`` is real ``time.perf_counter`` compute time spent inside the
  stage.  On a simulated clock every stage of a tick shares one
  timestamp, so per-stage *profiling* (the p50/p95 self-times reported
  by ``repro trace-bench``) must come from wall time.

Tracing is sampled at the root, deterministically (a CRC32 of the
sampling key against the tracer's ``sample`` fraction) — and the *key*
is the caller's choice of grain: the load generator samples whole job
streams (key ``"j<job>"``, one hash per job per replay, complete traces
for sampled jobs) and opens per-chunk roots with :meth:`Tracer.root`;
one-shot callers hash the trace id itself via :meth:`Tracer.begin`.
Either way every downstream instrumentation site is a single ``is
None`` test on the hot path — exactly the
:func:`~repro.resilience.faults.fault_point` discipline.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

__all__ = ["TraceContext", "Span", "Tracer"]


@dataclass(slots=True)
class TraceContext:
    """Propagated trace coordinates: where the next span should attach.

    Crossing a component boundary, the caller passes a context whose
    ``span_id`` is the parent the callee's spans hang under.  The whole
    object is three small strings — it pickles across the subprocess
    worker pipe for free.  Treat it as immutable: contexts are minted
    (``begin``/``child``), never edited — they are plain mutable slots
    only because frozen-dataclass construction costs ~7× more per
    instance, and contexts are minted on the serve hot path.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None


@dataclass(slots=True)
class Span:
    """One completed stage of one request.

    ``status`` is ``"ok"`` unless the stage observed a failure (a worker
    crash mid-request marks the route span ``"failed"``); ``annotations``
    carries stage-specific detail — admission results, batch sizes,
    failover links (``links: <original trace id>``) — and is ``None``
    rather than ``{}`` when empty so untraced-adjacent allocations stay
    off the hot path.  Spans are emitted complete and never mutated; the
    class stays unfrozen because frozen-dataclass construction routes
    every field through ``object.__setattr__`` (~7× the cost), and span
    construction is the single largest term in the tracing overhead the
    bench gates at <5%.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    worker_id: str | None
    start_s: float
    end_s: float
    wall_s: float = 0.0
    status: str = "ok"
    annotations: dict | None = None

    @property
    def duration_s(self) -> float:
        """Clock-time extent of the span (simulated seconds in benches)."""
        return self.end_s - self.start_s

    @property
    def failed(self) -> bool:
        """Whether the stage recorded a failure."""
        return self.status != "ok"


class Tracer:
    """Span factory bound to one sink, one component, one worker label.

    Parameters
    ----------
    sink:
        The :class:`~repro.trace.sink.TraceSink` completed spans append
        to.  Several tracers (load generator, router, each in-process
        worker) share one sink; subprocess workers buffer into a private
        sink whose spans ride each pipe response home.
    component:
        Id-namespace prefix.  Span ids are ``"<component>:<counter>"``,
        so ids minted by different components (including a subprocess
        child) can never collide when merged into one sink.
    worker_id:
        Default ``worker_id`` stamped on spans this tracer emits —
        worker-owned tracers set it so every serve-stage span is
        attributable without threading the id through call sites.
    sample:
        Fraction of sampling keys recorded, decided deterministically
        from a CRC32 of the key — the trace id at :meth:`begin`, or a
        coarser caller-chosen key checked via :meth:`sampled` before
        opening roots with :meth:`root` (production tracing is sampled;
        the bench's parity gates run at ``1.0``).  Unsampled requests
        cost one hash at most — no contexts, no spans.
    """

    def __init__(self, sink, *, component: str = "main",
                 worker_id: str | None = None, sample: float = 1.0):
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        self.sink = sink
        self.component = str(component)
        self.worker_id = worker_id
        self.sample = float(sample)
        self._threshold = int(round(sample * 0x10000))
        self._n = 0

    def _next_id(self) -> str:
        self._n += 1
        return f"{self.component}:{self._n}"

    def sampled(self, key) -> bool:
        """Deterministic sampling decision (same key → same answer).

        The raw CRC32 is *not* used directly: CRC is linear over GF(2),
        so short sequential keys ("j0", "j1", …) land in clustered
        residues and a nominal 1/32 rate can sample 3× that.  A
        murmur3-style finalizer mix restores binomial behaviour; the
        decision happens once per sampling key (once per job stream in
        the load generator), so the extra arithmetic is off the per-chunk
        path.
        """
        if self._threshold >= 0x10000:
            return True
        h = zlib.crc32(str(key).encode())
        h ^= h >> 16
        h = (h * 0x7FEB352D) & 0xFFFFFFFF
        h ^= h >> 15
        h = (h * 0x846CA68B) & 0xFFFFFFFF
        h ^= h >> 16
        return (h & 0xFFFF) < self._threshold

    def root(self, trace_id) -> TraceContext:
        """Open a root context for ``trace_id``, unconditionally.

        For callers that made the sampling decision at a coarser grain —
        the load generator samples whole *job streams* via
        :meth:`sampled` once, then opens a root per chunk — so per-chunk
        ids never re-hash (and never disagree with the job-level
        decision).  Nothing is recorded yet: the caller emits the root
        span itself (via :meth:`emit` on the returned context) once the
        request's ingress stage has finished, so the root carries real
        timings.
        """
        return TraceContext(str(trace_id), self._next_id(), None)

    def begin(self, trace_id) -> TraceContext | None:
        """Open a root context for ``trace_id``; ``None`` when unsampled.

        The per-trace-grain entry point: hashes ``trace_id`` itself.
        """
        if not self.sampled(trace_id):
            return None
        return self.root(trace_id)

    def child(self, ctx: TraceContext) -> TraceContext:
        """Mint a child context under ``ctx`` (id allocated, not recorded)."""
        return TraceContext(ctx.trace_id, self._next_id(), ctx.span_id)

    def emit(
        self,
        ctx: TraceContext,
        name: str,
        *,
        start_s: float,
        end_s: float,
        wall_s: float = 0.0,
        worker_id: str | None = None,
        status: str = "ok",
        annotations: dict | None = None,
    ) -> None:
        """Record the completed span for ``ctx`` into the sink."""
        # Positional construction: keyword-argument binding alone costs
        # ~2× on a 10-field dataclass, and this is the hot path.
        self.sink.append(Span(
            ctx.trace_id, ctx.span_id, ctx.parent_id, name,
            worker_id if worker_id is not None else self.worker_id,
            start_s, end_s, wall_s, status, annotations,
        ))
