"""Reconstruction and analysis of recorded span trees.

:class:`TraceQuery` takes the flat span list a
:class:`~repro.trace.sink.TraceSink` collected — in whatever interleaved
order the fleet's components emitted — and rebuilds per-request trees by
``(trace_id, parent_id)`` alone.  Three questions drive the API, and the
``repro trace-bench`` gates:

* **Connectivity** (:meth:`is_connected`): does the trace form one tree —
  exactly one root, every other span's parent present?  A disconnected
  trace means context propagation dropped somewhere (e.g. across the
  subprocess pipe), which is the regression the bench's connectivity
  gate exists to catch.
* **Critical path** (:meth:`critical_path`): root-to-leaf chain through
  the latest-finishing child at each step — where did this request's
  latency actually go?
* **Stage profile** (:meth:`stage_summary`): per-stage p50/p95 *self*
  wall time (own ``wall_s`` minus children's), aggregated across all
  traces — which stage burns the fleet's compute?
"""

from __future__ import annotations

from collections import defaultdict

from repro.trace.span import Span

__all__ = ["TraceQuery"]


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float error
    return ordered[int(rank) - 1]


class TraceQuery:
    """Index a span collection for per-trace and per-stage questions."""

    def __init__(self, spans):
        self._spans = list(spans)
        self._by_trace: dict[str, list[Span]] = defaultdict(list)
        for span in self._spans:
            self._by_trace[span.trace_id].append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def trace_ids(self) -> list[str]:
        """Every distinct trace id, in first-emission order."""
        return list(self._by_trace)

    def spans_for(self, trace_id: str) -> list[Span]:
        """All spans of one trace, in emission order."""
        return list(self._by_trace.get(trace_id, ()))

    def roots(self, trace_id: str) -> list[Span]:
        """Spans of the trace whose parent is absent (or None)."""
        spans = self._by_trace.get(trace_id, ())
        ids = {s.span_id for s in spans}
        return [s for s in spans if s.parent_id is None or s.parent_id not in ids]

    def is_connected(self, trace_id: str) -> bool:
        """True when the trace forms exactly one tree.

        One root, and every other span's ``parent_id`` resolves within
        the trace.  An orphan span (its parent lost, e.g. in a killed
        subprocess) makes the trace disconnected.
        """
        spans = self._by_trace.get(trace_id, ())
        if not spans:
            return False
        return len(self.roots(trace_id)) == 1

    def children(self, trace_id: str, span_id: str) -> list[Span]:
        """Direct children of one span, in emission order."""
        return [s for s in self._by_trace.get(trace_id, ())
                if s.parent_id == span_id]

    def failed_spans(self, trace_id: str) -> list[Span]:
        """Spans of the trace with a non-ok status."""
        return [s for s in self._by_trace.get(trace_id, ()) if s.failed]

    def critical_path(self, trace_id: str) -> list[Span]:
        """Root-to-leaf chain through the latest-ending child at each step.

        On the fleet's simulated clock many children share an ``end_s``;
        ties break toward larger ``wall_s`` (the computationally heavier
        branch), then emission order, so the path is deterministic.
        """
        roots = self.roots(trace_id)
        if not roots:
            return []
        path = [max(roots, key=lambda s: s.end_s)]
        while True:
            kids = self.children(trace_id, path[-1].span_id)
            if not kids:
                return path
            path.append(max(enumerate(kids),
                            key=lambda ik: (ik[1].end_s, ik[1].wall_s, ik[0]))[1])

    def stage_summary(self) -> dict[str, dict[str, float]]:
        """Per-stage self-time profile across every trace.

        Self time is a span's ``wall_s`` minus its direct children's
        (clamped at zero — children measured on their own perf counters
        can slightly exceed the parent's window), so stages don't
        double-count nested work.  Returns, per span name::

            {"count": n, "p50_self_s": ..., "p95_self_s": ..., "total_self_s": ...}
        """
        child_wall: dict[tuple[str, str], float] = defaultdict(float)
        for span in self._spans:
            if span.parent_id is not None:
                child_wall[(span.trace_id, span.parent_id)] += span.wall_s
        selfs: dict[str, list[float]] = defaultdict(list)
        for span in self._spans:
            nested = child_wall.get((span.trace_id, span.span_id), 0.0)
            selfs[span.name].append(max(0.0, span.wall_s - nested))
        return {
            name: {
                "count": float(len(values)),
                "p50_self_s": _percentile(values, 50),
                "p95_self_s": _percentile(values, 95),
                "total_self_s": sum(values),
            }
            for name, values in sorted(selfs.items())
        }

    def format_trace(self, trace_id: str) -> str:
        """Render one trace as an indented tree (critical path starred)."""
        crit = {s.span_id for s in self.critical_path(trace_id)}
        lines = [f"trace {trace_id}"]

        def walk(span: Span, depth: int) -> None:
            mark = "*" if span.span_id in crit else " "
            status = "" if span.status == "ok" else f" [{span.status}]"
            where = f" @{span.worker_id}" if span.worker_id else ""
            lines.append(
                f"{mark} {'  ' * depth}{span.name}{where}"
                f" t=[{span.start_s:.3f},{span.end_s:.3f}]"
                f" wall={span.wall_s * 1e6:.1f}us{status}"
            )
            for kid in self.children(trace_id, span.span_id):
                walk(kid, depth + 1)

        for root in self.roots(trace_id):
            walk(root, 1)
        return "\n".join(lines)

    def format_summary(self) -> str:
        """Render the stage profile as an aligned table."""
        rows = self.stage_summary()
        lines = [f"{'stage':<18} {'count':>7} {'p50 self':>10} {'p95 self':>10}"]
        for name, stats in rows.items():
            lines.append(
                f"{name:<18} {int(stats['count']):>7}"
                f" {stats['p50_self_s'] * 1e6:>8.1f}us"
                f" {stats['p95_self_s'] * 1e6:>8.1f}us"
            )
        return "\n".join(lines)
