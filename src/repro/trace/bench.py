"""The ``repro trace-bench`` harness: gates the tracing subsystem.

Tracing is only trustworthy if it is *invisible* (the traced fleet
behaves exactly like the untraced one), *complete* (every completed
request reconstructs as one connected span tree, even across failover),
and *cheap* (the serve hot path pays a bounded toll).  Each claim is a
gate here, and a violated gate is a nonzero CLI exit:

1. **Emission parity** — a fully-traced fleet replay with a worker
   killed mid-run emits the exact sequence (order included) of its
   untraced twin.  Tracing observes; it must never steer.
2. **Connectivity** — at 4 workers with a mid-run kill, 100% of recorded
   traces form a single connected tree; the killed request's trace
   contains a failed span (``worker.lost``) and failover spans whose
   ``links`` annotation names the original trace id.
3. **Overhead** — on the serve hot path (workload shape read from the
   committed ``BENCH_serve.json`` ``serve.replay`` entry), tracing at
   the production sampling rate costs under ``max_overhead`` (default
   5%) versus the untraced replay.  Full (sample=1.0) tracing is
   measured and reported, but not gated — recording every span of a
   stub-model replay is the worst case, priced for visibility.
4. **WAL durability** — a sink flush killed mid-write (the
   ``trace.sink.flush`` fault point) leaves earlier flushes readable and
   the interrupted batch recoverable by retry, and a clean round trip
   reproduces every span field exactly.

Timing comparisons interleave the traced/untraced variants and compare
*minimum* run times — the low-noise estimator — so the 5% gate measures
tracing, not scheduler jitter.
"""

from __future__ import annotations

import gc
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.fleet.router import FleetRouter
from repro.fleet.worker import FleetWorker
from repro.perf.harness import BenchResult
from repro.resilience.faults import FaultSpec, InjectedFault, inject
from repro.serve.loadgen import FleetLoadGenerator, SimulatedClock
from repro.serve.server import InferenceServer, ServeConfig
from repro.trace.query import TraceQuery
from repro.trace.sink import TraceSink, load_spans
from repro.trace.span import Span, Tracer

__all__ = ["TraceBenchConfig", "TraceBenchReport", "run_trace_bench"]


class _ThresholdModel:
    """O(1)-per-window stub: label 1 where mean sensor-0 exceeds 50.

    Batch composition cannot affect any prediction, so traced and
    untraced replays are comparable window for window.  Module-level so
    subprocess workers could unpickle it.
    """

    def predict(self, X):
        """Label each ``(window, sensors)`` slice by its sensor-0 mean."""
        X = np.asarray(X)
        return (X[:, :, 0].mean(axis=1) > 50.0).astype(np.int64)


def _emission_keys(emissions) -> list[tuple]:
    """Order-sensitive emission fingerprint for the parity gate."""
    return [
        (e.job_id, int(e.prediction.sample_index), int(e.prediction.label),
         int(e.prediction.smoothed_label), float(e.prediction.confidence))
        for e in emissions
    ]


@dataclass(frozen=True)
class TraceBenchConfig:
    """Everything one ``repro trace-bench`` run needs."""

    seed: int = 2022
    # failover/connectivity scenario (window == hop == chunk keeps the
    # replay short while still cutting one window per tick per job)
    n_jobs: int = 32
    samples_per_tick: int = 90
    max_samples_per_job: int = 1800     # 20 chunks/job
    parity_workers: int = 4
    kill_tick: int = 6
    scenario_window: int = 90
    # overhead scenario: workload shape; overridden by the committed
    # BENCH_serve.json serve.replay entry when present
    baseline_path: str = "BENCH_serve.json"
    overhead_sessions: int = 64
    overhead_samples_each: int = 900
    overhead_window: int = 540
    overhead_hop: int = 90
    overhead_max_batch: int = 32
    overhead_repeats: int = 9
    sample: float = 1.0 / 16.0          # production sampling rate (gated)
    max_overhead: float = 0.05
    # WAL scenario
    wal_spans: int = 64

    @classmethod
    def quick(cls, **overrides) -> "TraceBenchConfig":
        """The CI smoke shape: shorter streams, fewer repeats."""
        defaults = dict(
            n_jobs=16,
            max_samples_per_job=900,    # 10 chunks/job
            kill_tick=3,
            overhead_repeats=5,
            # overhead shape stays at the committed baseline's — the
            # sampled-job fraction only approximates the nominal rate
            # when there are enough job streams to sample from
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class TraceBenchReport:
    """Outcome of one trace-bench run; ``ok`` is the CI verdict."""

    config: TraceBenchConfig
    # 1. emission parity (traced vs untraced, both with the kill)
    parity_ok: bool = False
    n_emissions: int = 0
    # 2. connectivity + failover span structure
    n_traces: int = 0
    n_spans: int = 0
    connected_frac: float = 0.0
    connectivity_ok: bool = False
    failed_span_ok: bool = False
    link_ok: bool = False
    killed_worker: str = ""
    # 3. overhead
    overhead_sampled: float = float("nan")   # traced/untraced - 1, sampled
    overhead_full: float = float("nan")      # traced/untraced - 1, sample=1.0
    overhead_ok: bool = False
    # 4. WAL durability
    wal_ok: bool = False
    # artifacts
    stage_summary: dict = field(default_factory=dict)
    example_trace: str = ""
    results: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every tracing invariant held."""
        return (
            self.parity_ok
            and self.connectivity_ok
            and self.failed_span_ok
            and self.link_ok
            and self.overhead_ok
            and self.wal_ok
        )

    def format(self) -> str:
        """Human-readable pass/fail table (the CLI's output)."""
        def mark(flag: bool) -> str:
            return "PASS" if flag else "FAIL"

        lines = [
            f"[{mark(self.parity_ok)}] traced killed-fleet replay emits "
            f"identically to its untraced twin "
            f"({self.n_emissions} emissions, order included)",
            f"[{mark(self.connectivity_ok)}] span trees connected for "
            f"{self.connected_frac * 100:.1f}% of {self.n_traces} traces "
            f"at {self.config.parity_workers} workers "
            f"({self.n_spans} spans, gate = 100%)",
            f"[{mark(self.failed_span_ok)}] killed worker "
            f"({self.killed_worker or '?'}) marked a span failed in the "
            "in-flight request's trace",
            f"[{mark(self.link_ok)}] failover rebuild/replay spans link "
            "to the original trace id",
            f"[{mark(self.overhead_ok)}] serve hot-path overhead "
            f"{self.overhead_sampled * 100:+.2f}% at sample="
            f"{self.config.sample:g} (gate < "
            f"{self.config.max_overhead * 100:g}%; full tracing "
            f"{self.overhead_full * 100:+.2f}%, unguarded)",
            f"[{mark(self.wal_ok)}] span WAL survives a crash mid-flush "
            "and round-trips exactly",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# scenario 1+2: traced failover replay

def _synth_series(config: TraceBenchConfig, n_series: int = 8):
    rng = np.random.default_rng(config.seed)
    return [rng.random((config.max_samples_per_job, 7)) * 100.0
            for _ in range(n_series)]


def _killed_replay(config: TraceBenchConfig, series, *, traced: bool):
    """One replay with worker w0 killed at ``kill_tick``; optionally traced."""
    clock = SimulatedClock()
    gen = FleetLoadGenerator(
        series, None,
        n_jobs=config.n_jobs,
        samples_per_tick=config.samples_per_tick,
        max_samples_per_job=config.max_samples_per_job,
        seed=config.seed,
        clock=clock,
    )
    sink = TraceSink() if traced else None
    serve_config = ServeConfig(
        window=config.scenario_window, hop=config.scenario_window,
        flush_deadline_s=0.0,
    )
    workers = [
        FleetWorker(
            f"w{i}", _ThresholdModel(), serve_config, clock=clock,
            tracer=(Tracer(sink, component=f"w{i}", worker_id=f"w{i}")
                    if traced else None),
        )
        for i in range(config.parity_workers)
    ]
    router = FleetRouter(
        workers, history=gen.job_stream,
        tracer=Tracer(sink, component="router") if traced else None,
    )
    gen_tracer = Tracer(sink, component="gen") if traced else None
    # Every router.step() trips fleet.worker.crash once per live worker,
    # in sorted-id order — so hit kill_tick * n + 1 is w0's fault point
    # at the top of tick kill_tick.
    at_hit = config.kill_tick * config.parity_workers + 1
    with inject(FaultSpec("fleet.worker.crash", at_hit=at_hit, mode="raise")):
        report = gen.run(router, tracer=gen_tracer)
    return report, router, sink


def _failover_scenario(config: TraceBenchConfig, report: TraceBenchReport):
    series = _synth_series(config)
    traced_report, router, sink = _killed_replay(config, series, traced=True)
    untraced_report, _, _ = _killed_replay(config, series, traced=False)

    report.n_emissions = len(traced_report.emissions)
    report.parity_ok = (
        _emission_keys(traced_report.emissions)
        == _emission_keys(untraced_report.emissions)
    )
    events = [e for e in router.events if e.kind == "failover"]
    report.killed_worker = events[0].worker_id if events else ""

    spans = sink.spans()
    query = TraceQuery(spans)
    trace_ids = query.trace_ids()
    report.n_traces = len(trace_ids)
    report.n_spans = len(spans)
    connected = sum(query.is_connected(t) for t in trace_ids)
    report.connected_frac = connected / len(trace_ids) if trace_ids else 0.0
    report.connectivity_ok = bool(trace_ids) and connected == len(trace_ids)

    failed = [(t, s) for t in trace_ids for s in query.failed_spans(t)]
    report.failed_span_ok = any(
        s.name == "worker.lost" and s.worker_id == report.killed_worker
        for _, s in failed
    )
    links = [
        (s.trace_id, s.annotations.get("links"))
        for s in spans
        if s.name in ("failover.rebuild", "failover.replay") and s.annotations
    ]
    report.link_ok = bool(links) and all(t == link for t, link in links)

    report.stage_summary = query.stage_summary()
    failed_traces = sorted({t for t, _ in failed})
    if failed_traces:
        report.example_trace = query.format_trace(failed_traces[0])
    report.results.append(BenchResult(
        bench="trace.failover",
        config={
            "n_jobs": config.n_jobs, "workers": config.parity_workers,
            "kill_tick": config.kill_tick,
        },
        samples_per_s=float(report.n_spans),     # span count, for diffing
        p50_s=report.connected_frac,
        p95_s=float(len(failed)),
    ))


# ----------------------------------------------------------------------
# scenario 3: hot-path overhead

def _baseline_shape(config: TraceBenchConfig) -> dict:
    """The serve.replay workload shape from the committed baselines.

    Falls back to the config's own fields when ``BENCH_serve.json`` is
    missing or has no ``serve.replay`` entry, so the bench still runs in
    a bare checkout.
    """
    shape = {
        "sessions": config.overhead_sessions,
        "samples_each": config.overhead_samples_each,
        "window": config.overhead_window,
        "hop": config.overhead_hop,
        "max_batch": config.overhead_max_batch,
    }
    path = Path(config.baseline_path)
    if path.is_file():
        try:
            entries = json.loads(path.read_text())
            entry = next(
                e for e in entries if e.get("bench") == "serve.replay")
        except (ValueError, StopIteration):
            return shape
        for key in ("window", "hop", "max_batch"):
            if key in entry.get("config", {}):
                shape[key] = int(entry["config"][key])
        # Session count / stream length stay config-controlled so --quick
        # can shrink the replay; geometry comes from the baseline.
    return shape


def _overhead_scenario(config: TraceBenchConfig, report: TraceBenchReport):
    shape = _baseline_shape(config)
    rng = np.random.default_rng(config.seed)
    series = [rng.random((shape["samples_each"], 7)) * 100.0
              for _ in range(8)]
    serve_config = ServeConfig(
        window=shape["window"], hop=shape["hop"],
        max_batch=shape["max_batch"], flush_deadline_s=0.0,
    )

    def replay(sample: float | None):
        clock = SimulatedClock()
        gen = FleetLoadGenerator(
            series, None,
            n_jobs=shape["sessions"],
            samples_per_tick=config.samples_per_tick,
            seed=config.seed,
            clock=clock,
        )
        if sample is None:
            server = InferenceServer(_ThresholdModel(), serve_config,
                                     clock=clock)
            gen.run(server)
            return
        sink = TraceSink()
        tracer = Tracer(sink, component="gen", sample=sample)
        server = InferenceServer(
            _ThresholdModel(), serve_config, clock=clock,
            tracer=Tracer(sink, component="srv", worker_id="srv"),
        )
        gen.run(server, tracer=tracer)

    variants = {
        "untraced": lambda: replay(None),
        "sampled": lambda: replay(config.sample),
        "full": lambda: replay(1.0),
    }
    for fn in variants.values():        # warm caches and scratch buffers
        fn()
    times: dict[str, list[float]] = {name: [] for name in variants}
    rounds_run = 0

    def timed_round(names) -> None:
        # Interleave variants so drift (thermal, background load) hits
        # all alike, *rotating* who goes first each round — a fixed
        # order hands the lead variant any boost-clock/post-collect
        # advantage on every round, which a min-estimator then bakes in
        # as bias.  The collector is paused so a GC cycle landing in one
        # variant's window doesn't masquerade as tracing cost.
        nonlocal rounds_run
        names = list(names)
        offset = rounds_run % len(names)
        rounds_run += 1
        for name in names[offset:] + names[:offset]:
            gc.collect()
            gc.disable()
            try:
                tic = time.perf_counter()
                variants[name]()
                times[name].append(time.perf_counter() - tic)
            finally:
                gc.enable()

    for _ in range(max(1, config.overhead_repeats)):
        timed_round(variants)

    def sampled_ratio() -> float:
        return min(times["sampled"]) / min(times["untraced"]) - 1.0

    # The gate compares minima — and a minimum only sharpens with more
    # samples (scheduler noise can inflate a run, never deflate it).  So
    # a failing verdict earns extra gate-pair rounds before it stands:
    # a genuinely-over-budget tracer keeps failing, a noise spike gets
    # measured away instead of flaking CI.
    for _ in range(3):
        if sampled_ratio() < config.max_overhead:
            break
        for _ in range(max(1, config.overhead_repeats)):
            timed_round(("untraced", "sampled"))

    n_samples = shape["sessions"] * shape["samples_each"]
    for name, series_t in times.items():
        arr = np.asarray(series_t)
        p50 = float(np.percentile(arr, 50))
        report.results.append(BenchResult(
            bench=f"trace.overhead.{name}",
            config={**shape, "sample": (
                0.0 if name == "untraced"
                else config.sample if name == "sampled" else 1.0)},
            samples_per_s=float(n_samples / p50) if p50 > 0 else float("inf"),
            p50_s=p50,
            p95_s=float(np.percentile(arr, 95)),
        ))
    base = min(times["untraced"])
    report.overhead_sampled = sampled_ratio()
    report.overhead_full = min(times["full"]) / base - 1.0
    report.overhead_ok = report.overhead_sampled < config.max_overhead


# ----------------------------------------------------------------------
# scenario 4: WAL durability

def _synthetic_spans(n: int, *, trace_prefix: str) -> list[Span]:
    return [
        Span(
            trace_id=f"{trace_prefix}{i % 7}", span_id=f"s:{i}",
            parent_id=None if i % 3 == 0 else f"s:{i - 1}",
            name=("request", "route", "predict")[i % 3],
            worker_id=f"w{i % 4}",
            start_s=float(i), end_s=float(i) + 0.5, wall_s=1e-6 * i,
            status="ok" if i % 5 else "failed",
            annotations={"i": i} if i % 2 else None,
        )
        for i in range(n)
    ]


def _wal_scenario(config: TraceBenchConfig, report: TraceBenchReport):
    first = _synthetic_spans(config.wal_spans, trace_prefix="a")
    second = _synthetic_spans(config.wal_spans, trace_prefix="b")
    with tempfile.TemporaryDirectory() as tmp:
        sink = TraceSink(wal_dir=tmp, flush_every=1 << 30, fsync=False)
        sink.extend(first)
        sink.flush()
        sink.extend(second)
        # Crash mid-flush: the first batch must stay readable, the
        # interrupted one must stay staged for retry.
        try:
            with inject(FaultSpec("trace.sink.flush", mode="raise")):
                sink.flush()
        except InjectedFault:
            pass
        torn_ok = load_spans(tmp) == first and sink.n_staged == len(second)
        sink.flush()                     # retry re-writes the whole batch
        round_trip_ok = load_spans(tmp) == first + second
    report.wal_ok = torn_ok and round_trip_ok
    report.results.append(BenchResult(
        bench="trace.wal",
        config={"spans": 2 * config.wal_spans},
        p50_s=float(torn_ok),
        p95_s=float(round_trip_ok),
    ))


# ----------------------------------------------------------------------

def run_trace_bench(config: TraceBenchConfig | None = None) -> TraceBenchReport:
    """Run every tracing gate; see the module docstring for the list."""
    config = config or TraceBenchConfig()
    report = TraceBenchReport(config=config)
    tic = time.perf_counter()
    _failover_scenario(config, report)
    _overhead_scenario(config, report)
    _wal_scenario(config, report)
    report.wall_seconds = time.perf_counter() - tic
    return report
