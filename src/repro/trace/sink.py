"""Bounded in-memory span store with optional WAL-backed persistence.

The sink is the single collection point for completed spans.  In-process
components (load generator, router, in-process workers) share one sink;
a :class:`~repro.fleet.worker.SubprocessWorker` child buffers into its
own private sink and :meth:`drain`\\ s it into every pipe response, so
child spans merge into the parent's sink with at most one message of
latency — and are simply lost when the child is SIGKILLed, exactly like
any other unacknowledged state (the parent marks the affected route span
failed instead; see ``tests/test_fleet_crash.py``).

Memory is bounded: beyond ``capacity`` the oldest spans are evicted and
counted in :attr:`dropped` — tracing must never be the component that
OOMs the fleet it observes.

Persistence reuses the telemetry store's WAL framing
(:func:`repro.store.wal.frame_payload` / ``iter_frames``) with its own
magic, so the span log inherits the same torn-tail recovery rule: a
crash mid-flush (the ``trace.sink.flush`` fault point) leaves a torn
frame that :func:`load_spans` ignores, and earlier flushes stay intact.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.resilience.faults import fault_point
from repro.store.wal import frame_payload, iter_frames
from repro.trace.span import Span

__all__ = ["TraceSink", "load_spans"]

_SPAN_MAGIC = b"RTS1"
_WAL_NAME = "spans.wal"

# Span (de)serialization as plain tuples: keeps the on-disk format
# independent of dataclass internals and cheap to pickle in batches.
_FIELDS = (
    "trace_id", "span_id", "parent_id", "name", "worker_id",
    "start_s", "end_s", "wall_s", "status", "annotations",
)


def _encode_batch(spans: list[Span]) -> bytes:
    rows = [tuple(getattr(s, f) for f in _FIELDS) for s in spans]
    return pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_batch(payload: bytes) -> list[Span]:
    return [Span(**dict(zip(_FIELDS, row))) for row in pickle.loads(payload)]


def load_spans(wal_dir: str | Path) -> list[Span]:
    """Read every intact flushed span from a sink's WAL directory.

    Stops at the first torn or corrupt frame (crash-mid-flush leftovers);
    everything before it was durably flushed.  Returns ``[]`` when the
    directory or log does not exist.
    """
    path = Path(wal_dir) / _WAL_NAME
    if not path.is_file():
        return []
    spans: list[Span] = []
    for payload, _ in iter_frames(path.read_bytes(), magic=_SPAN_MAGIC):
        try:
            spans.extend(_decode_batch(payload))
        except Exception:               # undecodable despite CRC: treat as torn
            break
    return spans


class TraceSink:
    """Collects completed spans; bounded in memory, optionally WAL-backed.

    Parameters
    ----------
    capacity:
        Maximum spans held in memory; beyond it the oldest are evicted
        (counted in :attr:`dropped`).
    wal_dir:
        When set, spans are also staged for durable flushing into
        ``<wal_dir>/spans.wal``; ``None`` keeps the sink memory-only.
    flush_every:
        Auto-flush threshold: once this many spans are staged, the next
        :meth:`append` triggers a :meth:`flush`.
    fsync:
        Whether flushes fsync (benches turn it off; crash tests leave it
        on).
    """

    def __init__(self, *, capacity: int = 65536,
                 wal_dir: str | Path | None = None,
                 flush_every: int = 256, fsync: bool = True):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.wal_dir = Path(wal_dir) if wal_dir is not None else None
        self.flush_every = int(flush_every)
        self.fsync = bool(fsync)
        self.dropped = 0
        self._spans: list[Span] = []
        self._staged: list[Span] = []
        self._trimmed = False

    def __len__(self) -> int:
        return len(self._spans)

    def append(self, span: Span) -> None:
        """Record one completed span (evicting the oldest at capacity)."""
        self._spans.append(span)
        if len(self._spans) > self.capacity:
            # Evict in one slice, not per-append: list.pop(0) is O(n).
            excess = len(self._spans) - self.capacity
            del self._spans[:excess]
            self.dropped += excess
        if self.wal_dir is not None:
            self._staged.append(span)
            if len(self._staged) >= self.flush_every:
                self.flush()

    def extend(self, spans) -> None:
        """Merge spans recorded elsewhere (e.g. shipped over a worker pipe)."""
        for span in spans:
            self.append(span)

    def spans(self) -> list[Span]:
        """The retained spans, oldest first (a copy)."""
        return list(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return every retained span (subprocess shipping)."""
        out, self._spans = self._spans, []
        return out

    @property
    def n_staged(self) -> int:
        """Spans staged for the WAL but not yet flushed."""
        return len(self._staged)

    def _trim_torn_tail(self, path: Path) -> None:
        if self._trimmed:
            return
        self._trimmed = True
        if not path.is_file():
            return
        valid = 0
        for _, end in iter_frames(path.read_bytes(), magic=_SPAN_MAGIC):
            valid = end
        if valid < path.stat().st_size:
            with path.open("rb+") as handle:
                handle.truncate(valid)

    def flush(self) -> int:
        """Write staged spans to the WAL as one frame; returns spans flushed.

        A crash mid-write (``trace.sink.flush``) leaves a torn tail that
        recovery ignores; the batch stays staged so a retry re-writes it
        whole, after re-trimming the tear.
        """
        if self.wal_dir is None or not self._staged:
            return 0
        path = self.wal_dir / _WAL_NAME
        path.parent.mkdir(parents=True, exist_ok=True)
        self._trim_torn_tail(path)
        frame = frame_payload(_encode_batch(self._staged), magic=_SPAN_MAGIC)
        try:
            with path.open("ab") as handle:
                half = len(frame) // 2
                handle.write(frame[:half])
                fault_point("trace.sink.flush")
                handle.write(frame[half:])
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
        except BaseException:
            self._trimmed = False
            raise
        n = len(self._staged)
        self._staged = []
        return n
