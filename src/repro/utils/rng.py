"""Deterministic random-number plumbing.

Everything in this repository threads an explicit
:class:`numpy.random.Generator` instead of touching NumPy's legacy global
state.  This module provides the conversion and fan-out helpers that make
that convenient:

* :func:`as_generator` normalises ``None | int | Generator`` inputs.
* :func:`spawn_generators` derives independent child streams, which is how
  the simulator gives every job its own stream (and how parallel workers
  stay reproducible regardless of scheduling order).
* :class:`SeedSequenceFactory` hands out named, order-independent streams
  so that e.g. the "noise" stream and the "schedule" stream of a simulation
  do not perturb each other when one of them draws more numbers.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["as_generator", "spawn_generators", "SeedSequenceFactory"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is passed through unchanged (callers
        share state in that case, which is the desired composition for
        sequential pipelines).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def spawn_generators(
    seed: int | np.random.Generator | None, n: int
) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Children are derived via :class:`numpy.random.SeedSequence` spawning, so
    the i-th child is identical no matter how many draws other children make
    — the property that keeps per-job simulation streams stable under
    parallel execution.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a fresh entropy root from the generator so children are
        # decoupled from subsequent use of the parent.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def _stable_hash(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (process-independent)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeedSequenceFactory:
    """Hand out named random streams derived from one root seed.

    Streams are keyed by string name; requesting the same name twice returns
    generators with identical initial state, and the set of names requested
    does not influence any individual stream.  This is the backbone of
    simulator determinism: ``factory.stream("job-0042")`` is the same series
    of numbers whether jobs are generated serially or in parallel.

    Examples
    --------
    >>> f = SeedSequenceFactory(1234)
    >>> a = f.stream("noise").normal()
    >>> b = SeedSequenceFactory(1234).stream("noise").normal()
    >>> a == b
    True
    """

    def __init__(self, root_seed: int | None):
        if root_seed is not None and root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        self._root_seed = root_seed if root_seed is not None else int(
            np.random.SeedSequence().entropy % (2**63)
        )

    @property
    def root_seed(self) -> int:
        """The root seed this factory derives all streams from."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named stream."""
        seq = np.random.SeedSequence([self._root_seed, _stable_hash(name)])
        return np.random.default_rng(seq)

    def streams(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dict of named streams (convenience fan-out)."""
        return {name: self.stream(name) for name in names}

    def child(self, name: str) -> "SeedSequenceFactory":
        """Derive a sub-factory, e.g. one per simulated job."""
        return SeedSequenceFactory(
            (self._root_seed * 0x9E3779B97F4A7C15 + _stable_hash(name)) % (2**63)
        )
