"""Lightweight wall-clock timing used by benchmarks and the trainer.

``pytest-benchmark`` handles micro-benchmarks; :class:`Timer` covers the
coarse phase timing that experiment harnesses report alongside accuracy
(e.g. the PCA-vs-covariance fit-time comparison in Table V's discussion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "format_duration"]


def format_duration(seconds: float) -> str:
    """Render a duration in the most readable unit (``85.3ms``, ``2m03s``)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"


@dataclass
class Timer:
    """Context-manager stopwatch that can also accumulate named laps.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    laps: dict[str, float] = field(default_factory=dict)
    _start: float = field(default=0.0, repr=False)
    elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    def lap(self, name: str) -> "_Lap":
        """Time a named section: ``with timer.lap("pca"): ...``."""
        return _Lap(self, name)

    def total(self) -> float:
        """Sum of all recorded laps plus any context-managed elapsed time."""
        return self.elapsed + sum(self.laps.values())

    def report(self) -> str:
        """Human-readable multi-line lap report."""
        lines = [f"{name:<24s} {format_duration(t)}" for name, t in self.laps.items()]
        if self.elapsed:
            lines.append(f"{'<total>':<24s} {format_duration(self.elapsed)}")
        return "\n".join(lines)


class _Lap:
    def __init__(self, timer: Timer, name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        dt = time.perf_counter() - self._start
        self._timer.laps[self._name] = self._timer.laps.get(self._name, 0.0) + dt
