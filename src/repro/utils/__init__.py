"""Shared low-level utilities: seeding, validation, timing, and array I/O.

These helpers are deliberately tiny and dependency-free so that every other
subpackage (:mod:`repro.simcluster`, :mod:`repro.ml`, :mod:`repro.nn`, ...)
can use them without import cycles.
"""

from repro.utils.rng import SeedSequenceFactory, as_generator, spawn_generators
from repro.utils.validation import (
    check_2d,
    check_3d,
    check_array,
    check_consistent_length,
    check_labels,
    check_probability,
    check_positive,
)
from repro.utils.timer import Timer, format_duration
from repro.utils.arrayio import load_npz_dataset, save_npz_dataset
from repro.utils.persist import load_model, save_model

__all__ = [
    "SeedSequenceFactory",
    "as_generator",
    "spawn_generators",
    "check_array",
    "check_2d",
    "check_3d",
    "check_consistent_length",
    "check_labels",
    "check_probability",
    "check_positive",
    "Timer",
    "format_duration",
    "save_npz_dataset",
    "load_npz_dataset",
    "save_model",
    "load_model",
]
