"""npz persistence in the exact file layout the challenge release uses.

Each challenge dataset is one ``.npz`` archive containing six arrays —
``X_train, y_train, model_train, X_test, y_test, model_test`` — matching the
description in Section III-A of the paper, so downstream tooling written
against the official release works unchanged against our synthetic datasets.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_npz_dataset", "load_npz_dataset", "CHALLENGE_KEYS"]

CHALLENGE_KEYS = ("X_train", "y_train", "model_train", "X_test", "y_test", "model_test")


def save_npz_dataset(
    path: str | Path,
    *,
    X_train: np.ndarray,
    y_train: np.ndarray,
    model_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    model_test: np.ndarray,
    compress: bool = True,
) -> Path:
    """Write one challenge dataset to ``path`` in the paper's npz layout."""
    path = Path(path)
    if X_train.ndim != 3 or X_test.ndim != 3:
        raise ValueError(
            "X arrays must be 3-D (trials, samples, sensors); "
            f"got {X_train.shape} and {X_test.shape}"
        )
    if X_train.shape[0] != y_train.shape[0] or X_train.shape[0] != model_train.shape[0]:
        raise ValueError("train arrays have inconsistent trial counts")
    if X_test.shape[0] != y_test.shape[0] or X_test.shape[0] != model_test.shape[0]:
        raise ValueError("test arrays have inconsistent trial counts")
    if X_train.shape[1:] != X_test.shape[1:]:
        raise ValueError(
            f"train/test window shapes differ: {X_train.shape[1:]} vs {X_test.shape[1:]}"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    saver = np.savez_compressed if compress else np.savez
    saver(
        path,
        X_train=X_train,
        y_train=y_train,
        model_train=model_train,
        X_test=X_test,
        y_test=y_test,
        model_test=model_test,
    )
    return path


def load_npz_dataset(path: str | Path) -> dict[str, np.ndarray]:
    """Load a challenge dataset npz, validating the expected key layout."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as archive:
        missing = [k for k in CHALLENGE_KEYS if k not in archive.files]
        if missing:
            raise KeyError(f"{path} is missing challenge keys: {missing}")
        return {k: archive[k] for k in CHALLENGE_KEYS}
