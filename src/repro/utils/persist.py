"""Crash-safe model persistence.

Fitted estimators in this package are plain Python objects over NumPy
arrays, so pickling is safe and complete.  These helpers add what raw
pickle lacks:

* a format header that rejects non-repro files early, with a version
  stamp so future releases can warn on mismatches;
* **atomic writes** — payloads are written to a temporary file in the
  destination directory, fsynced, then ``os.replace``d over the target, so
  a crash at any instant leaves either the old file or the new file, never
  a truncated hybrid (a stray ``*.tmp`` at worst);
* an optional **CRC32 checksum** over the pickled model bytes, stored in
  the ``repro-model-v1`` header, so silent corruption (bad disk, partial
  rsync) is detected at load time instead of surfacing as a garbled model.

Files written by older releases (header carrying the model object inline,
no checksum) still load.

Security note: as with any pickle-based format, only load model files you
produced or trust.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
import zlib
from pathlib import Path

from repro.resilience.faults import fault_point

__all__ = ["save_model", "load_model", "atomic_write_bytes"]

_MAGIC = "repro-model-v1"


def atomic_write_bytes(path: str | Path, data: bytes, *, fsync: bool = True) -> Path:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + replace).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename — atomic on POSIX.  With
    ``fsync=True`` (default) the payload is flushed to disk before the
    rename and the directory entry after it, so the write survives power
    loss, not just process death.  A crash mid-write leaves at most a
    ``<name>.*.tmp`` file, which every reader in this package ignores.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            half = len(data) // 2
            handle.write(data[:half])
            fault_point("persist.mid_write")
            handle.write(data[half:])
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        fault_point("persist.before_replace")
        os.replace(tmp, path)
        fault_point("persist.after_replace")
        if fsync:
            _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (rename durability); best-effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. some network filesystems
        pass
    finally:
        os.close(fd)


def save_model(
    model, path: str | Path, *, checksum: bool = True, fsync: bool = True
) -> Path:
    """Serialize a (fitted or unfitted) estimator to ``path`` atomically.

    With ``checksum=True`` (default) a CRC32 over the pickled model bytes
    is stored in the header and verified by :func:`load_model`.  The write
    is atomic either way: a crash mid-save leaves the previous file (if
    any) intact.
    """
    import repro

    path = Path(path)
    model_pickle = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    payload = {
        "magic": _MAGIC,
        "repro_version": repro.__version__,
        "model_class": type(model).__name__,
        "crc32": zlib.crc32(model_pickle) if checksum else None,
        "model_pickle": model_pickle,
    }
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return atomic_write_bytes(path, data, fsync=fsync)


def load_model(path: str | Path, *, verify_checksum: bool = True):
    """Load an estimator saved by :func:`save_model`.

    Raises ``FileNotFoundError`` (with the resolved path) for missing
    files, ``ValueError`` for files that are not repro model archives or
    whose stored CRC32 no longer matches the payload (silent corruption);
    warns (but proceeds) when the saving library version differs.  Files
    from releases that stored the model inline without a checksum still
    load.
    """
    import repro

    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(
            f"no model file at {path} (resolved: {path.resolve()})"
        )
    with path.open("rb") as handle:
        try:
            payload = pickle.load(handle)
        except Exception as exc:  # corrupt / not a pickle
            raise ValueError(f"{path} is not a repro model file: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a repro model file")
    saved = payload.get("repro_version")
    if saved != repro.__version__:
        warnings.warn(
            f"model was saved with repro {saved}, loading under "
            f"{repro.__version__}",
            stacklevel=2,
        )
    if "model_pickle" not in payload:
        return payload["model"]  # legacy (pre-checksum) archive
    model_pickle = payload["model_pickle"]
    stored_crc = payload.get("crc32")
    if verify_checksum and stored_crc is not None:
        actual = zlib.crc32(model_pickle)
        if actual != stored_crc:
            raise ValueError(
                f"{path} failed its CRC32 check "
                f"(stored {stored_crc:#010x}, payload {actual:#010x}): "
                "the archive is corrupt"
            )
    try:
        return pickle.loads(model_pickle)
    except Exception as exc:
        raise ValueError(f"{path} has a corrupt model payload: {exc}") from exc
