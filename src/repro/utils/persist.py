"""Model persistence.

Fitted estimators in this package are plain Python objects over NumPy
arrays, so pickling is safe and complete.  These helpers add the two
things raw pickle lacks: a format header that rejects non-repro files
early, and a version stamp so future releases can warn on mismatches.

Security note: as with any pickle-based format, only load model files you
produced or trust.
"""

from __future__ import annotations

import pickle
import warnings
from pathlib import Path

__all__ = ["save_model", "load_model"]

_MAGIC = "repro-model-v1"


def save_model(model, path: str | Path) -> Path:
    """Serialize a (fitted or unfitted) estimator to ``path``."""
    import repro

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "magic": _MAGIC,
        "repro_version": repro.__version__,
        "model_class": type(model).__name__,
        "model": model,
    }
    with path.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_model(path: str | Path):
    """Load an estimator saved by :func:`save_model`.

    Raises ``FileNotFoundError`` (with the resolved path) for missing
    files, ``ValueError`` for files that are not repro model archives;
    warns (but proceeds) when the saving library version differs.
    """
    import repro

    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(
            f"no model file at {path} (resolved: {path.resolve()})"
        )
    with path.open("rb") as handle:
        try:
            payload = pickle.load(handle)
        except Exception as exc:  # corrupt / not a pickle
            raise ValueError(f"{path} is not a repro model file: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a repro model file")
    saved = payload.get("repro_version")
    if saved != repro.__version__:
        warnings.warn(
            f"model was saved with repro {saved}, loading under "
            f"{repro.__version__}",
            stacklevel=2,
        )
    return payload["model"]
