"""Input validation helpers shared across the ML and simulator stacks.

The estimators in :mod:`repro.ml` follow the scikit-learn convention of
validating at the public-API boundary and trusting arrays internally, which
keeps hot loops free of per-call checks (see the optimization guide: validate
once, then operate on raw ndarrays).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_array",
    "check_2d",
    "check_3d",
    "check_consistent_length",
    "check_labels",
    "check_probability",
    "check_positive",
]


def check_array(
    X,
    *,
    name: str = "X",
    dtype=np.float64,
    allow_nan: bool = False,
    copy: bool = False,
) -> np.ndarray:
    """Coerce ``X`` to an ndarray of ``dtype`` and check finiteness.

    Returns a contiguous array; only copies when coercion requires it or
    ``copy=True`` (views are preserved otherwise, per the "use views, not
    copies" guidance).
    """
    arr = np.array(X, dtype=dtype, copy=copy) if copy else np.asarray(X, dtype=dtype)
    if arr.size == 0:
        raise ValueError(f"{name} is empty")
    if not allow_nan and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_2d(X, *, name: str = "X", dtype=np.float64) -> np.ndarray:
    """Validate a 2-D ``(n_samples, n_features)`` design matrix."""
    arr = check_array(X, name=name, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n_samples, n_features), got shape {arr.shape}")
    return arr


def check_3d(X, *, name: str = "X", dtype=np.float64) -> np.ndarray:
    """Validate a 3-D ``(n_trials, n_timesteps, n_sensors)`` tensor."""
    arr = check_array(X, name=name, dtype=dtype)
    if arr.ndim != 3:
        raise ValueError(
            f"{name} must be 3-D (n_trials, n_timesteps, n_sensors), got shape {arr.shape}"
        )
    return arr


def check_consistent_length(*arrays, names: tuple[str, ...] | None = None) -> None:
    """Raise if the leading dimensions of the given arrays differ."""
    lengths = [len(a) for a in arrays]
    if len(set(lengths)) > 1:
        labels = names or tuple(f"array{i}" for i in range(len(arrays)))
        detail = ", ".join(f"{n}={l}" for n, l in zip(labels, lengths))
        raise ValueError(f"inconsistent sample counts: {detail}")


def check_labels(y, *, name: str = "y", n_samples: int | None = None) -> np.ndarray:
    """Validate an integer class-label vector; returns an int64 array."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} is empty")
    if not np.issubdtype(arr.dtype, np.integer):
        cast = arr.astype(np.int64)
        if not np.array_equal(cast, arr):
            raise ValueError(f"{name} must contain integer class labels")
        arr = cast
    else:
        arr = arr.astype(np.int64)
    if n_samples is not None and arr.shape[0] != n_samples:
        raise ValueError(f"{name} has {arr.shape[0]} labels for {n_samples} samples")
    return arr


def check_probability(value: float, *, name: str) -> float:
    """Validate a probability in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value, *, name: str, strict: bool = True):
    """Validate a (strictly) positive scalar."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value
