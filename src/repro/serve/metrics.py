"""Serving observability: counters, gauges, and histograms.

Fleet-scale monitoring lives or dies on cheap, always-on metrics (the
lesson of large-cluster reliability studies): every admission decision,
batch flush, and prediction emission in :mod:`repro.serve` increments a
metric here.  The registry renders both a machine-readable dict and the
operator-facing text report printed by ``repro serve-bench``.

Everything is plain Python — no background threads, no sampling clocks —
so recorded values are exactly reproducible for a deterministic workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


@dataclass
class Counter:
    """Monotonically increasing event count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) events; ``n`` must be non-negative."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n


@dataclass
class Gauge:
    """Point-in-time level (queue depth, warm models, active sessions)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current level."""
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        """Raise the level by ``n`` (default 1) — no read-modify-write."""
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        """Lower the level by ``n`` (default 1)."""
        self.value -= n


@dataclass
class Histogram:
    """Distribution of observations with percentile summaries.

    Observations are kept exactly (bounded by ``capacity``); once full,
    every second retained sample is dropped and the stride between kept
    samples doubles — a deterministic decimation that preserves coverage
    of the whole run without unbounded memory.
    """

    name: str
    capacity: int = 65536
    _values: list[float] = field(default_factory=list, repr=False)
    _stride: int = field(default=1, repr=False)
    _seen_since_kept: int = field(default=0, repr=False)
    count: int = 0
    total: float = 0.0
    # True extremes over *all* observations: decimation drops samples, so
    # min/max over the retained ``_values`` would silently lose outliers.
    _min: float = field(default=math.inf, repr=False)
    _max: float = field(default=-math.inf, repr=False)

    def __post_init__(self):
        if self.capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {self.capacity}")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"observation must be finite, got {value}")
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._seen_since_kept += 1
        if self._seen_since_kept >= self._stride:
            self._values.append(value)
            self._seen_since_kept = 0
            if len(self._values) >= self.capacity:
                self._values = self._values[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100].

        Interior percentiles come from the retained samples (approximate
        once decimation has dropped samples).  ``q=0`` and ``q=100``
        return the exact tracked ``min``/``max`` — decimation may have
        dropped the extreme sample, so the retained-sample extremes can
        silently disagree with the true ones.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return float("nan")
        if q == 0.0:
            return self._min
        if q == 100.0:
            return self._max
        if not self._values:
            return float("nan")
        ordered = sorted(self._values)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> dict:
        """Count, mean, min/max and the p50/p95/p99 operator percentiles."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self._min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self._max,
        }

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram; returns self.

        Counts, totals, and true min/max combine exactly.  Retained
        samples are concatenated (percentiles re-sort on demand), so as
        long as neither side has decimated (count < capacity on both —
        the common case for per-run fleet aggregation) the merged
        percentiles are *exact*: identical to a single histogram that
        observed every sample.  Once a side has decimated, the merge is
        as approximate as that side already was.  The merged sample list
        may transiently exceed ``capacity``; the next :meth:`observe`
        re-applies decimation.
        """
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        self._values.extend(other._values)
        self._stride = max(self._stride, other._stride)
        return self


class MetricsRegistry:
    """Named metric store shared across the serving components.

    ``counter``/``gauge``/``histogram`` create on first use and return the
    existing instrument afterwards, so components can reference metrics by
    name without wiring ceremony.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, *, capacity: int = 65536) -> Histogram:
        """Get or create the histogram called ``name``.

        ``capacity`` only takes effect on first creation; a later lookup
        with a different capacity returns the existing instrument
        unchanged.  (Fleet merges rely on this: the destination histogram
        is created with the *source's* capacity so decimation behavior
        survives aggregation.)
        """
        hist = self._histograms.get(name)
        if hist is None:
            # get-or-create without setdefault: constructing a throwaway
            # Histogram per lookup would cost an allocation on every
            # hot-path observe.
            hist = self._histograms[name] = Histogram(name, capacity=capacity)
        return hist

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one; returns self.

        The fleet router aggregates per-worker registries this way:
        counters add, gauges *sum* (per-worker queue depths and session
        counts sum to the fleet level), and histograms merge via
        :meth:`Histogram.merge` — percentile summaries over the union of
        samples, never a flattened average-of-averages.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).inc(gauge.value)
        for name, hist in other._histograms.items():
            self.histogram(name, capacity=hist.capacity).merge(hist)
        return self

    def as_dict(self) -> dict:
        """Snapshot every metric as plain values (histograms summarized)."""
        out: dict = {}
        for name, c in sorted(self._counters.items()):
            out[name] = c.value
        for name, g in sorted(self._gauges.items()):
            out[name] = g.value
        for name, h in sorted(self._histograms.items()):
            out[name] = h.summary()
        return out

    def report(self) -> str:
        """Operator-facing text report, one metric per line."""
        lines: list[str] = []
        width = max(
            (len(n) for n in (*self._counters, *self._gauges, *self._histograms)),
            default=0,
        )
        for name, c in sorted(self._counters.items()):
            lines.append(f"{name:<{width}}  {c.value}")
        for name, g in sorted(self._gauges.items()):
            lines.append(f"{name:<{width}}  {g.value:g}")
        for name, h in sorted(self._histograms.items()):
            s = h.summary()
            if s["count"] == 0:
                lines.append(f"{name:<{width}}  (no observations)")
                continue
            lines.append(
                f"{name:<{width}}  n={s['count']} mean={s['mean']:.4g} "
                f"p50={s['p50']:.4g} p95={s['p95']:.4g} "
                f"p99={s['p99']:.4g} max={s['max']:.4g}"
            )
        return "\n".join(lines)
