"""Deterministic fleet load generator for the inference server.

Replays :mod:`repro.simcluster` telemetry as ``n_jobs`` concurrent job
streams against an :class:`~repro.serve.server.InferenceServer`: each
simulated job is assigned a (seeded) labelled GPU series and a staggered
start tick, then every tick delivers ``samples_per_tick`` rows per active
job — i.e. a fleet polling cadence of ``samples_per_tick / 9`` seconds at
the paper's 9 Hz sampling rate.  Time is a :class:`SimulatedClock` shared
with the server, so batching deadlines, latencies, and shed decisions are
bit-for-bit reproducible for a fixed seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.server import Emission, InferenceServer
from repro.simcluster.workload import DEFAULT_DT_S
from repro.utils.rng import as_generator

__all__ = ["SimulatedClock", "ManualClock", "LoadReport", "FleetLoadGenerator"]


class SimulatedClock:
    """Manually advanced monotonic clock (callable like ``time.monotonic``).

    One instance is meant to be *shared*: the load generator, every
    server/worker, the fleet router, and heartbeat leases all read the
    same ``clock()`` so batching deadlines, latencies, and failure
    detection advance in lockstep.  Construct it once and pass it to
    every component (``FleetLoadGenerator(..., clock=clock)``,
    ``InferenceServer(..., clock=clock)``, …).
    """

    def __init__(self, start_s: float = 0.0):
        self._now = float(start_s)

    def __call__(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt_s: float) -> float:
        """Move time forward by ``dt_s`` seconds; returns the new time."""
        if dt_s < 0:
            raise ValueError(f"dt_s must be >= 0, got {dt_s}")
        self._now += dt_s
        return self._now

    def advance_to(self, now_s: float) -> float:
        """Move time forward to ``now_s`` (no-op when already past it).

        Monotonic by construction — a subprocess fleet worker syncs its
        local clock to the router's timestamp with this, and a late or
        reordered message can never run time backwards.
        """
        if now_s > self._now:
            self._now = float(now_s)
        return self._now


#: Historical name for :class:`SimulatedClock` — kept as an alias because
#: "manual clock" is how the fleet docs/tests refer to the shared
#: hand-advanced time source.
ManualClock = SimulatedClock


@dataclass
class LoadReport:
    """Outcome of one fleet replay."""

    emissions: list[Emission]
    n_jobs: int
    n_ticks: int
    sim_seconds: float          # simulated stream duration
    wall_seconds: float         # real compute time for the whole replay
    true_labels: dict = field(default_factory=dict)

    @property
    def n_predictions(self) -> int:
        """Total predictions emitted across the fleet."""
        return len(self.emissions)

    @property
    def windows_per_second(self) -> float:
        """Serving throughput: classified windows per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("nan")
        return self.n_predictions / self.wall_seconds

    def final_smoothed(self) -> dict:
        """Last smoothed label per job — the operator's fleet view."""
        out: dict = {}
        for emission in self.emissions:
            out[emission.job_id] = emission.prediction.smoothed_label
        return out

    def smoothed_accuracy(self) -> float:
        """Fraction of jobs whose final smoothed label is correct."""
        final = self.final_smoothed()
        scored = [
            int(final[job]) == int(label)
            for job, label in self.true_labels.items()
            if job in final
        ]
        return sum(scored) / len(scored) if scored else float("nan")


class FleetLoadGenerator:
    """Replay labelled telemetry as a fleet of concurrent job streams.

    Parameters
    ----------
    series:
        Candidate telemetry series, each ``(n_samples, 7)``; jobs draw
        from these (with replacement) under the generator's seed.
    labels:
        True class label per series (for the report's accuracy view).
    n_jobs:
        Concurrent simulated job streams.
    samples_per_tick:
        Telemetry rows delivered per job per tick (90 = 10 s at 9 Hz).
    max_samples_per_job:
        Truncate each stream to this many rows (None = full series).
    stagger_ticks:
        Each job starts at a seeded random tick in ``[0, stagger_ticks]``,
        desynchronizing window boundaries across the fleet.
    seed:
        Drives series assignment and stagger; fixes the whole replay.
    rate:
        Replay-rate multiplier: ``2.0`` delivers the same rows in half
        the simulated time (tick duration divided by ``rate``).  Chunk
        contents and order are unaffected.
    clock:
        Shared :class:`SimulatedClock` driving the replay.  Historically
        each generator built a private clock and every *other* component
        defaulted to ``time.monotonic``, so wiring a router, workers,
        and heartbeat timers onto one deterministic timeline meant
        threading ``gen.clock`` around by hand after construction.  Pass
        one clock instance here and to each component instead; ``None``
        keeps the old behavior of creating a fresh clock.
    keep_dtype:
        Keep each series' own dtype instead of the historical float64
        coercion — required for zero-copy replay of float32 memmap views
        handed out by :class:`~repro.store.TelemetryStore`.
    drift:
        Optional :class:`~repro.monitor.inject.DriftInjection`: replayed
        streams get the sensor gain/offset ramp, and a seeded
        ``class_shift_fraction`` of jobs splice to a donor series of a
        different class at the injection offset.  ``None`` replays clean
        telemetry, bit-for-bit identical to before the hook existed.
    """

    def __init__(
        self,
        series: list[np.ndarray],
        labels: list[int] | None = None,
        *,
        n_jobs: int = 16,
        samples_per_tick: int = 90,
        max_samples_per_job: int | None = None,
        stagger_ticks: int = 3,
        seed: int = 0,
        rate: float = 1.0,
        clock: SimulatedClock | None = None,
        keep_dtype: bool = False,
        drift=None,
    ):
        if not series:
            raise ValueError("need at least one telemetry series")
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if samples_per_tick < 1:
            raise ValueError(
                f"samples_per_tick must be >= 1, got {samples_per_tick}"
            )
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if keep_dtype:
            self.series = [np.asarray(s) for s in series]
        else:
            self.series = [np.asarray(s, dtype=np.float64) for s in series]
        self.labels = list(labels) if labels is not None else None
        if self.labels is not None and len(self.labels) != len(self.series):
            raise ValueError("labels and series lengths differ")
        self.n_jobs = n_jobs
        self.samples_per_tick = samples_per_tick
        self.max_samples_per_job = max_samples_per_job
        self.rate = float(rate)
        self.tick_s = samples_per_tick * DEFAULT_DT_S / self.rate
        self.clock = clock if clock is not None else SimulatedClock()
        rng = as_generator(seed)
        self._assignment = rng.integers(0, len(self.series), size=n_jobs)
        self._start_tick = rng.integers(0, stagger_ticks + 1, size=n_jobs)
        self.drift = drift
        self._donors: dict[int, int] = {}
        self._stream_cache: dict[int, np.ndarray] = {}
        if drift is not None and drift.class_shift_fraction > 0.0:
            self._pick_class_shift_donors(rng)

    @classmethod
    def from_simulation(
        cls,
        config=None,
        *,
        n_jobs: int = 16,
        min_samples: int = 540,
        **kwargs,
    ) -> "FleetLoadGenerator":
        """Build a generator from a fresh :mod:`repro.simcluster` run.

        ``config`` is a :class:`~repro.simcluster.cluster.SimulationConfig`
        (or None for defaults); only trials with at least ``min_samples``
        rows are replayed, mirroring the release's eligibility rule.
        """
        from repro.data.labelled import build_labelled_dataset

        labelled = build_labelled_dataset(config).eligible(min_samples)
        if not len(labelled.trials):
            raise ValueError(
                f"simulation produced no trials with >= {min_samples} samples"
            )
        return cls(
            [t.series for t in labelled.trials],
            [t.label for t in labelled.trials],
            n_jobs=n_jobs,
            **kwargs,
        )

    @classmethod
    def from_store(
        cls,
        store,
        *,
        n_jobs: int = 16,
        min_samples: int = 540,
        **kwargs,
    ) -> "FleetLoadGenerator":
        """Replay telemetry straight out of a :class:`TelemetryStore`.

        Sealed trials are replayed as zero-copy float32 memmap views
        (``keep_dtype`` defaults on); only trials with at least
        ``min_samples`` rows participate, mirroring
        :meth:`from_simulation`.
        """
        series: list[np.ndarray] = []
        labels: list[int] = []
        for _key, info, data in store.iter_trials():
            if data.shape[0] >= min_samples:
                series.append(data)
                labels.append(info.label)
        if not series:
            raise ValueError(
                f"store {store.root} has no trials with >= {min_samples} samples"
            )
        kwargs.setdefault("keep_dtype", True)
        return cls(series, labels, n_jobs=n_jobs, **kwargs)

    # ------------------------------------------------------------------
    def _pick_class_shift_donors(self, rng) -> None:
        """Seeded donor assignment for class-mix drift (init-time only)."""
        from repro.monitor.inject import DriftInjection  # avoid cycle at import

        drift: DriftInjection = self.drift
        if self.labels is None:
            raise ValueError(
                "class_shift_fraction needs labels to pick donor classes"
            )
        n_shift = int(round(drift.class_shift_fraction * self.n_jobs))
        shifted = rng.choice(self.n_jobs, size=n_shift, replace=False)
        for job in shifted:
            own = int(self.labels[int(self._assignment[job])])
            candidates = [
                i for i, label in enumerate(self.labels)
                if int(label) != own
                and (drift.class_shift_to is None
                     or int(label) == drift.class_shift_to)
            ]
            if candidates:
                self._donors[int(job)] = candidates[
                    int(rng.integers(len(candidates)))]

    def job_stream(self, job: int) -> np.ndarray:
        """The telemetry series replayed by simulated job ``job``.

        With a :attr:`drift` injection attached this is the *perturbed*
        stream (computed once and cached); length always matches the
        clean stream so tick counts are unaffected.
        """
        data = self.series[int(self._assignment[job])]
        if self.max_samples_per_job is not None:
            data = data[: self.max_samples_per_job]
        if self.drift is None:
            return data
        cached = self._stream_cache.get(job)
        if cached is None:
            cached = self._inject(job, data)
            self._stream_cache[job] = cached
        return cached

    def _inject(self, job: int, data: np.ndarray) -> np.ndarray:
        from repro.monitor.inject import inject_series

        start = self.drift.start_sample
        donor_idx = self._donors.get(job)
        if donor_idx is not None and start < data.shape[0]:
            donor = self.series[donor_idx]
            needed = data.shape[0] - start
            # Continue the stream with donor telemetry from the same
            # stream position (tiled when the donor is shorter).
            tail = donor[start: start + needed]
            if tail.shape[0] < needed:
                reps = -(-needed // max(1, donor.shape[0]))
                tail = np.tile(donor, (reps, 1))[:needed]
            data = np.vstack([data[:start], tail])
        return inject_series(data, self.drift)

    def class_shifted_jobs(self) -> dict[int, int]:
        """``job -> donor series index`` for class-mix drifted jobs."""
        return dict(self._donors)

    def true_label(self, job: int) -> int | None:
        """True class of job ``job``'s series (None when labels absent)."""
        if self.labels is None:
            return None
        return int(self.labels[int(self._assignment[job])])

    @property
    def n_ticks(self) -> int:
        """Ticks until every job's stream is exhausted."""
        ticks = 0
        for job in range(self.n_jobs):
            n = self.job_stream(job).shape[0]
            chunks = -(-n // self.samples_per_tick)        # ceil division
            ticks = max(ticks, int(self._start_tick[job]) + chunks)
        return ticks

    def run(
        self,
        server: InferenceServer,
        *,
        end_sessions: bool = True,
        route=None,
        on_tick=None,
        tracer=None,
    ) -> LoadReport:
        """Drive ``server`` through the whole fleet replay.

        The server must share this generator's :attr:`clock` (pass
        ``clock=gen.clock`` when constructing it).  Each tick submits one
        chunk per active job, steps the server, then advances simulated
        time; a final ``drain`` flushes partial batches.

        ``route`` (optional) maps ``job -> InferenceServer`` per tick and
        enables canary splits: returning a different server (sharing this
        clock) sends that job's next chunks there — a job rerouted
        mid-stream starts a fresh window on the new server, exactly like a
        reconnecting client.  Returning ``None`` keeps the primary.
        ``on_tick(tick, emissions)`` (optional) runs after every tick's
        step with that tick's emissions — the hook rollout controllers and
        alert evaluation attach to.

        ``tracer`` (optional :class:`~repro.trace.Tracer`) opens a root
        ``request`` span per submitted chunk — trace id ``j<job>.t<tick>``
        — and propagates its context through ``submit(..., trace=ctx)``,
        so downstream stages (routing, ingest, batching, predict, emit)
        attach to it.  The target must accept the ``trace`` keyword
        (:class:`InferenceServer` and the fleet router both do).
        Sampling is head-based at *job* granularity: the tracer's
        ``sample`` fraction picks whole job streams (hash of
        ``"j<job>"``), so a sampled job records a complete trace for
        every one of its chunks, and chunks of unsampled jobs take the
        untraced call path at the cost of one set test.
        """
        if server.clock is not self.clock:
            raise ValueError(
                "server must be constructed with clock=generator.clock "
                "for a deterministic replay"
            )
        servers: list[InferenceServer] = [server]
        emissions: list[Emission] = []
        finished: set[int] = set()
        traced_jobs: set[int] | None = None
        if tracer is not None:
            # One sampling decision per job stream, made up front: the
            # per-chunk alternative pays a hash on every submit of the
            # hot loop and records traces whose sibling chunks are
            # missing.  Deterministic (hash of "j<job>"), like all
            # tracer sampling.
            traced_jobs = {
                job for job in range(self.n_jobs)
                if tracer.sampled(f"j{job}")
            }
        tic = time.perf_counter()
        for tick in range(self.n_ticks):
            for job in range(self.n_jobs):
                start_tick = int(self._start_tick[job])
                if tick < start_tick or job in finished:
                    continue
                target = server
                if route is not None:
                    target = route(job) or server
                    if target is not server and target not in servers:
                        if target.clock is not self.clock:
                            raise ValueError(
                                "routed servers must share the "
                                "generator's clock"
                            )
                        servers.append(target)
                stream = self.job_stream(job)
                lo = (tick - start_tick) * self.samples_per_tick
                chunk = stream[lo: lo + self.samples_per_tick]
                if chunk.shape[0]:
                    if traced_jobs is None or job not in traced_jobs:
                        target.submit(job, chunk)
                    else:
                        ctx = tracer.root(f"j{job}.t{tick}")
                        now = self.clock()
                        tic_req = time.perf_counter()
                        accepted = target.submit(job, chunk, trace=ctx)
                        tracer.emit(
                            ctx, "request", start_s=now, end_s=now,
                            wall_s=time.perf_counter() - tic_req,
                            status="ok" if accepted else "refused",
                            annotations={"job": int(job), "tick": int(tick)},
                        )
                if lo + self.samples_per_tick >= stream.shape[0]:
                    finished.add(job)
            tick_emissions: list[Emission] = []
            for s in servers:
                tick_emissions.extend(s.step())
            emissions.extend(tick_emissions)
            if on_tick is not None:
                on_tick(tick, tick_emissions)
            self.clock.advance(self.tick_s)
        for s in servers:
            emissions.extend(s.drain())
        if end_sessions:
            for job in range(self.n_jobs):
                for s in servers:
                    s.end_session(job)
        wall = time.perf_counter() - tic
        true = {
            job: self.true_label(job)
            for job in range(self.n_jobs)
            if self.true_label(job) is not None
        }
        return LoadReport(
            emissions=emissions,
            n_jobs=self.n_jobs,
            n_ticks=self.n_ticks,
            sim_seconds=self.n_ticks * self.tick_s,
            wall_seconds=wall,
            true_labels=true,
        )
