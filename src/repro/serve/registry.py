"""Versioned model registry with lazy loading and a warm-model LRU.

The serving substrate needs a place where training jobs publish fitted
pipelines and inference servers fetch them by ``name`` (+ optional
``version``).  Storage is a plain directory tree —
``<root>/<name>/v<version>.pkl`` written via :mod:`repro.utils.persist` —
so a registry survives process restarts and can be rsync'd between
machines.  Loaded models are cached in a small LRU of *warm* models:
fleets serve a handful of hot pipelines out of many registered versions,
and deserializing a forest per request would dwarf the predict cost.
"""

from __future__ import annotations

import re
import warnings
from collections import OrderedDict
from pathlib import Path

from repro.resilience.faults import fault_point
from repro.utils.persist import atomic_write_bytes, load_model, save_model

__all__ = ["ModelRegistry"]

_VERSION_FILE = re.compile(r"^v(\d+)\.pkl$")


class ModelRegistry:
    """Directory-backed ``name -> version -> fitted model`` store.

    Parameters
    ----------
    root:
        Registry directory (created on first ``register``).
    warm_capacity:
        Maximum number of deserialized models kept in memory.  Least
        recently used entries are evicted first.
    """

    def __init__(self, root: str | Path, *, warm_capacity: int = 4):
        if warm_capacity < 1:
            raise ValueError(f"warm_capacity must be >= 1, got {warm_capacity}")
        self.root = Path(root)
        self.warm_capacity = warm_capacity
        self._warm: OrderedDict[tuple[str, int], object] = OrderedDict()
        self._latest: dict[str, int] = {}
        self.hits = 0
        self.misses = 0

    # -- publishing ----------------------------------------------------
    def register(self, name: str, model, *, version: int | None = None) -> int:
        """Save ``model`` under ``name``; returns the assigned version.

        ``version=None`` auto-increments past the latest registered
        version (starting at 1).  Explicitly re-registering an existing
        version overwrites it and invalidates any warm copy.
        """
        self._check_name(name)
        if version is None:
            existing = self.versions(name)
            version = (existing[-1] + 1) if existing else 1
        elif version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        save_model(model, self._path(name, version))
        self._warm.pop((name, version), None)
        # Keep the latest-version memo coherent: bump an existing entry
        # (an unseen name stays unmemoized until the next scan caches it).
        cached = self._latest.get(name)
        if cached is not None:
            self._latest[name] = max(cached, version)
        return version

    # -- fetching ------------------------------------------------------
    def get(self, name: str, version: int | None = None):
        """Return the model for ``name`` (latest version by default).

        Loads lazily from disk on a cold hit and promotes the model in
        the warm LRU; raises ``KeyError`` for unknown names/versions.
        """
        if version is None:
            version = self.latest_version(name)
        key = (name, version)
        if key in self._warm:
            self.hits += 1
            self._warm.move_to_end(key)
            return self._warm[key]
        self.misses += 1
        path = self._path(name, version)
        if not path.is_file():
            raise KeyError(f"no model {name!r} version {version} in {self.root}")
        model = load_model(path)
        self._warm[key] = model
        while len(self._warm) > self.warm_capacity:
            self._warm.popitem(last=False)
        return model

    # -- catalogue -----------------------------------------------------
    def names(self) -> list[str]:
        """Registered model names, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir() if p.is_dir() and self.versions(p.name)
        )

    def versions(self, name: str) -> list[int]:
        """Sorted registered versions of ``name`` (empty when unknown)."""
        self._check_name(name)
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        out = []
        for p in model_dir.iterdir():
            m = _VERSION_FILE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def latest_version(self, name: str) -> int:
        """Highest registered version of ``name``; ``KeyError`` if none.

        Memoized per name (``get(name)`` with ``version=None`` is on the
        hot serving path and must not pay a directory scan per call);
        :meth:`register` keeps the memo coherent.  External writers (e.g.
        an rsync from another machine) are picked up after
        :meth:`invalidate`.
        """
        cached = self._latest.get(name)
        if cached is not None:
            return cached
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"no model named {name!r} in {self.root}")
        self._latest[name] = versions[-1]
        return versions[-1]

    def invalidate(self, name: str | None = None) -> None:
        """Drop the latest-version memo (one name, or all when ``None``)."""
        if name is None:
            self._latest.clear()
        else:
            self._latest.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return bool(self.versions(name))

    # -- active-version pointer ----------------------------------------
    def set_active(self, name: str, version: int) -> None:
        """Mark ``version`` as the one servers should fetch for ``name``.

        The pointer is a plain ``ACTIVE`` file next to the version pickles
        (survives restarts, rsyncs with the registry); rollout controllers
        flip it on promotion and rollback.  The flip is atomic — a crash
        mid-write leaves the previous pointer intact, never a truncated
        one.  Raises ``KeyError`` when the version is not registered.
        """
        if version not in self.versions(name):
            raise KeyError(f"no model {name!r} version {version} in {self.root}")
        fault_point("registry.before_active_flip")
        atomic_write_bytes(
            self.root / name / "ACTIVE", f"{version}\n".encode("ascii")
        )

    def active_version(self, name: str) -> int:
        """The promoted version of ``name`` (latest when never pointed).

        A stale pointer — e.g. the active version's file was deleted — or
        a garbled one (torn write from a pre-atomic-write release, bad
        rsync) falls back to the latest registered version **with a
        warning**: silently un-promoting a rollback would re-serve the
        exact model an operator just pulled.
        """
        marker = self.root / name / "ACTIVE"
        if marker.is_file():
            text = marker.read_text()
            try:
                version = int(text.strip())
            except ValueError:
                warnings.warn(
                    f"garbled ACTIVE pointer for {name!r} "
                    f"({text!r:.40}): falling back to latest version",
                    stacklevel=2,
                )
                version = -1
            if version in self.versions(name):
                return version
            if version != -1:
                warnings.warn(
                    f"stale ACTIVE pointer for {name!r} (v{version} not "
                    "registered): falling back to latest version",
                    stacklevel=2,
                )
        return self.latest_version(name)

    def get_active(self, name: str):
        """Fetch the promoted model for ``name`` (see :meth:`active_version`)."""
        return self.get(name, self.active_version(name))

    # -- cache management ----------------------------------------------
    @property
    def warm_count(self) -> int:
        """Number of models currently deserialized in memory."""
        return len(self._warm)

    def evict(self, name: str, version: int | None = None) -> int:
        """Drop warm copies of ``name`` (one version or all); returns count."""
        keys = [
            k for k in self._warm
            if k[0] == name and (version is None or k[1] == version)
        ]
        for k in keys:
            del self._warm[k]
        return len(keys)

    # -- internals -----------------------------------------------------
    def _path(self, name: str, version: int) -> Path:
        return self.root / name / f"v{version}.pkl"

    @staticmethod
    def _check_name(name: str) -> None:
        if not re.fullmatch(r"[A-Za-z0-9._-]+", name):
            raise ValueError(
                f"model name must match [A-Za-z0-9._-]+, got {name!r}"
            )
