"""Fleet-scale streaming inference service (the serving substrate).

The paper's deployment vision — classifying "snapshots of data from live
workloads running in-progress" — at production scale: thousands of
concurrent job streams, one model call per tick.

* :class:`ModelRegistry` — versioned on-disk store of fitted pipelines
  with a warm-model LRU.
* :class:`StreamSession` — per-job sliding windows with the online
  classifier's window/hop/vote semantics, decoupled from ``predict``.
* :class:`MicroBatcher` — coalesces ready windows across sessions into
  batched ``predict`` calls (size/deadline bounded).
* :class:`InferenceServer` — bounded ingress, admission control
  (shed-oldest / reject), graceful drain.
* :class:`MetricsRegistry` — counters, gauges, latency/batch histograms
  with p50/p95/p99 summaries.
* :class:`FleetLoadGenerator` — deterministic replay of simulated
  telemetry fleets, driving the whole stack end to end
  (``repro serve-bench``).
"""

from repro.serve.batcher import BatchCompletion, MicroBatcher
from repro.serve.loadgen import (
    FleetLoadGenerator,
    LoadReport,
    ManualClock,
    SimulatedClock,
)
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.registry import ModelRegistry
from repro.serve.server import Emission, InferenceServer, ServeConfig, SubmitResult
from repro.serve.session import StreamSession, WindowRequest

__all__ = [
    "BatchCompletion",
    "MicroBatcher",
    "FleetLoadGenerator",
    "LoadReport",
    "ManualClock",
    "SimulatedClock",
    "SubmitResult",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ModelRegistry",
    "Emission",
    "InferenceServer",
    "ServeConfig",
    "StreamSession",
    "WindowRequest",
]
