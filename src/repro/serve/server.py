"""Synchronous-core inference server: ingress, admission, batching, drain.

:class:`InferenceServer` is the assembly point of :mod:`repro.serve`: a
bounded ingress queue in front of per-job :class:`StreamSession` state,
with every due window routed through the shared :class:`MicroBatcher`.
The core is deliberately synchronous — ``submit`` enqueues, ``step``
processes — because determinism is a feature here (the load generator
replays identical fleets, tests pin exact shed counts) and an async or
threaded front-end can wrap this core without changing its semantics.

Admission control implements the two classic overload policies:

* ``"shed-oldest"`` — drop the oldest queued chunk to admit the new one
  (freshness wins; stale telemetry is the least valuable).
* ``"reject"`` — refuse the new chunk (``submit`` returns a falsy
  :class:`SubmitResult`), pushing backpressure to the caller.

``submit`` answers with a typed :class:`SubmitResult` rather than a bare
bool/exception so upstream tiers (the fleet router) can tell *recoverable*
refusals apart: ``REJECTED`` means overload (retry or shed), ``DRAINING``
means this replica is shutting down (fail over to another), and anything
else reaching the caller is a programming error.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.streaming import StreamPrediction
from repro.serve.batcher import BatchCompletion, MicroBatcher
from repro.serve.metrics import MetricsRegistry
from repro.serve.session import StreamSession

__all__ = ["ServeConfig", "Emission", "InferenceServer", "SubmitResult"]

_ADMISSION_POLICIES = ("shed-oldest", "reject")


class SubmitResult(enum.Enum):
    """Typed outcome of :meth:`InferenceServer.submit`.

    Truthiness preserves the historical bool contract: ``ACCEPTED`` is
    truthy, every refusal is falsy — ``if not server.submit(...)`` still
    reads "the chunk did not get in".
    """

    ACCEPTED = "accepted"       # chunk enqueued (possibly shedding an older one)
    REJECTED = "rejected"       # queue full under the "reject" policy
    DRAINING = "draining"       # server is draining; fail over, don't retry

    def __bool__(self) -> bool:
        return self is SubmitResult.ACCEPTED


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for one :class:`InferenceServer`.

    Window semantics (``window``/``hop``/``vote_window``) are per session
    and mirror :class:`~repro.core.streaming.OnlineWorkloadClassifier`;
    ``max_batch``/``flush_deadline_s`` bound the micro-batcher;
    ``queue_capacity``/``admission`` govern ingress overload behavior.
    """

    window: int = 540
    hop: int = 90
    vote_window: int = 5
    max_batch: int = 64
    flush_deadline_s: float = 0.25
    queue_capacity: int = 1024
    admission: str = "shed-oldest"

    def __post_init__(self):
        if self.admission not in _ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {_ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )


@dataclass(frozen=True)
class Emission:
    """One prediction leaving the server."""

    job_id: object
    prediction: StreamPrediction
    latency_s: float            # window-ready to prediction-out, server clock


class InferenceServer:
    """Multi-tenant streaming classifier over a shared micro-batcher.

    Parameters
    ----------
    model:
        Fitted estimator with ``predict`` over ``(n, window, sensors)``
        (typically fetched from a :class:`~repro.serve.registry.ModelRegistry`).
    config:
        A :class:`ServeConfig`; defaults are challenge-shaped (540/90/5).
    clock:
        Monotonic time source, injectable for deterministic replay.
    metrics:
        Optional shared :class:`MetricsRegistry`; one is created when
        omitted and exposed as ``server.metrics``.
    taps:
        Monitor taps (see :mod:`repro.monitor`): objects that observe
        traffic without affecting it.  A tap may implement
        ``on_ingress(job_id, samples)`` — called for every chunk as it
        leaves the ingress queue — and/or ``on_batch(completions)`` —
        called with each non-empty list of classified windows before
        they are folded back into sessions.
    tracer:
        Optional :class:`~repro.trace.Tracer`.  When set, chunks
        submitted with a trace context get per-stage spans (``ingest``,
        ``batch.wait``, ``predict``, ``emit``, ``taps``) attached to the
        caller's tree; untraced chunks and ``tracer=None`` pay only a
        ``None`` check.
    """

    def __init__(
        self,
        model,
        config: ServeConfig | None = None,
        *,
        clock=time.monotonic,
        metrics: MetricsRegistry | None = None,
        taps=(),
        tracer=None,
    ):
        self.config = config or ServeConfig()
        self.clock = clock
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._ingress_taps = []
        self._batch_taps = []
        for tap in taps:
            self.add_tap(tap)
        self.batcher = MicroBatcher(
            model,
            max_batch=self.config.max_batch,
            max_delay_s=self.config.flush_deadline_s,
            clock=clock,
            metrics=self.metrics,
        )
        self._sessions: dict[object, StreamSession] = {}
        # (job_id, samples, trace context or None)
        self._ingress: deque[tuple[object, np.ndarray, object]] = deque()
        self._draining = False

    def add_tap(self, tap) -> None:
        """Attach a monitor tap (``on_ingress`` and/or ``on_batch``)."""
        has_ingress = hasattr(tap, "on_ingress")
        has_batch = hasattr(tap, "on_batch")
        if not (has_ingress or has_batch):
            raise TypeError(
                "tap must implement on_ingress(job_id, samples) and/or "
                "on_batch(completions)"
            )
        if has_ingress:
            self._ingress_taps.append(tap)
        if has_batch:
            self._batch_taps.append(tap)

    # -- ingress -------------------------------------------------------
    def submit(self, job_id, samples, *, trace=None) -> SubmitResult:
        """Enqueue a telemetry chunk for ``job_id``; falsy when refused.

        Applies the configured admission policy when the ingress queue is
        at capacity.  Chunks are processed on the next :meth:`step`.  The
        returned :class:`SubmitResult` distinguishes ``REJECTED``
        (overload backpressure) from ``DRAINING`` (replica shutting down
        — a router should fail the chunk over rather than retry here).
        ``trace`` (a trace context or None) rides the queue with the
        chunk; serve-stage spans attach under it once the chunk is
        processed.  A shed chunk's context is dropped with it.
        """
        if self._draining:
            self.metrics.counter("ingress.draining").inc()
            return SubmitResult.DRAINING
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        self.metrics.counter("ingress.chunks").inc()
        if len(self._ingress) >= self.config.queue_capacity:
            if self.config.admission == "reject":
                self.metrics.counter("ingress.rejected").inc()
                return SubmitResult.REJECTED
            self._ingress.popleft()
            self.metrics.counter("ingress.shed").inc()
            self.metrics.gauge("ingress.depth").dec()
        self._ingress.append((job_id, samples, trace))
        self.metrics.counter("ingress.samples").inc(samples.shape[0])
        self.metrics.gauge("ingress.depth").inc()
        return SubmitResult.ACCEPTED

    # -- processing ----------------------------------------------------
    def step(self, max_chunks: int | None = None) -> list[Emission]:
        """Process queued ingress, flush due batches, emit predictions.

        ``max_chunks`` bounds how many ingress chunks this step consumes
        (None = all of them).  A bounded step models a replica with finite
        per-tick serving capacity: under overload the ingress queue grows
        and sheds instead of the step silently absorbing any offered load
        — the saturation signal the fleet autoscaler reacts to.
        """
        now = self.clock()
        tracer = self.tracer
        completions: list[BatchCompletion] = []
        processed = 0
        while self._ingress and (max_chunks is None or processed < max_chunks):
            job_id, samples, ctx = self._ingress.popleft()
            processed += 1
            self.metrics.gauge("ingress.depth").dec()
            for tap in self._ingress_taps:
                tap.on_ingress(job_id, samples)
            session = self._session(job_id)
            if ctx is not None and tracer is not None:
                ingest_ctx = tracer.child(ctx)
                tic = time.perf_counter()
                requests = session.push(samples, now_s=now, trace=ingest_ctx)
                tracer.emit(
                    ingest_ctx, "ingest", start_s=now, end_s=now,
                    wall_s=time.perf_counter() - tic,
                    annotations={"rows": samples.shape[0],
                                 "windows": len(requests)},
                )
            else:
                requests = session.push(samples, now_s=now)
            for request in requests:
                completions.extend(self.batcher.submit(request))
        completions.extend(self.batcher.poll())
        return self._emit(completions)

    def drain(self) -> list[Emission]:
        """Graceful shutdown: consume remaining ingress, force-flush batches.

        After ``drain`` the server refuses new ``submit`` calls until
        :meth:`reopen`.
        """
        emissions = self.step()
        self._draining = True
        emissions.extend(self._emit(self.batcher.drain()))
        return emissions

    def reopen(self) -> None:
        """Accept new work again after a :meth:`drain`."""
        self._draining = False

    # -- sessions ------------------------------------------------------
    def end_session(self, job_id) -> bool:
        """Discard per-job state (job finished); True when one existed.

        Windows already queued in the batcher become orphans (they are
        predicted but never emitted); chunks still waiting in the ingress
        queue are dropped — otherwise a leftover chunk would silently
        resurrect the session on a later step, which breaks session
        migration in the fleet tier.
        """
        existed = self._sessions.pop(job_id, None) is not None
        if existed:
            self.metrics.gauge("sessions.active").dec()
        if self._ingress:
            kept = deque(item for item in self._ingress if item[0] != job_id)
            dropped = len(self._ingress) - len(kept)
            if dropped:
                self._ingress = kept
                self.metrics.counter("ingress.dropped_on_end").inc(dropped)
                self.metrics.gauge("ingress.depth").dec(dropped)
        for tap in self._ingress_taps:
            if hasattr(tap, "end_session"):
                tap.end_session(job_id)
        return existed

    def rebuild_session(
        self, job_id, rows, *, emit_after_index: int = -1, trace=None,
    ) -> list[Emission]:
        """Reconstruct ``job_id``'s session by replaying its history.

        The fleet failover path: ``rows`` is every telemetry row the job
        was ever delivered (typically a zero-copy slice out of
        :class:`~repro.store.TelemetryStore` or the load generator's
        stream), replayed through a *fresh* session.  Every due window is
        re-predicted out-of-band — one batched ``predict`` per
        ``max_batch`` windows, bypassing the live micro-batcher queue —
        and completed in ``seq`` order, which rebuilds the sliding window
        *and* the majority-vote state exactly as an unfailed twin would
        hold them.  Predictions at ``sample_index`` beyond
        ``emit_after_index`` were never emitted by the dead replica, so
        they are (re-)emitted here; earlier ones only refresh vote state.

        Emission parity holds because window cut points depend only on
        per-session sample counts and the models predict each window
        independently of its batch — both pinned by the fleet test suite.
        """
        self.end_session(job_id)
        session = self._session(job_id)
        now = self.clock()
        tic = time.perf_counter()
        # Same dtype coercion as submit(): replayed windows must be
        # numerically identical to the ones the live path would build.
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        requests = session.push(rows, now_s=now) if rows.size else []
        labels: list[int] = []
        for lo in range(0, len(requests), self.config.max_batch):
            chunk = requests[lo: lo + self.config.max_batch]
            stacked = np.stack([r.window for r in chunk])
            labels.extend(
                int(v) for v in np.asarray(self.batcher.model.predict(stacked))
            )
        out: list[Emission] = []
        for request, label in zip(requests, labels):
            prediction = session.complete(request, label)
            if prediction.sample_index > emit_after_index:
                self.metrics.counter("predictions.emitted").inc()
                self.metrics.counter("predictions.recovered").inc()
                out.append(Emission(job_id=job_id, prediction=prediction,
                                    latency_s=0.0))
        self.metrics.counter("sessions.rebuilt").inc()
        if trace is not None and self.tracer is not None:
            # The replay span lives in the *original* request's trace (the
            # context the router propagated from the failed route), so a
            # recovered request reads as one connected tree.
            self.tracer.emit(
                self.tracer.child(trace), "failover.replay",
                start_s=now, end_s=self.clock(),
                wall_s=time.perf_counter() - tic,
                annotations={"windows": len(requests), "re_emitted": len(out),
                             "links": trace.trace_id},
            )
        return out

    @property
    def n_sessions(self) -> int:
        """Currently tracked job sessions."""
        return len(self._sessions)

    @property
    def queue_depth(self) -> int:
        """Chunks waiting in the ingress queue."""
        return len(self._ingress)

    def _session(self, job_id) -> StreamSession:
        session = self._sessions.get(job_id)
        if session is None:
            session = StreamSession(
                session_id=job_id,
                window=self.config.window,
                hop=self.config.hop,
                vote_window=self.config.vote_window,
            )
            self._sessions[job_id] = session
            self.metrics.counter("sessions.opened").inc()
            self.metrics.gauge("sessions.active").inc()
        return session

    # -- emission ------------------------------------------------------
    def _emit(self, completions: list[BatchCompletion]) -> list[Emission]:
        now = self.clock()
        tracer = self.tracer
        if completions:
            taps_wall = 0.0
            if tracer is not None and self._batch_taps:
                tic = time.perf_counter()
                for tap in self._batch_taps:
                    tap.on_batch(completions)
                taps_wall = time.perf_counter() - tic
                first = next((c.request.trace for c in completions
                              if c.request.trace is not None), None)
                if first is not None:
                    tracer.emit(
                        tracer.child(first), "taps", start_s=now, end_s=now,
                        wall_s=taps_wall,
                        annotations={"completions": len(completions)},
                    )
            else:
                for tap in self._batch_taps:
                    tap.on_batch(completions)
        out: list[Emission] = []
        for completion in completions:
            request = completion.request
            session = self._sessions.get(request.session_id)
            if session is None:        # session ended while batch in flight
                self.metrics.counter("predictions.orphaned").inc()
                continue
            traced = tracer is not None and request.trace is not None
            tic = time.perf_counter() if traced else 0.0
            prediction = session.complete(request, completion.label)
            latency = now - request.created_s
            self.metrics.counter("predictions.emitted").inc()
            self.metrics.histogram("latency.window_s").observe(latency)
            out.append(Emission(job_id=request.session_id,
                                prediction=prediction, latency_s=latency))
            if traced:
                emit_wall = time.perf_counter() - tic
                ctx = request.trace
                tracer.emit(
                    tracer.child(ctx), "batch.wait",
                    start_s=request.created_s, end_s=completion.flushed_s,
                )
                tracer.emit(
                    tracer.child(ctx), "predict",
                    start_s=completion.flushed_s, end_s=completion.flushed_s,
                    wall_s=completion.predict_share_s,
                )
                tracer.emit(
                    tracer.child(ctx), "emit",
                    start_s=completion.flushed_s, end_s=now, wall_s=emit_wall,
                    annotations={"label": int(completion.label),
                                 "sample_index": int(request.sample_index)},
                )
        return out
