"""Per-job streaming sessions for the multi-tenant inference server.

:class:`repro.core.streaming.OnlineWorkloadClassifier` couples the sliding
window to the model call — fine for one stream, wasteful for thousands,
where per-call ``predict`` overhead dominates.  :class:`StreamSession`
keeps the exact window/hop/vote semantics but *splits the cycle in two*:

1. ``push(samples)`` buffers telemetry (O(1) per sample on a deque) and
   returns :class:`WindowRequest` snapshots whenever a classification is
   due — the same cadence the online classifier emits at.
2. ``complete(request, label)`` applies the label produced elsewhere
   (by the micro-batcher, which coalesced it with other sessions'
   windows) to the session's majority vote and returns the
   :class:`~repro.core.streaming.StreamPrediction`.

Run serially — push, predict each returned window, complete — a session
reproduces the online classifier's emissions bit for bit; that parity is
pinned by the test suite.

Telemetry is buffered in a contiguous float32 ring (the dtype every model
in this repo trains on): each row is written twice, at ``pos`` and
``pos + window``, so the most recent window is *always* one contiguous
slice of the doubled buffer and a snapshot is a single small memcpy — not
a ``np.stack`` over hundreds of float64 rows.  Rows are copied in
per-segment bulk writes between emission points rather than one Python
iteration per row.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.streaming import StreamPrediction
from repro.simcluster.sensors import N_GPU_SENSORS

__all__ = ["WindowRequest", "StreamSession"]


@dataclass(frozen=True)
class WindowRequest:
    """A window snapshot awaiting classification.

    ``seq`` orders requests within a session; ``created_s`` is the server
    clock at snapshot time, from which emission latency is measured.
    ``trace`` is the request's trace context (or None when untraced) —
    it rides through the batcher so the emit path can attach batch-wait,
    predict and emit spans to the originating request's tree.
    """

    session_id: object          # opaque job/stream key
    seq: int                    # per-session request counter (0-based)
    sample_index: int           # stream position when the window closed
    window: np.ndarray          # (window, n_sensors) contiguous float32 snapshot
    created_s: float = 0.0
    trace: object = None        # TraceContext | None; opaque to the session


@dataclass
class StreamSession:
    """Sliding-window state for one job stream.

    Parameters mirror :class:`~repro.core.streaming.OnlineWorkloadClassifier`:
    ``window`` samples per classification, re-classify every ``hop``
    samples once full, majority vote over the last ``vote_window`` labels.
    """

    session_id: object
    window: int = 540
    hop: int = 90
    vote_window: int = 5
    _ring: np.ndarray = field(default=None, repr=False)
    _pos: int = field(default=0, repr=False)
    _fill: int = field(default=0, repr=False)
    _votes: deque = field(default=None, repr=False)
    _since_last: int = field(default=0, repr=False)
    _n_seen: int = field(default=0, repr=False)
    _next_seq: int = field(default=0, repr=False)
    _pending: int = field(default=0, repr=False)

    def __post_init__(self):
        if self.window < 1 or self.hop < 1 or self.vote_window < 1:
            raise ValueError("window, hop and vote_window must be >= 1")
        # Doubled ring: row i lives at slots i % window and i % window +
        # window, so the last `window` rows are always ring[pos : pos+window].
        self._ring = np.empty((2 * self.window, N_GPU_SENSORS), dtype=np.float32)
        self._votes = deque(maxlen=self.vote_window)

    # ------------------------------------------------------------------
    def _write_rows(self, rows: np.ndarray) -> None:
        """Bulk-append rows to the ring (both copies), wrap-aware."""
        m = rows.shape[0]
        w = self.window
        if m >= w:                      # only the last `window` rows survive
            rows = rows[m - w:]
            self._pos = (self._pos + (m - w)) % w
            m = w
        p = self._pos
        first = min(w - p, m)
        self._ring[p:p + first] = rows[:first]
        self._ring[p + w:p + w + first] = rows[:first]
        rest = m - first
        if rest:
            self._ring[:rest] = rows[first:]
            self._ring[w:w + rest] = rows[first:]
        self._pos = (p + m) % w

    def _snapshot(self) -> np.ndarray:
        """The most recent full window, oldest row first (one memcpy)."""
        return self._ring[self._pos:self._pos + self.window].copy()

    def push(self, samples: np.ndarray, *, now_s: float = 0.0,
             trace=None) -> list[WindowRequest]:
        """Buffer new telemetry rows; returns windows due for classification.

        ``samples`` is ``(k, n_sensors)`` in time order.  A request is cut
        when the buffer is full and either ``hop`` new samples arrived
        since the last request or no prediction has ever been produced or
        requested — exactly the online classifier's emission rule.
        ``trace`` (a trace context or None) is stamped onto every request
        this push cuts; window cutting itself never depends on it.

        Rows are consumed in bulk segments between emission points: the
        next emission row is computed from counters alone, so no per-row
        Python work touches the telemetry itself.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float32))
        if samples.size == 0:
            return []
        if samples.shape[1] != N_GPU_SENSORS:
            raise ValueError(
                f"expected {N_GPU_SENSORS} sensors per sample, "
                f"got {samples.shape[1]}"
            )
        out: list[WindowRequest] = []
        w, hop = self.window, self.hop
        k = samples.shape[0]
        consumed = 0
        while consumed < k:
            never_requested = not self._votes and not self._pending
            # Rows until the next emission, from counters alone: a window
            # is cut once the buffer is full AND (`hop` rows arrived since
            # the last cut, or nothing was ever cut).
            if never_requested:
                due = (w - self._fill) if self._fill < w else 1
            else:
                due = max(w - self._fill, hop - self._since_last, 1)
            step = min(due, k - consumed)
            self._write_rows(samples[consumed:consumed + step])
            consumed += step
            self._fill = min(w, self._fill + step)
            self._n_seen += step
            self._since_last += step
            if step == due:
                out.append(
                    WindowRequest(
                        session_id=self.session_id,
                        seq=self._next_seq,
                        sample_index=self._n_seen,
                        window=self._snapshot(),
                        created_s=now_s,
                        trace=trace,
                    )
                )
                self._next_seq += 1
                self._pending += 1
                self._since_last = 0
        return out

    def complete(self, request: WindowRequest, label: int) -> StreamPrediction:
        """Fold a classified window back into the session's vote.

        Must be called once per request, in ``seq`` order (the batcher
        preserves submission order, so this holds by construction).
        """
        if request.session_id != self.session_id:
            raise ValueError(
                f"request for session {request.session_id!r} completed on "
                f"session {self.session_id!r}"
            )
        if self._pending <= 0:
            raise RuntimeError("complete() called with no pending request")
        self._pending -= 1
        label = int(label)
        self._votes.append(label)
        counts = Counter(self._votes)
        smoothed, n_agree = counts.most_common(1)[0]
        return StreamPrediction(
            sample_index=request.sample_index,
            label=label,
            smoothed_label=int(smoothed),
            confidence=n_agree / len(self._votes),
        )

    def reset(self) -> None:
        """Clear buffered samples and votes (e.g. when the job restarts)."""
        self._pos = 0
        self._fill = 0
        self._votes.clear()
        self._since_last = 0
        self._n_seen = 0
        self._pending = 0

    @property
    def ready(self) -> bool:
        """Whether a full window has been buffered."""
        return self._fill == self.window

    @property
    def pending(self) -> int:
        """Requests issued by ``push`` but not yet completed."""
        return self._pending

    @property
    def n_seen(self) -> int:
        """Total samples consumed since creation/reset."""
        return self._n_seen
