"""Micro-batching engine: one ``predict`` per tick, not per session.

Tree-ensemble and NN pipelines in this repo are vectorized — classifying
``(n, 540, 7)`` costs far less than ``n`` separate ``(1, 540, 7)`` calls
(Python dispatch, per-call feature extraction setup, cache-cold trees).
The batcher exploits that: ready windows from *different* job sessions
accumulate in a queue and are stacked into a single model call when either
the batch fills (``max_batch``) or the oldest queued window has waited
``max_delay_s`` on the serving clock — the classic throughput/latency
micro-batching trade-off, both knobs explicit.

The engine is synchronous and clock-injected, so tests and the load
generator replay identical schedules deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.serve.metrics import MetricsRegistry
from repro.serve.session import WindowRequest

__all__ = ["BatchCompletion", "MicroBatcher"]


@dataclass(frozen=True)
class BatchCompletion:
    """One classified window leaving the batcher.

    ``flushed_s``/``predict_share_s`` let the emit path reconstruct the
    batch-wait and predict stages of the request's trace: the flush
    timestamp splits queue time from emit time on the serving clock, and
    the per-window share of the batched ``predict``'s wall time is the
    request's fair slice of model compute.
    """

    request: WindowRequest
    label: int
    waited_s: float             # queue time from submit to flush
    flushed_s: float = 0.0      # serving-clock time of the batch flush
    predict_share_s: float = 0.0  # this window's share of predict wall time


class MicroBatcher:
    """Coalesce window requests across sessions into batched predictions.

    Parameters
    ----------
    model:
        Fitted estimator with ``predict`` over ``(n, window, sensors)``.
    max_batch:
        Flush as soon as this many windows are queued.
    max_delay_s:
        Flush (on ``poll``) once the oldest queued window has waited this
        long, even if the batch is not full.
    clock:
        Monotonic time source; injectable for deterministic replay.
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry`; records
        ``batch.size``/``batch.wait_s`` histograms and call counters.
    """

    def __init__(
        self,
        model,
        *,
        max_batch: int = 64,
        max_delay_s: float = 0.25,
        clock=time.monotonic,
        metrics: MetricsRegistry | None = None,
    ):
        if not hasattr(model, "predict"):
            raise TypeError("model must expose predict()")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.model = model
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.clock = clock
        self.metrics = metrics
        self._queue: list[tuple[WindowRequest, float]] = []
        self._scratch: np.ndarray | None = None  # (max_batch, window, sensors)
        self.n_predict_calls = 0
        self.n_windows = 0

    # ------------------------------------------------------------------
    def submit(self, request: WindowRequest) -> list[BatchCompletion]:
        """Queue one window; flushes immediately when the batch fills."""
        self._queue.append((request, self.clock()))
        if len(self._queue) >= self.max_batch:
            return self._flush_batch()
        return []

    def poll(self) -> list[BatchCompletion]:
        """Flush if the oldest queued window has exceeded the deadline."""
        if not self._queue:
            return []
        waited = self.clock() - self._queue[0][1]
        if waited >= self.max_delay_s:
            return self._flush_batch()
        return []

    def drain(self) -> list[BatchCompletion]:
        """Flush everything queued, regardless of deadlines (shutdown)."""
        out: list[BatchCompletion] = []
        while self._queue:
            out.extend(self._flush_batch())
        return out

    @property
    def queued(self) -> int:
        """Windows currently waiting for a batch."""
        return len(self._queue)

    def _assemble(self, windows: list[np.ndarray]) -> np.ndarray:
        """Copy windows into the reused batch scratch; returns a view.

        One ``(max_batch, window, sensors)`` buffer is allocated on the
        first flush (and whenever the window geometry changes) and reused
        for every flush after — ``np.stack`` would allocate a fresh batch
        tensor per predict call.  The returned view is only valid until
        the next flush; ``model.predict`` consumes it synchronously and
        completions carry labels (copies), never views of the scratch.
        """
        shape, dtype = windows[0].shape, windows[0].dtype
        if (self._scratch is None or self._scratch.shape[1:] != shape
                or self._scratch.dtype != dtype):
            self._scratch = np.empty((self.max_batch, *shape), dtype=dtype)
        for i, win in enumerate(windows):
            self._scratch[i] = win
        return self._scratch[: len(windows)]

    # ------------------------------------------------------------------
    def _flush_batch(self) -> list[BatchCompletion]:
        batch, self._queue = self._queue[: self.max_batch], self._queue[self.max_batch:]
        now = self.clock()
        stacked = self._assemble([req.window for req, _ in batch])
        tic = time.perf_counter()
        labels = np.asarray(self.model.predict(stacked)).astype(np.int64)
        predict_wall_s = time.perf_counter() - tic
        if labels.shape != (len(batch),):
            raise ValueError(
                f"model.predict returned shape {labels.shape} for a "
                f"batch of {len(batch)}"
            )
        self.n_predict_calls += 1
        self.n_windows += len(batch)
        if self.metrics is not None:
            self.metrics.counter("batch.predict_calls").inc()
            self.metrics.counter("batch.windows").inc(len(batch))
            self.metrics.histogram("batch.size").observe(len(batch))
            # Real (wall-clock) model cost per window — the one number in
            # this registry that varies run to run; rollout latency
            # guardrails compare it between champion and challenger.
            self.metrics.histogram("batch.predict_wall_s").observe(
                predict_wall_s / len(batch))
        out = []
        share = predict_wall_s / len(batch)
        for (req, submitted_s), label in zip(batch, labels):
            waited = now - submitted_s
            if self.metrics is not None:
                self.metrics.histogram("batch.wait_s").observe(waited)
            out.append(BatchCompletion(request=req, label=int(label),
                                       waited_s=waited, flushed_s=now,
                                       predict_share_s=share))
        return out
