"""repro — reproduction of "The MIT Supercloud Workload Classification
Challenge" (IPPS 2022).

Quickstart::

    from repro import WorkloadClassificationChallenge, SimulationConfig
    from repro.models import make_rf_cov

    challenge = WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(seed=2022, trials_scale=0.05))
    result = challenge.evaluate(make_rf_cov(n_estimators=100), "60-middle-1")
    print(f"RF+Cov test accuracy: {result['accuracy']:.2%}")

Subpackages
-----------
``repro.simcluster``
    TX-Gaia-like telemetry simulator (the labelled-dataset substitute).
``repro.data``
    Labelled dataset → the seven 60-second challenge datasets.
``repro.ml``
    From-scratch classical ML: SVC/SMO, random forest, Newton boosting,
    PCA, covariance features, grid-search CV, metrics.
``repro.nn``
    NumPy autograd, LSTM/Conv1d layers, optimizers, trainer with
    crash-safe checkpoint/resume.
``repro.models``
    The paper's baseline configurations (Sections IV & V).
``repro.core``
    Challenge protocol, evaluation, leaderboard, baseline harnesses.
``repro.serve``
    Fleet-scale streaming inference: model registry, micro-batching
    server, metrics, deterministic load generator.
``repro.fleet``
    Sharded serving control plane: consistent-hash routing, worker
    failover by history replay, metrics-driven autoscaling.
``repro.resilience``
    Crash-safety toolkit: fault injection, retry with backoff, and the
    ``repro resilience-bench`` kill/resume harness.
``repro.store``
    Crash-safe sharded telemetry store: WAL + mmap segment files,
    zero-copy reads, deterministic replay, compaction.
``repro.parallel``
    Process-pool map and shared-memory arrays.
"""

from repro.core.challenge import WorkloadClassificationChallenge
from repro.simcluster.cluster import SimulationConfig

__version__ = "1.0.0"

__all__ = ["WorkloadClassificationChallenge", "SimulationConfig", "__version__"]
