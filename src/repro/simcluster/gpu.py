"""V100 GPU device model: power draw and first-order thermal dynamics.

The simulator first synthesizes *activity* traces (compute utilization,
memory-bandwidth utilization, memory footprint) from the class signature,
then this module maps activity to the physical sensors of Table III:
``power_draw_W`` responds to utilization with class-specific efficiency, and
the two temperatures follow power through first-order low-pass dynamics —
so temperature carries a smoothed copy of the utilization rhythm, as it does
in the real dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from repro.simcluster.sensors import GPU_SENSORS, gpu_sensor_index
from repro.simcluster.signatures import SignatureParams

__all__ = ["GpuSpec", "V100_SPEC", "GpuModel"]


@dataclass(frozen=True)
class GpuSpec:
    """Static hardware parameters of one GPU SKU."""

    name: str
    memory_mib: float        # on-board memory capacity
    tdp_w: float             # board power limit
    idle_power_w: float      # power at zero utilization
    ambient_c: float         # inlet air temperature
    core_c_per_w: float      # steady-state core heating per watt
    mem_c_per_w: float       # steady-state HBM heating per watt
    core_tau_s: float        # core thermal time constant
    mem_tau_s: float         # HBM thermal time constant
    throttle_c: float        # clock-throttle (slowdown) temperature


#: NVIDIA Volta V100-SXM2 32GB as installed in TX-Gaia GPU nodes.
V100_SPEC = GpuSpec(
    name="Tesla V100-SXM2-32GB",
    memory_mib=32_510.0,
    tdp_w=300.0,
    idle_power_w=42.0,
    ambient_c=30.0,
    core_c_per_w=0.165,
    mem_c_per_w=0.195,
    core_tau_s=18.0,
    mem_tau_s=30.0,
    throttle_c=78.0,
)


def _first_order(target: np.ndarray, dt: float, tau: float, y0: float) -> np.ndarray:
    """Run ``y' = (target - y) / tau`` over a uniformly sampled target.

    Implemented as a single-pole IIR filter via :func:`scipy.signal.lfilter`
    (vectorized; no Python-level time loop).
    """
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    alpha = 1.0 - np.exp(-dt / tau)
    b = [alpha]
    a = [1.0, -(1.0 - alpha)]
    zi = np.array([(1.0 - alpha) * y0])
    y, _ = lfilter(b, a, target, zi=zi)
    return y


class GpuModel:
    """Map activity traces to physical GPU sensor channels."""

    def __init__(self, spec: GpuSpec = V100_SPEC):
        self.spec = spec

    def power(
        self,
        util_pct: np.ndarray,
        mem_util_pct: np.ndarray,
        sig: SignatureParams,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Instantaneous board power from compute and memory activity.

        Power = class base + class-specific watts/percent-util on compute,
        plus a smaller universal memory-bandwidth term, plus measurement
        noise; clipped to ``[idle, TDP]``.
        """
        p = (
            sig.power_base_w
            + sig.power_per_util * util_pct
            + 0.35 * mem_util_pct
            + rng.normal(0.0, sig.noise_power, size=util_pct.shape)
        )
        return np.clip(p, self.spec.idle_power_w, self.spec.tdp_w)

    def temperatures(
        self,
        power_w: np.ndarray,
        mem_util_pct: np.ndarray,
        dt: float,
        *,
        ambient_c: float | None = None,
        cooling: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Core and HBM temperature series driven by power.

        Both follow first-order dynamics toward ``ambient + k * power``; the
        memory temperature additionally tracks memory-bandwidth activity
        (HBM self-heating).

        ``ambient_c`` and ``cooling`` model per-node environment variation
        (rack position, fan curves).  This injects *class-irrelevant*
        variance into the temperature channels — on the real cluster,
        temperature carries more node identity than workload identity,
        which is part of why distance-based models underperform tree models
        on covariance features (Table V).
        """
        spec = self.spec
        if ambient_c is None:
            ambient_c = spec.ambient_c
        core_target = ambient_c + cooling * spec.core_c_per_w * power_w
        mem_target = (
            ambient_c
            + cooling * spec.mem_c_per_w * power_w
            + 0.06 * mem_util_pct
        )
        t0 = ambient_c + cooling * spec.core_c_per_w * spec.idle_power_w
        core = _first_order(core_target, dt, spec.core_tau_s, t0)
        mem = _first_order(mem_target, dt, spec.mem_tau_s, t0)
        return core, mem

    def assemble(
        self,
        util_pct: np.ndarray,
        mem_util_pct: np.ndarray,
        mem_used_mib: np.ndarray,
        sig: SignatureParams,
        dt: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Build the full ``(n_samples, 7)`` sensor matrix in Table III order."""
        n = util_pct.shape[0]
        power = self.power(util_pct, mem_util_pct, sig, rng)
        # Per-GPU thermal environment: rack ambient and cooling efficiency
        # vary by node, independent of the workload class.
        ambient = float(self.spec.ambient_c + rng.normal(0.0, 2.0))
        cooling = float(rng.lognormal(0.0, 0.07))
        temp_core, temp_mem = self.temperatures(
            power, mem_util_pct, dt, ambient_c=ambient, cooling=cooling
        )
        # Thermal throttling: above the slowdown temperature the driver caps
        # clocks, cutting power and effective utilization.  This is a sharp
        # regime switch — classes whose steady state approaches the limit
        # acquire a distinct clipped signature.
        throttle = temp_core > self.spec.throttle_c
        if throttle.any():
            power = power.copy()
            util_pct = np.asarray(util_pct, dtype=np.float64).copy()
            power[throttle] *= 0.82
            util_pct[throttle] = np.minimum(util_pct[throttle] * 0.88, 100.0)
        mem_used = np.clip(mem_used_mib, 0.0, self.spec.memory_mib)
        out = np.empty((n, len(GPU_SENSORS)), dtype=np.float64)
        out[:, gpu_sensor_index("utilization_gpu_pct")] = np.clip(util_pct, 0.0, 100.0)
        out[:, gpu_sensor_index("utilization_memory_pct")] = np.clip(
            mem_util_pct, 0.0, 100.0
        )
        out[:, gpu_sensor_index("memory_free_MiB")] = self.spec.memory_mib - mem_used
        out[:, gpu_sensor_index("memory_used_MiB")] = mem_used
        out[:, gpu_sensor_index("temperature_gpu")] = temp_core
        out[:, gpu_sensor_index("temperature_memory")] = temp_mem
        out[:, gpu_sensor_index("power_draw_W")] = power
        # Final physical-range clip per sensor spec.
        for j, spec_j in enumerate(GPU_SENSORS):
            out[:, j] = spec_j.clip(out[:, j])
        return out
