"""Whole-cluster simulation driver.

:class:`ClusterSimulator` generates the labelled-dataset substitute: for
each of the 26 architecture classes it samples jobs (count proportional to
the paper's Tables VII–IX job counts), gives each job a duration, node/GPU
allocation and identity, and synthesizes GPU (and optionally CPU) telemetry.

Determinism: every job draws from its own named random stream derived from
the config seed (see :class:`repro.utils.SeedSequenceFactory`), so the i-th
job of class c is bit-identical no matter the generation order — the
property that lets the parallel generation path produce the same dataset as
the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel import effective_n_jobs, parallel_map
from repro.simcluster.architectures import ARCHITECTURES, ArchitectureSpec
from repro.simcluster.cpu_model import CpuModel, CpuSeries, DEFAULT_CPU_DT_S
from repro.simcluster.filesystem import DEFAULT_FS_DT_S, FsCounters, FsModel
from repro.simcluster.scheduler import JobRecord, SchedulerLog
from repro.simcluster.workload import (
    DEFAULT_DT_S,
    GpuSeries,
    JobTelemetry,
    WorkloadGenerator,
)
from repro.utils.rng import SeedSequenceFactory

__all__ = ["SimulationConfig", "SimulatedJob", "ClusterSimulator"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulated labelled-dataset release.

    Attributes
    ----------
    seed:
        Root seed; every number in the release derives from it.
    trials_scale:
        Multiplier on the paper's per-class job counts.  ``1.0`` reproduces
        the 3,430-job release; the default ``0.02`` yields a ~70-job release
        that the full test suite can regenerate in seconds.
    min_jobs_per_class:
        Floor on per-class job counts after scaling (keeps the rare GNN
        classes represented at small scales).
    duration_lognorm_mean_s / duration_lognorm_sigma:
        Job durations are log-normal (heavy right tail, like real queue
        traces), clipped to ``duration_clip_s``.
    gpus_per_job_choices / gpus_per_job_probs:
        Distribution over total GPUs per job.  Multi-GPU jobs contribute one
        labelled series per GPU, so the series count exceeds the job count
        (paper: >17k series from 3,430 jobs).
    """

    seed: int = 2022
    trials_scale: float = 0.02
    min_jobs_per_class: int = 3
    duration_lognorm_mean_s: float = 300.0
    duration_lognorm_sigma: float = 0.35
    duration_clip_s: tuple[float, float] = (150.0, 1200.0)
    gpus_per_job_choices: tuple[int, ...] = (1, 2, 4)
    gpus_per_job_probs: tuple[float, ...] = (0.70, 0.20, 0.10)
    gpus_per_node: int = 2
    dt_s: float = DEFAULT_DT_S
    cpu_dt_s: float = DEFAULT_CPU_DT_S
    fs_dt_s: float = DEFAULT_FS_DT_S
    startup_mean_s: float = 40.0
    generate_cpu: bool = True
    generate_fs: bool = False

    def __post_init__(self):
        if self.trials_scale <= 0:
            raise ValueError(f"trials_scale must be positive, got {self.trials_scale}")
        if self.min_jobs_per_class < 1:
            raise ValueError("min_jobs_per_class must be >= 1")
        if len(self.gpus_per_job_choices) != len(self.gpus_per_job_probs):
            raise ValueError("gpus_per_job_choices and probs must align")
        if abs(sum(self.gpus_per_job_probs) - 1.0) > 1e-9:
            raise ValueError("gpus_per_job_probs must sum to 1")
        lo, hi = self.duration_clip_s
        if not 0 < lo < hi:
            raise ValueError(f"invalid duration_clip_s {self.duration_clip_s}")

    def jobs_for_class(self, spec: ArchitectureSpec) -> int:
        """Scaled job count for one class."""
        return max(self.min_jobs_per_class,
                   int(round(spec.paper_job_count * self.trials_scale)))

    def total_jobs(self) -> int:
        """Total jobs across all classes at this scale."""
        return sum(self.jobs_for_class(s) for s in ARCHITECTURES)


@dataclass
class SimulatedJob:
    """One labelled job: scheduler record plus telemetry."""

    record: JobRecord
    gpu_series: list[GpuSeries]
    cpu_series: CpuSeries | None = None
    fs_counters: FsCounters | None = None

    @property
    def label(self) -> int:
        """The job's class label."""
        return self.record.class_label

    @property
    def architecture(self) -> str:
        """The job's architecture class name."""
        return self.record.architecture


class ClusterSimulator:
    """Generates a full labelled-dataset release."""

    def __init__(self, config: SimulationConfig | None = None):
        self.config = config if config is not None else SimulationConfig()
        self._workload = WorkloadGenerator(
            dt_s=self.config.dt_s, startup_mean_s=self.config.startup_mean_s
        )
        self._cpu = CpuModel(dt_s=self.config.cpu_dt_s)
        self._fs = FsModel(dt_s=self.config.fs_dt_s)
        self._seeds = SeedSequenceFactory(self.config.seed)

    # ------------------------------------------------------------------
    def job_plan(self) -> list[tuple[int, ArchitectureSpec]]:
        """Deterministic (job_id, class) plan for the whole release."""
        plan: list[tuple[int, ArchitectureSpec]] = []
        job_id = 0
        for spec in ARCHITECTURES:
            for _ in range(self.config.jobs_for_class(spec)):
                plan.append((job_id, spec))
                job_id += 1
        return plan

    def generate_one(self, job_id: int, spec: ArchitectureSpec) -> SimulatedJob:
        """Generate a single job's record and telemetry (order-independent)."""
        rng = self._seeds.stream(f"job-{job_id:06d}")
        cfg = self.config

        duration = float(np.clip(
            rng.lognormal(np.log(cfg.duration_lognorm_mean_s), cfg.duration_lognorm_sigma),
            *cfg.duration_clip_s,
        ))
        n_gpus = int(rng.choice(cfg.gpus_per_job_choices, p=cfg.gpus_per_job_probs))
        gpn = min(cfg.gpus_per_node, n_gpus)
        n_nodes = -(-n_gpus // gpn)  # ceil division

        record = SchedulerLog.make_record(
            job_id=job_id,
            architecture=spec.name,
            class_label=ARCHITECTURES.index(spec),
            duration_s=duration,
            rng=rng,
            n_nodes=n_nodes,
            gpus_per_node=gpn,
        )
        telemetry: JobTelemetry = self._workload.generate_job(
            spec, duration, rng, n_gpus=n_gpus
        )
        cpu = None
        if cfg.generate_cpu:
            cpu = self._cpu.generate(telemetry.signature, telemetry.schedule, rng)
        fs = None
        if cfg.generate_fs:
            fs = self._fs.generate(telemetry.signature, telemetry.schedule, rng)
        return SimulatedJob(record=record, gpu_series=telemetry.gpu_series,
                            cpu_series=cpu, fs_counters=fs)

    def generate(
        self, n_jobs: int | None = 1, *, store=None
    ) -> tuple[list[SimulatedJob], SchedulerLog]:
        """Generate the whole release.

        With ``n_jobs > 1`` the job plan is fanned out over worker
        processes via :func:`repro.parallel.parallel_map` in contiguous
        *chunks* (one pool message and one result pickle per chunk, not
        per job — per-job dispatch made the parallel path slower than
        serial on small jobs).  Every job draws from its own named seed
        stream (see :meth:`generate_one`), so the release is
        bit-identical to the serial path at any ``n_jobs`` and any
        chunking — pinned by the test suite.

        ``store`` (an optional :class:`~repro.store.TelemetryStore`)
        archives every GPU series as it is generated: the jobs are
        ingested and sealed before this returns, so a downstream replay
        reads back bit-identical float32 telemetry.
        """
        plan = self.job_plan()
        jobs_eff = effective_n_jobs(n_jobs)
        if jobs_eff > 1 and len(plan) > 1:
            # ~2 chunks per worker: few enough messages that IPC is
            # amortized, enough slack that a worker landing the heavy
            # classes doesn't serialize the tail.
            n_chunks = min(len(plan), jobs_eff * 2)
            bounds = np.linspace(0, len(plan), n_chunks + 1, dtype=int)
            chunks = [plan[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]
            chunk_jobs = parallel_map(_GenerateJobWorker(self.config), chunks,
                                      n_jobs=n_jobs, chunksize=1)
            jobs = [job for chunk in chunk_jobs for job in chunk]
        else:
            jobs = [self.generate_one(job_id, spec) for job_id, spec in plan]
        log = SchedulerLog()
        for job in jobs:
            log.append(job.record)
        if store is not None:
            store.ingest(jobs)
        return jobs, log


class _GenerateJobWorker:
    """Picklable per-chunk generator for process pools.

    Each worker process rebuilds the simulator lazily from the config
    (generator state never crosses the process boundary; determinism
    comes from the per-job named seed streams) and generates a whole
    contiguous chunk of the plan per call.
    """

    def __init__(self, config: SimulationConfig):
        self.config = config
        self._sim: ClusterSimulator | None = None

    def __getstate__(self):
        return {"config": self.config}

    def __setstate__(self, state):
        self.config = state["config"]
        self._sim = None

    def __call__(
        self, chunk: list[tuple[int, "ArchitectureSpec"]]
    ) -> list[SimulatedJob]:
        if self._sim is None:
            self._sim = ClusterSimulator(self.config)
        return [self._sim.generate_one(job_id, spec) for job_id, spec in chunk]
