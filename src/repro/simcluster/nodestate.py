"""Compute-node state snapshots.

The MIT Supercloud Dataset includes periodic "snapshots of compute node
state" (Section II-A).  This module reconstructs that view from a set of
simulated jobs: at a fixed cadence, every node reports how many jobs and
GPUs it is running, its aggregate load, and allocated memory — the
cluster-level time series an operator dashboard would plot.

Placement uses a simple deterministic first-fit over the job records'
start/end times (the scheduler log does not store node ids; any consistent
placement produces a valid cluster view).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simcluster.node import NodeSpec, TX_GAIA_GPU_NODE
from repro.simcluster.scheduler import JobRecord

__all__ = ["NodeSnapshot", "ClusterStateSeries", "snapshot_cluster"]


@dataclass(frozen=True)
class NodeSnapshot:
    """One node at one snapshot instant."""

    time_s: float
    node_id: int
    n_jobs: int
    gpus_in_use: int
    cpu_load: float           # runnable tasks / core, rough
    mem_allocated_gib: float


@dataclass
class ClusterStateSeries:
    """All snapshots, plus aggregate accessors."""

    snapshots: list[NodeSnapshot]
    n_nodes: int
    dt_s: float

    def utilization_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, fraction of GPUs in use across the cluster)."""
        times = sorted({s.time_s for s in self.snapshots})
        total_gpus = self.n_nodes * TX_GAIA_GPU_NODE.gpus_per_node
        by_time: dict[float, int] = {t: 0 for t in times}
        for snap in self.snapshots:
            by_time[snap.time_s] += snap.gpus_in_use
        t_arr = np.array(times)
        util = np.array([by_time[t] / total_gpus for t in times])
        return t_arr, util

    def peak_concurrency(self) -> int:
        """Maximum GPUs simultaneously in use."""
        _, util = self.utilization_timeline()
        total_gpus = self.n_nodes * TX_GAIA_GPU_NODE.gpus_per_node
        return int(round(util.max() * total_gpus)) if util.size else 0


def _first_fit_placement(
    records: list[JobRecord], n_nodes: int, node: NodeSpec
) -> dict[int, list[int]]:
    """Assign each job's nodes greedily; returns job_id -> node ids."""
    # Per-node ledger of (start, end, gpus) intervals.
    ledger: list[list[tuple[float, float, int]]] = [[] for _ in range(n_nodes)]

    def gpus_free(nid: int, start: float, end: float) -> int:
        used = sum(g for s, e, g in ledger[nid] if s < end and e > start)
        return node.gpus_per_node - used

    placement: dict[int, list[int]] = {}
    for rec in sorted(records, key=lambda r: r.start_time_s):
        chosen: list[int] = []
        for nid in range(n_nodes):
            if len(chosen) == rec.n_nodes:
                break
            if gpus_free(nid, rec.start_time_s, rec.end_time_s) >= rec.gpus_per_node:
                chosen.append(nid)
        if len(chosen) < rec.n_nodes:
            # Cluster oversubscribed at this instant: place on the least
            # loaded nodes anyway (real clusters would have queued; the
            # snapshot view tolerates it).
            remaining = [n for n in range(n_nodes) if n not in chosen]
            remaining.sort(key=lambda nid: len(ledger[nid]))
            chosen.extend(remaining[: rec.n_nodes - len(chosen)])
        for nid in chosen:
            ledger[nid].append((rec.start_time_s, rec.end_time_s,
                                rec.gpus_per_node))
        placement[rec.job_id] = chosen
    return placement


def snapshot_cluster(
    records: list[JobRecord],
    *,
    n_nodes: int = 224,
    dt_s: float = 300.0,
    node: NodeSpec = TX_GAIA_GPU_NODE,
) -> ClusterStateSeries:
    """Build node-state snapshots over the span of the given job records.

    ``n_nodes=224`` matches TX-Gaia's GPU partition; ``dt_s=300`` is a
    typical node-monitor cadence.
    """
    if not records:
        raise ValueError("no job records to snapshot")
    if n_nodes < 1 or dt_s <= 0:
        raise ValueError("n_nodes must be >= 1 and dt_s positive")
    placement = _first_fit_placement(records, n_nodes, node)
    t0 = min(r.start_time_s for r in records)
    t1 = max(r.end_time_s for r in records)
    times = np.arange(t0, t1 + dt_s, dt_s)

    snapshots: list[NodeSnapshot] = []
    for t in times:
        active = [r for r in records if r.start_time_s <= t < r.end_time_s]
        per_node: dict[int, list[JobRecord]] = {}
        for rec in active:
            for nid in placement[rec.job_id]:
                per_node.setdefault(nid, []).append(rec)
        for nid, recs in per_node.items():
            gpus = sum(r.gpus_per_node for r in recs)
            snapshots.append(NodeSnapshot(
                time_s=float(t),
                node_id=nid,
                n_jobs=len(recs),
                gpus_in_use=min(gpus, node.gpus_per_node),
                cpu_load=min(2.0, 0.45 * gpus),
                mem_allocated_gib=min(node.ram_gib, 48.0 * gpus),
            ))
    return ClusterStateSeries(snapshots=snapshots, n_nodes=n_nodes, dt_s=dt_s)
