"""CPU-side telemetry synthesis (paper Table II).

The real dataset samples CPU metrics at a *different* (slower) rate than the
GPU series — one of the challenge's stated difficulties ("the CPU and GPU
time series are sampled at different rates, they will have different lengths
for the same trial").  We reproduce that: the default CPU interval is 10 s
vs the GPU's ~0.11 s.

The CPU profile tracks the job lifecycle: heavy I/O and CPU activity during
startup (dataset staging), steady input-pipeline load during training that
scales with the class's I/O appetite, and monotone cumulative counters
(CPUTime, ReadMB, WriteMB, Pages) as the schedulers report them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simcluster.node import NodeSpec, TX_GAIA_GPU_NODE
from repro.simcluster.phases import PhaseKind, PhaseSchedule
from repro.simcluster.sensors import CPU_METRICS
from repro.simcluster.signatures import SignatureParams

__all__ = ["CpuSeries", "CpuModel", "DEFAULT_CPU_DT_S"]

#: Slurm profiling default sampling interval on the real system.
DEFAULT_CPU_DT_S = 10.0


@dataclass
class CpuSeries:
    """CPU metrics of one job: ``(n_samples, 8)`` in Table II column order."""

    data: np.ndarray
    dt_s: float

    @property
    def n_samples(self) -> int:
        """Number of time samples in the series."""
        return self.data.shape[0]


class CpuModel:
    """Synthesizes the eight Table II CPU metrics for a job."""

    def __init__(self, node: NodeSpec = TX_GAIA_GPU_NODE, dt_s: float = DEFAULT_CPU_DT_S):
        if dt_s <= 0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        self.node = node
        self.dt_s = dt_s

    def generate(
        self,
        sig: SignatureParams,
        schedule: PhaseSchedule,
        rng: np.random.Generator,
    ) -> CpuSeries:
        """Generate the CPU series aligned to a job's phase schedule."""
        n = max(2, int(round(schedule.total_s / self.dt_s)))
        t = np.arange(n) * self.dt_s

        startup = schedule.mask(t, PhaseKind.STARTUP)
        ckpt = schedule.mask(t, PhaseKind.CHECKPOINT)
        cooldown = schedule.mask(t, PhaseKind.COOLDOWN)

        # --- Utilization: staging burst at startup, input pipeline steady state.
        util = np.full(n, sig.cpu_util_mean, dtype=np.float64)
        util[startup] = 70.0 + rng.normal(0.0, 6.0, size=int(startup.sum()))
        util[ckpt] *= 0.5
        util[cooldown] *= 0.4
        util += rng.normal(0.0, 3.0, size=n)
        util = np.clip(util, 0.0, 100.0)

        # --- Clock frequency: turbo under load, base otherwise.
        freq = np.where(
            util > 50.0,
            self.node.turbo_freq_mhz - rng.uniform(0, 200, size=n),
            self.node.base_freq_mhz + rng.uniform(-100, 300, size=n),
        )

        # --- Cumulative CPU time: integral of utilization over allotted cores.
        cores = max(1, self.node.total_cores // max(1, self.node.gpus_per_node))
        cpu_time = np.cumsum(util / 100.0 * cores * self.dt_s)

        # --- Memory: RSS ramps during startup then plateaus; VMSize ~ 2.5x RSS.
        ramp = np.clip(t / max(schedule.first(PhaseKind.STARTUP).end_s, 1.0), 0.0, 1.0)
        rss = 800.0 + ramp * (sig.rss_mib - 800.0) + rng.normal(0, 30.0, size=n)
        rss = np.clip(rss, 0.0, self.node.ram_gib * 1024.0)
        vmsize = rss * 2.5 + 4096.0
        pages = np.cumsum(np.clip(np.diff(rss, prepend=rss[0]), 0, None)) * 256.0 + rss * 256.0

        # --- Cumulative I/O: staging reads at startup, steady pipeline reads,
        #     checkpoint writes.
        read_rate = np.full(n, sig.io_read_mbps)
        read_rate[startup] *= 4.0
        read_rate[cooldown] *= 0.1
        read_mb = np.cumsum(read_rate * self.dt_s / 60.0 * rng.uniform(0.9, 1.1, size=n))
        write_rate = np.full(n, sig.io_write_mbps * 0.2)
        write_rate[ckpt] = sig.io_write_mbps * 30.0
        write_mb = np.cumsum(write_rate * self.dt_s / 60.0 * rng.uniform(0.9, 1.1, size=n))

        out = np.column_stack([freq, cpu_time, util, rss, vmsize, pages, read_mb, write_mb])
        for j, spec_j in enumerate(CPU_METRICS):
            hi = spec_j.hi if np.isfinite(spec_j.hi) else np.inf
            out[:, j] = np.clip(out[:, j], spec_j.lo, hi)
        return CpuSeries(data=out, dt_s=self.dt_s)
