"""Slurm-like scheduler-log records.

The MIT Supercloud dataset ships the cluster scheduler log alongside the
telemetry.  For the classification challenge the log is metadata (job →
node/GPU mapping, timing, exit status); we generate records with the same
fields so the labelled-dataset builder can join series to jobs exactly as
one would with the real release.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simcluster.anonymize import anonymize_id

__all__ = ["JobRecord", "SchedulerLog"]


@dataclass(frozen=True)
class JobRecord:
    """One scheduler-log row (anonymized)."""

    job_id: int
    user_hash: str
    architecture: str
    class_label: int
    n_nodes: int
    gpus_per_node: int
    submit_time_s: float
    start_time_s: float
    end_time_s: float
    exit_code: int = 0

    @property
    def n_gpus(self) -> int:
        """Total GPUs allocated to the job."""
        return self.n_nodes * self.gpus_per_node

    @property
    def duration_s(self) -> float:
        """Duration in seconds."""
        return self.end_time_s - self.start_time_s

    @property
    def queue_wait_s(self) -> float:
        """Seconds spent queued before starting."""
        return self.start_time_s - self.submit_time_s

    def __post_init__(self):
        if self.end_time_s <= self.start_time_s:
            raise ValueError(f"job {self.job_id}: end before start")
        if self.start_time_s < self.submit_time_s:
            raise ValueError(f"job {self.job_id}: started before submission")
        if self.n_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError(f"job {self.job_id}: needs >= 1 node and >= 1 GPU")


@dataclass
class SchedulerLog:
    """Append-only collection of job records with simple query helpers."""

    records: list[JobRecord] = field(default_factory=list)

    def append(self, record: JobRecord) -> None:
        """Add one entry."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def by_class(self, class_label: int) -> list[JobRecord]:
        """Records whose class label matches."""
        return [r for r in self.records if r.class_label == class_label]

    def total_gpu_series(self) -> int:
        """Number of distinct GPU time series across all jobs (paper: >17k
        series from 3,430 jobs because multi-GPU jobs repeat the label)."""
        return sum(r.n_gpus for r in self.records)

    @staticmethod
    def make_record(
        job_id: int,
        architecture: str,
        class_label: int,
        duration_s: float,
        rng: np.random.Generator,
        *,
        user: str | None = None,
        n_nodes: int = 1,
        gpus_per_node: int = 1,
        clock_s: float = 0.0,
    ) -> JobRecord:
        """Sample submit/start times around a cluster clock and build a record."""
        submit = clock_s + float(rng.uniform(0.0, 3600.0))
        wait = float(rng.exponential(120.0))
        start = submit + wait
        user = user if user is not None else f"user{int(rng.integers(0, 500)):04d}"
        return JobRecord(
            job_id=job_id,
            user_hash=anonymize_id(user),
            architecture=architecture,
            class_label=class_label,
            n_nodes=n_nodes,
            gpus_per_node=gpus_per_node,
            submit_time_s=submit,
            start_time_s=start,
            end_time_s=start + duration_s,
        )
