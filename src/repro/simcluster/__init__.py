"""TX-Gaia-like datacenter telemetry simulator.

This package is the substitute for the MIT Supercloud *labelled dataset*
(2 GB of real monitoring logs, download-gated).  It synthesizes per-job GPU
and CPU telemetry for the 26 deep-learning architecture classes listed in
Tables I and VII–IX of the paper, with the mechanisms that give the real
classification problem its structure:

* class-conditional steady-state signatures (utilization level, step and
  epoch periodicity, memory footprint, power efficiency),
* a *generic* startup / data-loading phase shared across classes — the
  reason the ``60-start-1`` dataset is the hardest in Tables V and VI,
* epoch-boundary dips, checkpoint stalls and sensor noise,
* first-order V100 power/thermal dynamics,
* multi-node / multi-GPU job expansion (one labelled series per GPU, so the
  number of GPU series exceeds the number of jobs, as in the paper), and
* Slurm-like scheduler-log records with anonymized identities.

The top-level entry point is :class:`ClusterSimulator`.
"""

from repro.simcluster.architectures import (
    ARCHITECTURES,
    ArchitectureSpec,
    Family,
    architecture_names,
    class_index,
    get_architecture,
    job_count_table,
)
from repro.simcluster.sensors import (
    CPU_METRICS,
    GPU_SENSORS,
    N_CPU_METRICS,
    N_GPU_SENSORS,
    SensorSpec,
    gpu_sensor_index,
)
from repro.simcluster.signatures import SignatureParams, signature_for
from repro.simcluster.phases import Phase, PhaseKind, PhaseSchedule, build_phase_schedule
from repro.simcluster.gpu import GpuModel, V100_SPEC, GpuSpec
from repro.simcluster.node import NodeSpec, TX_GAIA_GPU_NODE
from repro.simcluster.workload import WorkloadGenerator, GpuSeries, JobTelemetry
from repro.simcluster.cpu_model import CpuModel
from repro.simcluster.filesystem import FS_COUNTER_NAMES, FsCounters, FsModel
from repro.simcluster.nodestate import ClusterStateSeries, NodeSnapshot, snapshot_cluster
from repro.simcluster.preemption import PreemptionEvent, PreemptionProcess
from repro.simcluster.scheduler import JobRecord, SchedulerLog
from repro.simcluster.anonymize import anonymize_id
from repro.simcluster.cluster import ClusterSimulator, SimulationConfig, SimulatedJob

__all__ = [
    "ARCHITECTURES",
    "ArchitectureSpec",
    "Family",
    "architecture_names",
    "class_index",
    "get_architecture",
    "job_count_table",
    "GPU_SENSORS",
    "CPU_METRICS",
    "N_GPU_SENSORS",
    "N_CPU_METRICS",
    "SensorSpec",
    "gpu_sensor_index",
    "SignatureParams",
    "signature_for",
    "Phase",
    "PhaseKind",
    "PhaseSchedule",
    "build_phase_schedule",
    "GpuModel",
    "GpuSpec",
    "V100_SPEC",
    "NodeSpec",
    "TX_GAIA_GPU_NODE",
    "WorkloadGenerator",
    "GpuSeries",
    "JobTelemetry",
    "CpuModel",
    "FS_COUNTER_NAMES",
    "FsCounters",
    "FsModel",
    "PreemptionEvent",
    "PreemptionProcess",
    "JobRecord",
    "SchedulerLog",
    "ClusterStateSeries",
    "NodeSnapshot",
    "snapshot_cluster",
    "anonymize_id",
    "ClusterSimulator",
    "SimulationConfig",
    "SimulatedJob",
]
