"""Per-architecture telemetry signatures.

Each of the 26 labelled classes gets a :class:`SignatureParams` bundle that
determines its steady-state telemetry: GPU utilization level and step
oscillation, memory footprint, epoch periodicity, power efficiency, and the
CPU-side profile.  Families share a base profile (VGG jobs look like VGG
jobs) and variants within a family are separated by their relative compute
footprint — mirroring how, on the real cluster, ResNet152 draws more power
and sustains higher utilization than ResNet50 while keeping the same overall
rhythm.

Design notes that map directly to paper results:

* Classes differ in the *joint* second-order structure of the sensors
  (amplitudes, couplings, power efficiency), which is what makes the paper's
  covariance-trick features (R^28) nearly sufficient for classification.
* Startup behaviour is mostly class-generic (see :mod:`repro.simcluster.phases`),
  with only a weak class signal (framework allocation step count), which is
  why start-of-job windows classify worst.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simcluster.architectures import ArchitectureSpec, Family

__all__ = ["SignatureParams", "signature_for"]


@dataclass(frozen=True)
class SignatureParams:
    """Steady-state telemetry parameters for one architecture class.

    All times are seconds; utilizations are percent; memory is MiB; power is
    watts.  These are *population* parameters — the workload generator
    applies per-job jitter on top.
    """

    # GPU compute activity
    util_mean: float          # steady GPU utilization level
    util_amp: float           # peak-to-trough amplitude of the step oscillation
    step_period_s: float      # period of the training-step oscillation
    duty: float               # fraction of each step period spent at high util
    # GPU memory
    mem_used_mib: float       # resident model+batch memory
    mem_util_mean: float      # memory-bandwidth utilization level
    mem_util_coupling: float  # fraction of mem-util variation driven by GPU util
    # Epoch structure
    epoch_period_s: float     # time between epoch boundaries
    epoch_dip_depth: float    # multiplicative utilization drop in the boundary dip
    epoch_dip_frac: float     # fraction of the epoch spent in the dip
    checkpoint_every: int     # checkpoint stall every N epochs (0 = never)
    checkpoint_dur_s: float   # checkpoint stall duration
    # Power / thermal
    power_base_w: float       # idle + memory power
    power_per_util: float     # watts per percent utilization (class "efficiency")
    # Noise levels (std-dev of white noise added per channel)
    noise_util: float
    noise_mem_util: float
    noise_power: float
    # Startup leakage: number of discrete allocation steps while the
    # framework builds the model (weak class signal in start windows)
    startup_alloc_steps: int
    # CPU-side profile
    cpu_util_mean: float
    io_read_mbps: float
    io_write_mbps: float
    rss_mib: float


# Family base profiles.  Tuple fields: (util_mean, util_amp, step_period_s,
# duty, mem_frac, mem_util_mean, coupling, epoch_period_s, dip_depth,
# dip_frac, ckpt_every, ckpt_dur, power_base, power_per_util, noise_util,
# noise_mem, noise_power, cpu_util, io_read, io_write, rss_gib)
_FAMILY_BASE: dict[Family, tuple] = {
    Family.VGG: (78.0, 22.0, 2.4, 0.72, 0.42, 52.0, 0.78, 46.0, 0.30, 0.08,
                 4, 6.0, 55.0, 2.15, 3.2, 4.0, 9.0, 38.0, 180.0, 4.0, 24.0),
    Family.RESNET: (64.0, 30.0, 3.4, 0.58, 0.30, 40.0, 0.68, 58.0, 0.35, 0.10,
                    5, 5.0, 52.0, 1.95, 4.0, 5.0, 8.0, 46.0, 220.0, 5.0, 20.0),
    Family.INCEPTION: (71.0, 18.0, 4.6, 0.64, 0.34, 44.0, 0.60, 72.0, 0.40, 0.09,
                       4, 7.0, 54.0, 2.05, 3.6, 4.5, 8.5, 42.0, 200.0, 4.5, 22.0),
    Family.UNET: (58.0, 36.0, 2.0, 0.52, 0.26, 34.0, 0.84, 38.0, 0.25, 0.07,
                  3, 4.0, 50.0, 1.80, 4.5, 5.5, 7.5, 33.0, 260.0, 8.0, 18.0),
    Family.NLP: (90.0, 8.0, 6.0, 0.82, 0.62, 68.0, 0.45, 120.0, 0.50, 0.05,
                 6, 10.0, 58.0, 2.35, 2.2, 3.0, 10.0, 24.0, 90.0, 3.0, 30.0),
    Family.GNN: (30.0, 26.0, 1.3, 0.40, 0.12, 18.0, 0.55, 24.0, 0.20, 0.12,
                 2, 3.0, 46.0, 1.55, 6.0, 7.0, 6.0, 58.0, 60.0, 2.0, 12.0),
}

#: V100 on-board memory in MiB (32 GB parts, as on TX-Gaia).
_V100_MEM_MIB = 32_510.0


def signature_for(spec: ArchitectureSpec) -> SignatureParams:
    """Derive the deterministic signature for an architecture class.

    Variant separation inside a family scales with ``spec.relative_size``:
    bigger variants sustain higher utilization, allocate more memory, take
    longer steps and draw more power.  A small name-derived offset breaks
    remaining ties between variants whose relative sizes coincide across
    families.
    """
    (util, amp, step, duty, mem_frac, mem_util, coupling, epoch, dip_depth,
     dip_frac, ckpt_every, ckpt_dur, p_base, p_per, n_util, n_mem, n_pow,
     cpu_util, io_r, io_w, rss_gib) = _FAMILY_BASE[spec.family]

    s = spec.relative_size
    # Name-derived deterministic tiebreaker in [0, 1).
    tie = (sum(ord(c) * (i + 1) for i, c in enumerate(spec.name)) % 97) / 97.0

    util_mean = min(98.5, util + 22.0 * (s - 0.7) + 6.0 * (tie - 0.5))
    util_amp = max(3.0, amp * (1.25 - 0.55 * s) + 7.0 * (tie - 0.5))
    step_period = step * (0.55 + 0.9 * s) * (1.0 + 0.35 * (tie - 0.5))
    mem_used = _V100_MEM_MIB * min(0.92, mem_frac * (0.40 + 1.15 * s))
    mem_util_mean = min(95.0, mem_util * (0.60 + 0.75 * s) + 5.0 * (tie - 0.5))
    epoch_period = epoch * (0.65 + 0.7 * s) * (1.0 + 0.30 * (tie - 0.5))
    power_per = p_per * (0.78 + 0.42 * s) * (1.0 + 0.12 * (tie - 0.5))

    return SignatureParams(
        util_mean=util_mean,
        util_amp=util_amp,
        step_period_s=step_period,
        duty=min(0.92, max(0.25, duty + 0.18 * (s - 0.5) + 0.10 * (tie - 0.5))),
        mem_used_mib=mem_used,
        mem_util_mean=mem_util_mean,
        mem_util_coupling=min(0.95, max(0.15, coupling + 0.30 * (tie - 0.5))),
        epoch_period_s=epoch_period,
        epoch_dip_depth=dip_depth,
        epoch_dip_frac=dip_frac,
        checkpoint_every=ckpt_every,
        checkpoint_dur_s=ckpt_dur,
        power_base_w=p_base,
        power_per_util=power_per,
        noise_util=n_util,
        noise_mem_util=n_mem,
        noise_power=n_pow,
        startup_alloc_steps=3 + int(round(6 * s)),
        cpu_util_mean=min(95.0, cpu_util * (0.8 + 0.4 * s)),
        io_read_mbps=io_r * (0.7 + 0.6 * s),
        io_write_mbps=io_w,
        rss_mib=rss_gib * 1024.0 * (0.7 + 0.6 * s),
    )
