"""Job lifecycle phase model.

Every simulated training job moves through the same lifecycle the paper's
discussion of the ``60-start-1`` dataset appeals to:

``STARTUP`` (framework import, dataset staging — *generic across classes*)
→ ``WARMUP`` (first slow epoch: compilation, cudnn autotuning)
→ ``TRAIN`` (steady-state epochs with boundary dips)
→ interleaved ``CHECKPOINT`` stalls
→ ``COOLDOWN`` (final evaluation / teardown).

The phase schedule is sampled per job, so window extraction at the start,
middle, or a random offset of the series lands in different phase mixtures —
which is exactly the mechanism behind the start/middle/random accuracy
ordering in Tables V and VI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.simcluster.signatures import SignatureParams

__all__ = ["PhaseKind", "Phase", "PhaseSchedule", "build_phase_schedule"]


class PhaseKind(enum.Enum):
    """Lifecycle phases of a training job."""

    STARTUP = "startup"
    WARMUP = "warmup"
    TRAIN = "train"
    CHECKPOINT = "checkpoint"
    COOLDOWN = "cooldown"


@dataclass(frozen=True)
class Phase:
    """A contiguous interval of the job timeline, in seconds."""

    kind: PhaseKind
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Duration in seconds."""
        return self.end_s - self.start_s

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError(
                f"phase {self.kind.value} has non-positive duration "
                f"[{self.start_s}, {self.end_s})"
            )


@dataclass(frozen=True)
class PhaseSchedule:
    """Ordered, gap-free phase list covering ``[0, total_s)``."""

    phases: tuple[Phase, ...]
    total_s: float

    def __post_init__(self):
        t = 0.0
        for ph in self.phases:
            if abs(ph.start_s - t) > 1e-9:
                raise ValueError(f"phase gap/overlap at t={t}: {ph}")
            t = ph.end_s
        if abs(t - self.total_s) > 1e-9:
            raise ValueError(f"phases cover [0, {t}) but total_s={self.total_s}")

    def kind_at(self, t: np.ndarray) -> np.ndarray:
        """Vectorized phase lookup: per-timestamp index into ``PhaseKind``.

        Returns an int array where value ``k`` means ``list(PhaseKind)[k]``.
        """
        kinds = list(PhaseKind)
        starts = np.array([ph.start_s for ph in self.phases])
        idx = np.searchsorted(starts, t, side="right") - 1
        idx = np.clip(idx, 0, len(self.phases) - 1)
        kind_codes = np.array([kinds.index(ph.kind) for ph in self.phases])
        return kind_codes[idx]

    def mask(self, t: np.ndarray, kind: PhaseKind) -> np.ndarray:
        """Boolean mask of timestamps falling inside phases of ``kind``."""
        return self.kind_at(t) == list(PhaseKind).index(kind)

    def first(self, kind: PhaseKind) -> Phase | None:
        """First phase of the given kind, or None."""
        for ph in self.phases:
            if ph.kind == kind:
                return ph
        return None


def build_phase_schedule(
    sig: SignatureParams,
    total_s: float,
    rng: np.random.Generator,
    *,
    startup_mean_s: float = 40.0,
) -> PhaseSchedule:
    """Sample a phase schedule for one job.

    Parameters
    ----------
    sig:
        Class signature — supplies the epoch period and checkpoint cadence.
    total_s:
        Total job duration.  Must be long enough to hold a startup phase and
        at least a sliver of training (≥ ~3× the startup mean is sensible).
    rng:
        Per-job random stream.
    startup_mean_s:
        Mean duration of the generic startup phase.  The actual duration is
        log-normal around this, shared by *all* classes — the startup length
        itself carries no class signal.
    """
    if total_s <= startup_mean_s:
        raise ValueError(
            f"job too short ({total_s}s) for startup phase (~{startup_mean_s}s)"
        )
    phases: list[Phase] = []
    t = 0.0

    # Generic startup: log-normal, clipped so training always exists and so
    # a 60-second start window usually reaches into warmup/training (the
    # real dataset's start windows are degraded but not class-free).
    startup = float(np.clip(rng.lognormal(np.log(startup_mean_s), 0.30),
                            10.0, min(48.0, 0.45 * total_s)))
    phases.append(Phase(PhaseKind.STARTUP, t, t + startup))
    t += startup

    # Warmup: a fraction of one epoch, slower than steady state.
    warmup = float(np.clip(rng.uniform(0.4, 0.9) * sig.epoch_period_s,
                           2.0, 0.25 * (total_s - t)))
    phases.append(Phase(PhaseKind.WARMUP, t, t + warmup))
    t += warmup

    # Cooldown reserved at the end.
    cooldown = float(np.clip(rng.uniform(3.0, 12.0), 1.0, 0.1 * total_s))
    train_end = total_s - cooldown

    # Steady-state training with periodic checkpoint stalls.
    epoch = 0
    while t < train_end - 1e-9:
        epoch_len = sig.epoch_period_s * float(rng.normal(1.0, 0.06))
        epoch_len = max(2.0, epoch_len)
        seg_end = min(t + epoch_len, train_end)
        phases.append(Phase(PhaseKind.TRAIN, t, seg_end))
        t = seg_end
        epoch += 1
        if (
            sig.checkpoint_every > 0
            and epoch % sig.checkpoint_every == 0
            and t < train_end - sig.checkpoint_dur_s - 1.0
        ):
            ck = sig.checkpoint_dur_s * float(rng.uniform(0.7, 1.3))
            phases.append(Phase(PhaseKind.CHECKPOINT, t, t + ck))
            t += ck

    phases.append(Phase(PhaseKind.COOLDOWN, t, total_s))
    return PhaseSchedule(tuple(phases), total_s)
