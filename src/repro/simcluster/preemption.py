"""Preemption/failure events for the simulated cluster.

The MIT Supercloud dataset paper records the node failures behind this
telemetry, and "Revisiting Reliability in Large-Scale ML Research
Clusters" (Kokolis et al.) measures preemption/failure handling as the
dominant cost at fleet scale.  This module samples *when* those events
hit a running job, with the same determinism contract as the rest of
:mod:`repro.simcluster`: one seed, one stream name, bit-stable events
regardless of what else draws randomness.

Used by ``repro resilience-bench`` to decide where to SIGKILL a training
run, and available to the scheduler simulation for failure-aware traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import SeedSequenceFactory

__all__ = ["PreemptionEvent", "PreemptionProcess"]


@dataclass(frozen=True)
class PreemptionEvent:
    """One preemption: the job dies abruptly at ``time_s``.

    ``kind`` distinguishes scheduler preemptions (requeue-able) from node
    failures (the hardware-rooted events the Supercloud paper documents);
    both look identical to the dying process.
    """

    time_s: float
    kind: str = "preemption"

    def __post_init__(self):
        if self.time_s < 0:
            raise ValueError(f"time_s must be >= 0, got {self.time_s}")
        if self.kind not in ("preemption", "node_failure"):
            raise ValueError(f"unknown event kind {self.kind!r}")


class PreemptionProcess:
    """Deterministic Poisson process of preemptions for one job.

    Inter-arrival times are exponential with mean ``mtbf_s`` (mean time
    between failures); a fraction ``node_failure_fraction`` of events are
    hard node failures.  Events are a pure function of ``(seed, job)`` —
    the standard :class:`~repro.utils.rng.SeedSequenceFactory` contract —
    so a bench can replay the exact preemption schedule that killed a run.
    """

    def __init__(
        self,
        mtbf_s: float,
        *,
        seed: int | None = 0,
        job: str = "job-0",
        node_failure_fraction: float = 0.2,
    ):
        if mtbf_s <= 0:
            raise ValueError(f"mtbf_s must be positive, got {mtbf_s}")
        if not 0.0 <= node_failure_fraction <= 1.0:
            raise ValueError(
                f"node_failure_fraction must be in [0, 1], "
                f"got {node_failure_fraction}"
            )
        self.mtbf_s = mtbf_s
        self.job = job
        self.node_failure_fraction = node_failure_fraction
        self._factory = SeedSequenceFactory(seed)

    def events(self, horizon_s: float) -> list[PreemptionEvent]:
        """All events striking within ``[0, horizon_s)``, in time order."""
        if horizon_s < 0:
            raise ValueError(f"horizon_s must be >= 0, got {horizon_s}")
        rng = self._factory.stream(f"preemption:{self.job}")
        out: list[PreemptionEvent] = []
        t = 0.0
        while True:
            t += float(rng.exponential(self.mtbf_s))
            if t >= horizon_s:
                return out
            kind = (
                "node_failure"
                if rng.random() < self.node_failure_fraction
                else "preemption"
            )
            out.append(PreemptionEvent(time_s=t, kind=kind))

    def kill_epochs(self, n_epochs: int, epoch_s: float) -> list[int]:
        """Map events onto epoch indices for an ``n_epochs`` training run.

        An event at time ``t`` kills the run during epoch
        ``int(t // epoch_s) + 1`` (1-based).  Duplicate epochs are
        collapsed; an empty list means the run finishes untouched.
        """
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        if epoch_s <= 0:
            raise ValueError(f"epoch_s must be positive, got {epoch_s}")
        epochs: list[int] = []
        for event in self.events(horizon_s=n_epochs * epoch_s):
            epoch = int(event.time_s // epoch_s) + 1
            if epoch not in epochs:
                epochs.append(epoch)
        return epochs
