"""Export simulated releases in MIT-Supercloud-style CSV file layouts.

The real dataset ships monitoring logs as per-subsystem CSV files (GPU
telemetry, CPU/slurm profiling, scheduler accounting).  This module writes
the simulator's output in analogous layouts, so tooling written against the
real release's files can be exercised on synthetic data:

* ``scheduler.csv`` — one anonymized accounting row per job;
* ``gpu/<job>-<gpu>.csv`` — timestamped 7-sensor GPU telemetry;
* ``cpu/<job>.csv`` — timestamped Table II CPU metrics.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.simcluster.cluster import SimulatedJob
from repro.simcluster.filesystem import FS_COUNTER_NAMES
from repro.simcluster.scheduler import SchedulerLog
from repro.simcluster.sensors import CPU_METRICS, GPU_SENSORS

__all__ = ["export_scheduler_log", "export_job_telemetry", "export_release"]

SCHEDULER_COLUMNS = (
    "job_id", "user_hash", "architecture", "class_label", "n_nodes",
    "gpus_per_node", "submit_time_s", "start_time_s", "end_time_s",
    "exit_code",
)


def export_scheduler_log(log: SchedulerLog, path: str | Path) -> Path:
    """Write the anonymized accounting log as one CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SCHEDULER_COLUMNS)
        for rec in log:
            writer.writerow([
                rec.job_id, rec.user_hash, rec.architecture, rec.class_label,
                rec.n_nodes, rec.gpus_per_node,
                f"{rec.submit_time_s:.3f}", f"{rec.start_time_s:.3f}",
                f"{rec.end_time_s:.3f}", rec.exit_code,
            ])
    return path


def _write_series(path: Path, header: list[str], t: np.ndarray,
                  data: np.ndarray) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp_s", *header])
        for row_t, row in zip(t, data):
            writer.writerow([f"{row_t:.3f}", *(f"{v:.4f}" for v in row)])


def export_job_telemetry(job: SimulatedJob, directory: str | Path) -> list[Path]:
    """Write one job's GPU (per device) and CPU series as CSVs."""
    directory = Path(directory)
    gpu_dir = directory / "gpu"
    cpu_dir = directory / "cpu"
    gpu_dir.mkdir(parents=True, exist_ok=True)
    cpu_dir.mkdir(parents=True, exist_ok=True)

    paths: list[Path] = []
    gpu_header = [s.name for s in GPU_SENSORS]
    for gs in job.gpu_series:
        path = gpu_dir / f"{job.record.job_id:06d}-gpu{gs.gpu_index}.csv"
        t = job.record.start_time_s + np.arange(gs.n_samples) * gs.dt_s
        _write_series(path, gpu_header, t, gs.data)
        paths.append(path)
    if job.cpu_series is not None:
        path = cpu_dir / f"{job.record.job_id:06d}.csv"
        t = job.record.start_time_s + np.arange(
            job.cpu_series.n_samples) * job.cpu_series.dt_s
        _write_series(path, [m.name for m in CPU_METRICS], t,
                      job.cpu_series.data)
        paths.append(path)
    if job.fs_counters is not None:
        fs_dir = directory / "fsio"
        fs_dir.mkdir(parents=True, exist_ok=True)
        path = fs_dir / f"{job.record.job_id:06d}.csv"
        t = job.record.start_time_s + np.arange(
            job.fs_counters.n_samples) * job.fs_counters.dt_s
        _write_series(path, list(FS_COUNTER_NAMES), t, job.fs_counters.data)
        paths.append(path)
    return paths


def export_release(
    jobs: list[SimulatedJob], log: SchedulerLog, directory: str | Path
) -> dict[str, int]:
    """Write a whole release; returns file counts per subsystem."""
    directory = Path(directory)
    export_scheduler_log(log, directory / "scheduler.csv")
    n_gpu = n_cpu = n_fs = 0
    for job in jobs:
        export_job_telemetry(job, directory)
        n_gpu += len(job.gpu_series)
        n_cpu += int(job.cpu_series is not None)
        n_fs += int(job.fs_counters is not None)
    return {"scheduler": 1, "gpu_series": n_gpu, "cpu_series": n_cpu,
            "fs_series": n_fs}
