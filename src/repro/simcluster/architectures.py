"""Registry of the 26 labelled architecture classes.

The class list and per-class job counts come from Tables VII, VIII and IX of
the paper; family totals match Table I (e.g. U-Net's nine sub-architectures
sum to 1,431 jobs).  Class *indices* are assigned in the registry order
below, which groups families the same way the paper's appendix does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Family",
    "ArchitectureSpec",
    "ARCHITECTURES",
    "architecture_names",
    "class_index",
    "get_architecture",
    "job_count_table",
    "N_CLASSES",
]


class Family(enum.Enum):
    """Model family groupings used in Table I."""

    VGG = "VGG"
    RESNET = "ResNet"
    INCEPTION = "Inception"
    UNET = "U-Net"
    NLP = "NLP"
    GNN = "GNN"


@dataclass(frozen=True)
class ArchitectureSpec:
    """One labelled class.

    Attributes
    ----------
    name:
        Class name as it appears in ``model_train`` / ``model_test``.
    family:
        Table I family.
    paper_job_count:
        Number of labelled jobs of this class in the real dataset
        (Tables VII–IX); the simulator samples per-class job counts
        proportional to these.
    relative_size:
        Rough relative compute footprint within the family (drives the
        signature parameters: bigger variants → higher utilization, larger
        memory footprint, longer steps).
    """

    name: str
    family: Family
    paper_job_count: int
    relative_size: float


#: All 26 labelled classes, appendix order (VGG, Inception, ResNet, U-Net, NLP, GNN).
ARCHITECTURES: tuple[ArchitectureSpec, ...] = (
    # Table VII — VGG
    ArchitectureSpec("VGG11", Family.VGG, 185, 0.55),
    ArchitectureSpec("VGG16", Family.VGG, 176, 0.80),
    ArchitectureSpec("VGG19", Family.VGG, 199, 1.00),
    # Table VII — Inception
    ArchitectureSpec("Inception3", Family.INCEPTION, 241, 0.70),
    ArchitectureSpec("Inception4", Family.INCEPTION, 243, 1.00),
    # Table VIII — ResNet
    ArchitectureSpec("ResNet50", Family.RESNET, 111, 0.45),
    ArchitectureSpec("ResNet50_v1.5", Family.RESNET, 91, 0.50),
    ArchitectureSpec("ResNet101", Family.RESNET, 77, 0.70),
    ArchitectureSpec("ResNet101_v2", Family.RESNET, 54, 0.75),
    ArchitectureSpec("ResNet152", Family.RESNET, 76, 0.95),
    ArchitectureSpec("ResNet152_v2", Family.RESNET, 54, 1.00),
    # Table VIII — U-Net (U<depth>-<filters>)
    ArchitectureSpec("U3-32", Family.UNET, 165, 0.30),
    ArchitectureSpec("U3-64", Family.UNET, 159, 0.45),
    ArchitectureSpec("U3-128", Family.UNET, 165, 0.65),
    ArchitectureSpec("U4-32", Family.UNET, 163, 0.40),
    ArchitectureSpec("U4-64", Family.UNET, 158, 0.60),
    ArchitectureSpec("U4-128", Family.UNET, 157, 0.80),
    ArchitectureSpec("U5-32", Family.UNET, 158, 0.50),
    ArchitectureSpec("U5-64", Family.UNET, 158, 0.75),
    ArchitectureSpec("U5-128", Family.UNET, 148, 1.00),
    # NLP — Table I counts (189/172).  Table IX disagrees (185/241); only
    # the Table I numbers make the total match the stated 3,430 jobs, so we
    # treat Table IX's NLP column as a typo.
    ArchitectureSpec("Bert", Family.NLP, 189, 1.00),
    ArchitectureSpec("DistillBert", Family.NLP, 172, 0.55),
    # Table IX — GNN
    ArchitectureSpec("Dimenet", Family.GNN, 33, 1.00),
    ArchitectureSpec("Schnet", Family.GNN, 39, 0.60),
    ArchitectureSpec("PNA", Family.GNN, 27, 0.80),
    ArchitectureSpec("NNConv", Family.GNN, 32, 0.40),
)

N_CLASSES = len(ARCHITECTURES)

_BY_NAME = {spec.name: i for i, spec in enumerate(ARCHITECTURES)}


def architecture_names() -> list[str]:
    """All class names in label-index order."""
    return [spec.name for spec in ARCHITECTURES]


def class_index(name: str) -> int:
    """Integer label for a class name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown architecture {name!r}") from None


def get_architecture(name_or_index: str | int) -> ArchitectureSpec:
    """Look up an :class:`ArchitectureSpec` by name or label index."""
    if isinstance(name_or_index, str):
        return ARCHITECTURES[class_index(name_or_index)]
    idx = int(name_or_index)
    if not 0 <= idx < N_CLASSES:
        raise IndexError(f"class index {idx} out of range [0, {N_CLASSES})")
    return ARCHITECTURES[idx]


def job_count_table() -> dict[str, dict[str, int]]:
    """Reconstruct Table I: per-family job totals keyed by family then class."""
    table: dict[str, dict[str, int]] = {}
    for spec in ARCHITECTURES:
        table.setdefault(spec.family.value, {})[spec.name] = spec.paper_job_count
    return table
