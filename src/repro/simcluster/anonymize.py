"""Identity anonymization, mirroring the released dataset's scrubbing.

The MIT Supercloud release removes or hashes all identifiable fields.  We
apply the same policy to the simulator's synthetic user/job identities so
the scheduler-log schema matches the public release.
"""

from __future__ import annotations

import hashlib

__all__ = ["anonymize_id"]


def anonymize_id(raw: str, *, salt: str = "mit-supercloud-dcc", length: int = 16) -> str:
    """Deterministically hash an identity string.

    Parameters
    ----------
    raw:
        The raw identity (user name, account, job script path, ...).
    salt:
        Release-wide salt; one salt per release keeps hashes linkable within
        a release but not across releases.
    length:
        Hex digits kept (16 default, ample for a few thousand identities).
    """
    if not raw:
        raise ValueError("cannot anonymize an empty identity")
    if length < 4 or length > 64:
        raise ValueError(f"length must be in [4, 64], got {length}")
    digest = hashlib.sha256(f"{salt}:{raw}".encode("utf-8")).hexdigest()
    return digest[:length]
