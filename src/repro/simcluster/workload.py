"""Per-job GPU activity synthesis.

:class:`WorkloadGenerator` turns (architecture class, job duration, random
stream) into one 7-sensor GPU time series per GPU of the job:

1. the class signature is jittered per job (run-to-run variation: batch
   size, input pipeline, co-located load),
2. a phase schedule is sampled (:mod:`repro.simcluster.phases`),
3. activity traces — compute utilization, memory-bandwidth utilization and
   memory footprint — are synthesized phase by phase,
4. :class:`repro.simcluster.gpu.GpuModel` maps activity to the physical
   sensors (power, temperatures, free/used memory).

Everything is vectorized over time; the only Python-level loops are over a
job's handful of phases and GPUs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from repro.simcluster.architectures import ArchitectureSpec
from repro.simcluster.gpu import GpuModel
from repro.simcluster.phases import PhaseKind, PhaseSchedule, build_phase_schedule
from repro.simcluster.signatures import SignatureParams, signature_for

__all__ = ["GpuSeries", "JobTelemetry", "WorkloadGenerator", "DEFAULT_DT_S"]

#: GPU telemetry sampling interval.  540 samples per 60-second window in the
#: challenge datasets implies 9 Hz.
DEFAULT_DT_S = 60.0 / 540.0


@dataclass
class GpuSeries:
    """One GPU's telemetry for one job.

    Attributes
    ----------
    data:
        ``(n_samples, 7)`` sensor matrix in Table III column order.
    dt_s:
        Sampling interval.
    gpu_index:
        Index of this GPU within the job (0-based).
    """

    data: np.ndarray
    dt_s: float
    gpu_index: int

    @property
    def n_samples(self) -> int:
        """Number of time samples in the series."""
        return self.data.shape[0]

    @property
    def duration_s(self) -> float:
        """Duration in seconds."""
        return self.n_samples * self.dt_s


@dataclass
class JobTelemetry:
    """Everything the generator knows about one job's GPU side.

    ``signature`` and ``schedule`` are exposed so the CPU model (which
    samples on its own, slower clock) can stay aligned with the job's
    lifecycle, and so tests can assert phase-conditional behaviour.
    """

    gpu_series: list[GpuSeries]
    signature: SignatureParams
    schedule: PhaseSchedule


def _ar1_noise(n: int, std: float, corr: float, rng: np.random.Generator) -> np.ndarray:
    """Temporally correlated (AR(1)) noise with stationary std ``std``."""
    if std <= 0:
        return np.zeros(n)
    white = rng.normal(0.0, std * np.sqrt(1.0 - corr**2), size=n)
    out = lfilter([1.0], [1.0, -corr], white)
    return out


def _step_wave(t: np.ndarray, period_s: float, duty: float, phase0: float) -> np.ndarray:
    """Smoothed rectangular training-step wave in [0, 1].

    A pure square wave aliases badly at 9 Hz sampling, so edges are softened
    with a narrow logistic transition (mimicking the utilization counter's
    own windowed averaging on real GPUs).
    """
    frac = np.mod(t / period_s + phase0, 1.0)
    sharp = 18.0
    rise = 1.0 / (1.0 + np.exp(-sharp * (duty - frac)))
    lead = 1.0 / (1.0 + np.exp(-sharp * frac))
    return rise * lead


class WorkloadGenerator:
    """Synthesizes per-job GPU telemetry from architecture signatures."""

    def __init__(
        self,
        gpu_model: GpuModel | None = None,
        dt_s: float = DEFAULT_DT_S,
        startup_mean_s: float = 40.0,
        glitch_rate: float = 0.004,
    ):
        if dt_s <= 0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        if glitch_rate < 0 or glitch_rate >= 0.5:
            raise ValueError(f"glitch_rate must be in [0, 0.5), got {glitch_rate}")
        self.gpu_model = gpu_model if gpu_model is not None else GpuModel()
        self.dt_s = dt_s
        self.startup_mean_s = startup_mean_s
        self.glitch_rate = glitch_rate

    # ------------------------------------------------------------------
    # Per-job randomization
    # ------------------------------------------------------------------
    def jitter_signature(
        self, sig: SignatureParams, rng: np.random.Generator
    ) -> SignatureParams:
        """Apply per-job run-to-run variation to a class signature.

        A shared "batch scale" factor moves step period, utilization and
        memory footprint together (as a user's batch-size choice does), plus
        independent small jitters per parameter.  Batch scale is drawn from
        a *discrete* grid (users pick batch sizes like 32/64/128), which
        makes each class a handful of tight clusters in feature space — the
        multi-modal structure tree ensembles exploit on the real data.
        """
        batch = float(
            rng.choice([0.90, 1.0, 1.12], p=[0.3, 0.4, 0.3])
            * rng.lognormal(0.0, 0.02)
        )
        return dataclasses.replace(
            sig,
            util_mean=float(np.clip(
                sig.util_mean * rng.normal(1.0, 0.015) * batch**0.15, 5.0, 99.5)),
            util_amp=float(np.clip(sig.util_amp * rng.normal(1.0, 0.04), 2.0, 60.0)),
            step_period_s=max(0.4, sig.step_period_s * batch * rng.normal(1.0, 0.02)),
            mem_used_mib=float(np.clip(
                sig.mem_used_mib * batch**0.5 * rng.normal(1.0, 0.02),
                500.0, 0.95 * self.gpu_model.spec.memory_mib)),
            mem_util_mean=float(np.clip(
                sig.mem_util_mean * rng.normal(1.0, 0.02), 2.0, 98.0)),
            epoch_period_s=max(4.0, sig.epoch_period_s * batch * rng.normal(1.0, 0.04)),
            power_per_util=max(0.3, sig.power_per_util * rng.normal(1.0, 0.015)),
        )

    # ------------------------------------------------------------------
    # Activity synthesis
    # ------------------------------------------------------------------
    def activity_traces(
        self,
        sig: SignatureParams,
        schedule: PhaseSchedule,
        t: np.ndarray,
        rng: np.random.Generator,
        *,
        step_phase0: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Synthesize (util %, mem-util %, mem-used MiB) over timestamps ``t``."""
        n = t.shape[0]
        util = np.zeros(n)
        mem_used = np.zeros(n)

        lo = max(2.0, sig.util_mean - sig.util_amp)
        hi = sig.util_mean + 0.35 * sig.util_amp
        steady = lo + (hi - lo) * _step_wave(t, sig.step_period_s, sig.duty, step_phase0)

        for ph in schedule.phases:
            m = (t >= ph.start_s - 1e-12) & (t < ph.end_s - 1e-12)
            if not m.any():
                continue
            rel = (t[m] - ph.start_s) / max(ph.duration_s, 1e-9)
            if ph.kind == PhaseKind.STARTUP:
                # Generic near-idle compute with sparse autotune spikes.
                base = rng.uniform(1.0, 4.0) + 1.5 * np.abs(_ar1_noise(m.sum(), 1.0, 0.8, rng))
                spikes = (rng.random(m.sum()) < 0.01) * rng.uniform(10.0, 35.0, size=m.sum())
                util[m] = base + spikes
                # Memory ramps to the working set in discrete allocation
                # steps — the only (weak) class signal in this phase.
                k = max(1, sig.startup_alloc_steps)
                levels = np.floor(rel * k + 1e-9) / k
                util_frac = np.clip(levels + rng.normal(0, 0.01, size=m.sum()), 0, 1)
                mem_used[m] = 400.0 + util_frac * (sig.mem_used_mib - 400.0)
            elif ph.kind == PhaseKind.WARMUP:
                ramp = 0.45 + 0.55 * rel
                util[m] = steady[m] * ramp
                mem_used[m] = sig.mem_used_mib
            elif ph.kind == PhaseKind.TRAIN:
                u = steady[m].copy()
                dip = rel > (1.0 - sig.epoch_dip_frac)
                u[dip] *= 1.0 - sig.epoch_dip_depth
                util[m] = u
                mem_used[m] = sig.mem_used_mib
            elif ph.kind == PhaseKind.CHECKPOINT:
                util[m] = rng.uniform(4.0, 12.0) + _ar1_noise(m.sum(), 2.0, 0.6, rng)
                mem_used[m] = sig.mem_used_mib
            elif ph.kind == PhaseKind.COOLDOWN:
                util[m] = steady[m] * np.clip(1.0 - rel * 1.4, 0.0, 1.0)
                mem_used[m] = sig.mem_used_mib * np.clip(1.0 - rel * 0.9, 0.05, 1.0)

        util = util + _ar1_noise(n, sig.noise_util, 0.75, rng)
        util = np.clip(util, 0.0, 100.0)

        # Memory-bandwidth utilization: partially coupled to compute.
        coupled = sig.mem_util_mean * util / max(sig.util_mean, 1e-9)
        mem_util = (
            sig.mem_util_coupling * coupled
            + (1.0 - sig.mem_util_coupling) * sig.mem_util_mean
            + _ar1_noise(n, sig.noise_mem_util, 0.7, rng)
        )
        # Startup/checkpoint phases do little DRAM traffic regardless of class.
        quiet = schedule.mask(t, PhaseKind.STARTUP) | schedule.mask(t, PhaseKind.CHECKPOINT)
        mem_util[quiet] = np.clip(mem_util[quiet] * 0.12, 0.0, 8.0)
        mem_util = np.clip(mem_util, 0.0, 100.0)

        # Small measurement jitter on the footprint (allocator churn).
        mem_used = np.clip(
            mem_used + _ar1_noise(n, 25.0, 0.9, rng),
            0.0, self.gpu_model.spec.memory_mib,
        )
        return util, mem_util, mem_used

    def apply_glitches(self, data: np.ndarray, rng: np.random.Generator) -> None:
        """Inject telemetry read failures in place (sensor columns: Table III).

        Real monitoring pipelines drop samples (``nvidia-smi`` timeouts read
        as zero on the instantaneous counters) and occasionally spike.  The
        per-job glitch rate is itself heavy-tailed, so a minority of trials
        become feature-space outliers — robustness to which separates tree
        models from distance-based models on the real data.
        """
        if self.glitch_rate <= 0:
            return
        n = data.shape[0]
        rate = min(0.4, self.glitch_rate * float(rng.lognormal(0.0, 1.0)))
        drop = rng.random(n) < rate
        if drop.any():
            # Instantaneous counters read zero; temperatures and memory
            # footprint are cached by the collector and persist.
            data[drop, 0] = 0.0   # utilization_gpu_pct
            data[drop, 1] = 0.0   # utilization_memory_pct
            data[drop, 6] = 0.0   # power_draw_W
        spike = rng.random(n) < rate * 0.25
        if spike.any():
            data[spike, 0] = 100.0
            data[spike, 6] = self.gpu_model.spec.tdp_w

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def generate_job(
        self,
        spec: ArchitectureSpec,
        duration_s: float,
        rng: np.random.Generator,
        *,
        n_gpus: int = 1,
    ) -> JobTelemetry:
        """Generate the telemetry of one job: one :class:`GpuSeries` per GPU.

        GPUs of a data-parallel job share the jittered signature, phase
        schedule and step phase (synchronized all-reduce steps) but carry
        independent sensor noise and a small per-GPU utilization offset
        (straggler imbalance).
        """
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        if duration_s < 3.0 * self.startup_mean_s:
            raise ValueError(
                f"duration_s={duration_s} too short; need >= {3 * self.startup_mean_s}"
            )
        sig = self.jitter_signature(signature_for(spec), rng)
        schedule = build_phase_schedule(
            sig, duration_s, rng, startup_mean_s=self.startup_mean_s
        )
        n = int(round(duration_s / self.dt_s))
        t = np.arange(n) * self.dt_s
        step_phase0 = float(rng.random())

        series: list[GpuSeries] = []
        for g in range(n_gpus):
            gpu_sig = sig
            if g > 0:
                gpu_sig = dataclasses.replace(
                    sig,
                    util_mean=float(np.clip(sig.util_mean * rng.normal(1.0, 0.02),
                                            5.0, 99.0)),
                )
            util, mem_util, mem_used = self.activity_traces(
                gpu_sig, schedule, t, rng, step_phase0=step_phase0
            )
            data = self.gpu_model.assemble(
                util, mem_util, mem_used, gpu_sig, self.dt_s, rng
            )
            self.apply_glitches(data, rng)
            series.append(GpuSeries(data=data, dt_s=self.dt_s, gpu_index=g))
        return JobTelemetry(gpu_series=series, signature=sig, schedule=schedule)
