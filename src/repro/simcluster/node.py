"""Compute-node hardware description (TX-Gaia, Section II-A)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simcluster.gpu import GpuSpec, V100_SPEC

__all__ = ["NodeSpec", "TX_GAIA_GPU_NODE", "TX_GAIA_CPU_NODE"]


@dataclass(frozen=True)
class NodeSpec:
    """One node type in the cluster.

    TX-Gaia's GPU partition has 224 nodes, each with two 20-core Intel Xeon
    Gold 6248 processors, 384 GB of RAM, and two 32 GB V100s.
    """

    name: str
    n_sockets: int
    cores_per_socket: int
    ram_gib: float
    gpus_per_node: int
    gpu: GpuSpec | None
    base_freq_mhz: float
    turbo_freq_mhz: float

    @property
    def total_cores(self) -> int:
        """Total CPU cores on the node."""
        return self.n_sockets * self.cores_per_socket


TX_GAIA_GPU_NODE = NodeSpec(
    name="txgaia-gpu",
    n_sockets=2,
    cores_per_socket=20,
    ram_gib=384.0,
    gpus_per_node=2,
    gpu=V100_SPEC,
    base_freq_mhz=2500.0,
    turbo_freq_mhz=3900.0,
)

TX_GAIA_CPU_NODE = NodeSpec(
    name="txgaia-cpu",
    n_sockets=2,
    cores_per_socket=20,
    ram_gib=384.0,
    gpus_per_node=0,
    gpu=None,
    base_freq_mhz=2500.0,
    turbo_freq_mhz=3900.0,
)
