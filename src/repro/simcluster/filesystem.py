"""Parallel-filesystem (Lustre-style) I/O log synthesis.

The MIT Supercloud Dataset ships "file system logs" alongside CPU/GPU
telemetry (Section II-A).  This module completes that part of the
substrate: per-job I/O counter series in the style of Lustre job-stats —
cumulative operation counts and byte counters, driven by the job's phase
schedule (dataset staging at startup, steady input-pipeline reads during
training, bursty checkpoint writes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simcluster.phases import PhaseKind, PhaseSchedule
from repro.simcluster.signatures import SignatureParams

__all__ = ["FsCounters", "FsModel", "FS_COUNTER_NAMES", "DEFAULT_FS_DT_S"]

#: Lustre job-stats-like counters, in column order.
FS_COUNTER_NAMES: tuple[str, ...] = (
    "open_ops",        # cumulative file opens
    "close_ops",       # cumulative file closes
    "read_ops",        # cumulative read calls
    "write_ops",       # cumulative write calls
    "read_bytes",      # cumulative bytes read
    "write_bytes",     # cumulative bytes written
    "metadata_ops",    # stat/lookup traffic
)

DEFAULT_FS_DT_S = 30.0  # Lustre job-stats aggregation interval


@dataclass
class FsCounters:
    """One job's filesystem counter series: ``(n_samples, 7)`` cumulative."""

    data: np.ndarray
    dt_s: float

    @property
    def n_samples(self) -> int:
        """Number of time samples in the series."""
        return self.data.shape[0]

    def rates(self) -> np.ndarray:
        """Per-interval deltas (non-cumulative view)."""
        return np.diff(self.data, axis=0, prepend=self.data[:1] * 0.0)


class FsModel:
    """Synthesizes per-job Lustre-style I/O counters."""

    def __init__(self, dt_s: float = DEFAULT_FS_DT_S, read_chunk_mib: float = 4.0,
                 write_chunk_mib: float = 16.0):
        if dt_s <= 0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        self.dt_s = dt_s
        self.read_chunk = read_chunk_mib * 2**20
        self.write_chunk = write_chunk_mib * 2**20

    def generate(
        self,
        sig: SignatureParams,
        schedule: PhaseSchedule,
        rng: np.random.Generator,
    ) -> FsCounters:
        """Counter series aligned to the job's phase schedule."""
        n = max(2, int(np.ceil(schedule.total_s / self.dt_s)))
        t = np.arange(n) * self.dt_s

        startup = schedule.mask(t, PhaseKind.STARTUP)
        ckpt = schedule.mask(t, PhaseKind.CHECKPOINT)
        cooldown = schedule.mask(t, PhaseKind.COOLDOWN)

        # Read throughput (bytes/s): staging burst, then the input pipeline.
        read_rate = np.full(n, sig.io_read_mbps * 2**20 / 60.0)
        read_rate[startup] *= 4.0
        read_rate[cooldown] *= 0.05
        read_rate *= rng.lognormal(0.0, 0.15, size=n)

        # Write throughput: trickle of logs, checkpoint bursts.
        write_rate = np.full(n, sig.io_write_mbps * 2**20 / 60.0 * 0.2)
        write_rate[ckpt] = sig.io_write_mbps * 2**20 / 60.0 * 30.0
        write_rate *= rng.lognormal(0.0, 0.15, size=n)

        read_bytes = np.cumsum(read_rate * self.dt_s)
        write_bytes = np.cumsum(write_rate * self.dt_s)
        read_ops = np.ceil(read_bytes / self.read_chunk)
        write_ops = np.ceil(write_bytes / self.write_chunk)

        # Opens: dataset shards at startup, checkpoint files later.
        open_rate = np.where(startup, 30.0, 0.6) + np.where(ckpt, 6.0, 0.0)
        open_ops = np.cumsum(open_rate * self.dt_s / 60.0
                             * rng.lognormal(0.0, 0.2, size=n))
        # Closes trail opens by roughly one interval.
        close_ops = np.concatenate([[0.0], open_ops[:-1]])
        metadata_ops = np.cumsum(
            (open_rate * 8.0 + 2.0) * self.dt_s / 60.0
            * rng.lognormal(0.0, 0.2, size=n)
        )

        data = np.column_stack([
            np.floor(open_ops), np.floor(close_ops),
            read_ops, write_ops, read_bytes, write_bytes,
            np.floor(metadata_ops),
        ])
        # Cumulative counters: enforce monotonicity exactly.
        data = np.maximum.accumulate(data, axis=0)
        return FsCounters(data=data, dt_s=self.dt_s)
