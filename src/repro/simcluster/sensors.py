"""Sensor and metric schemas (paper Tables II and III).

The GPU sensor *order* matters: the challenge datasets store the seven GPU
sensors in the last axis in exactly the order of Table III ("element 0 is
utilization_gpu_pct, element 1 is utilization_memory_pct, etc."), and the
covariance-feature naming in the XGBoost analysis depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SensorSpec",
    "GPU_SENSORS",
    "CPU_METRICS",
    "N_GPU_SENSORS",
    "N_CPU_METRICS",
    "gpu_sensor_index",
    "clip_gpu_series",
]


@dataclass(frozen=True)
class SensorSpec:
    """One telemetry channel.

    Attributes
    ----------
    name:
        Column name as released in the dataset.
    description:
        Human-readable description (from the paper's tables).
    unit:
        Physical unit of the recorded values.
    lo, hi:
        Physically plausible range; the simulator clips to it and the tests
        assert that generated data respects it.
    """

    name: str
    description: str
    unit: str
    lo: float
    hi: float

    def clip(self, values):
        """Clip an array into this sensor's physical range (returns array)."""
        import numpy as np

        return np.clip(values, self.lo, self.hi)


#: GPU time-series features, Table III, in dataset column order.
GPU_SENSORS: tuple[SensorSpec, ...] = (
    SensorSpec("utilization_gpu_pct", "Percentage of GPU utilized", "%", 0.0, 100.0),
    SensorSpec("utilization_memory_pct", "Percentage of memory utilized", "%", 0.0, 100.0),
    SensorSpec("memory_free_MiB", "Available GPU memory", "MiB", 0.0, 32510.0),
    SensorSpec("memory_used_MiB", "GPU memory in use", "MiB", 0.0, 32510.0),
    SensorSpec("temperature_gpu", "GPU temperature", "C", 20.0, 95.0),
    SensorSpec("temperature_memory", "GPU Memory temperature", "C", 20.0, 105.0),
    SensorSpec("power_draw_W", "Power drawn", "W", 0.0, 350.0),
)

#: CPU time-series features, Table II.
CPU_METRICS: tuple[SensorSpec, ...] = (
    SensorSpec("CPUFrequency", "CPU clock frequency", "MHz", 800.0, 3900.0),
    SensorSpec("CPUTime", "Time spent on compute by CPU", "s", 0.0, float("inf")),
    SensorSpec("CPUUtilization", "CPU utilization by job", "%", 0.0, 100.0),
    SensorSpec("RSS", "Resident Set Size memory footprint", "MiB", 0.0, 384_000.0),
    SensorSpec("VMSize", "Virtual memory used by process", "MiB", 0.0, 2_000_000.0),
    SensorSpec("Pages", "Linux memory pages", "count", 0.0, float("inf")),
    SensorSpec("ReadMB", "Amount of data read", "MB", 0.0, float("inf")),
    SensorSpec("WriteMB", "Amount of data written", "MB", 0.0, float("inf")),
)

N_GPU_SENSORS = len(GPU_SENSORS)
N_CPU_METRICS = len(CPU_METRICS)

_GPU_INDEX = {spec.name: i for i, spec in enumerate(GPU_SENSORS)}


def clip_gpu_series(series):
    """Clip an ``(..., 7)`` GPU series into every sensor's physical range.

    Used wherever synthetic perturbations (drift injection, augmentation)
    could push telemetry outside Table III's plausible bounds; returns a
    new array.
    """
    import numpy as np

    series = np.asarray(series, dtype=np.float64)
    if series.shape[-1] != N_GPU_SENSORS:
        raise ValueError(
            f"last axis must have {N_GPU_SENSORS} sensors, "
            f"got shape {series.shape}"
        )
    lo = np.array([s.lo for s in GPU_SENSORS])
    hi = np.array([s.hi for s in GPU_SENSORS])
    return np.clip(series, lo, hi)


def gpu_sensor_index(name: str) -> int:
    """Return the dataset column index of a GPU sensor by name."""
    try:
        return _GPU_INDEX[name]
    except KeyError:
        raise KeyError(
            f"unknown GPU sensor {name!r}; expected one of {sorted(_GPU_INDEX)}"
        ) from None
