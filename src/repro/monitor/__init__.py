"""Continuous evaluation for the serving fleet (the monitoring layer).

:mod:`repro.serve` answers "can we classify live workloads at fleet
scale"; this package answers the question that follows it into
production: *is the deployed model still right, and is its replacement
safe to ship?*  Large-cluster reliability studies are unambiguous that
ML systems live or die on continuous monitoring plus automated
remediation — so that layer is first-class here, not a notebook.

* :class:`SensorDriftDetector` / :class:`FleetDriftMonitor` — streaming
  per-sensor drift detection (reference-window z-tests on mean and
  covariance features + Page–Hinkley), O(1) state per stream, attached
  to a server as an ingress tap.
* :class:`ShadowEvaluator` — replays every served micro-batch through a
  challenger model; champion/challenger agreement and
  disagreement-by-class, attached as a batch tap.
* :class:`CanaryController` — SHADOW → CANARY(k%) → PROMOTED /
  ROLLED_BACK state machine; deterministic hash-based session routing,
  agreement/latency guardrails, flips the
  :class:`~repro.serve.registry.ModelRegistry` active pointer.
* :class:`AlertManager` / :class:`AlertRule` — thresholded alerts over
  :class:`~repro.serve.metrics.MetricsRegistry` snapshots with a
  firing/resolved lifecycle.
* :class:`DriftInjection` — deterministic sensor gain/offset ramps and
  class-mix shifts for the load generator, so the whole pipeline is
  rehearsable end to end (``repro monitor-bench``).
"""

from repro.monitor.alerts import AlertEvent, AlertManager, AlertRule
from repro.monitor.bench import (
    MonitorBenchConfig,
    MonitorBenchReport,
    run_monitor_bench,
)
from repro.monitor.drift import (
    DriftConfig,
    DriftEvent,
    FleetDriftMonitor,
    PageHinkley,
    SensorDriftDetector,
)
from repro.monitor.inject import DriftInjection, inject_series
from repro.monitor.rollout import (
    CANARY,
    PROMOTED,
    ROLLED_BACK,
    SHADOW,
    CanaryController,
    RolloutConfig,
    RolloutDecision,
)
from repro.monitor.shadow import ShadowEvaluator

__all__ = [
    "AlertEvent",
    "AlertManager",
    "AlertRule",
    "MonitorBenchConfig",
    "MonitorBenchReport",
    "run_monitor_bench",
    "DriftConfig",
    "DriftEvent",
    "FleetDriftMonitor",
    "PageHinkley",
    "SensorDriftDetector",
    "DriftInjection",
    "inject_series",
    "SHADOW",
    "CANARY",
    "PROMOTED",
    "ROLLED_BACK",
    "CanaryController",
    "RolloutConfig",
    "RolloutDecision",
    "ShadowEvaluator",
]
