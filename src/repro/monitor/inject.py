"""Deterministic drift injection for end-to-end monitor rehearsals.

A drift detector you have never seen fire is a detector you do not have.
This module perturbs replayed telemetry the way production telemetry
actually rots:

* **Sensor gain/offset ramp** — ``x' = x · (1 + (gain−1)·t) + offset·t``
  with ``t`` ramping linearly from 0 to 1 over ``ramp_samples`` starting
  at ``start_sample`` (a recalibrated or miscalibrated sensor, a firmware
  change scaling utilization counters).  Results are clipped back to each
  sensor's physical range so injected streams stay plausible.
* **Class-mix shift** — a seeded fraction of fleet jobs switch, at the
  same stream offset, to telemetry from a *different* workload class (new
  DNN architectures arriving in the fleet).  This one fools input-drift
  detectors slowly but shows up immediately in shadow disagreement-by-
  class — which is exactly the point of running both monitors.

Everything is a pure function of ``(series, config)`` — no RNG at
injection time — so a drifted replay is as reproducible as a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simcluster.sensors import N_GPU_SENSORS, clip_gpu_series

__all__ = ["DriftInjection", "inject_series"]


@dataclass(frozen=True)
class DriftInjection:
    """One injected drift scenario for a fleet replay.

    ``gain``/``offset`` may be scalars (applied to every targeted sensor)
    or length-7 sequences; ``sensors`` restricts the gain/offset ramp to a
    subset of channel indices (None = all).  ``class_shift_fraction`` of
    jobs (seeded by the load generator) swap to a donor series of class
    ``class_shift_to`` (or any different class when None) after
    ``start_sample``.
    """

    start_sample: int = 0
    ramp_samples: int = 270
    gain: float | tuple = 1.0
    offset: float | tuple = 0.0
    sensors: tuple | None = None
    class_shift_fraction: float = 0.0
    class_shift_to: int | None = None
    clip: bool = True

    def __post_init__(self):
        if self.start_sample < 0 or self.ramp_samples < 1:
            raise ValueError(
                "start_sample must be >= 0 and ramp_samples >= 1"
            )
        if not 0.0 <= self.class_shift_fraction <= 1.0:
            raise ValueError(
                f"class_shift_fraction must be in [0, 1], "
                f"got {self.class_shift_fraction}"
            )
        if self.sensors is not None:
            bad = [s for s in self.sensors
                   if not 0 <= int(s) < N_GPU_SENSORS]
            if bad:
                raise ValueError(
                    f"sensor indices out of range [0, {N_GPU_SENSORS}): {bad}"
                )

    @property
    def perturbs_sensors(self) -> bool:
        """Whether the gain/offset ramp changes anything at all."""
        return (np.any(np.asarray(self.gain) != 1.0)
                or np.any(np.asarray(self.offset) != 0.0))

    def _expand(self, value, neutral: float) -> np.ndarray:
        full = np.full(N_GPU_SENSORS, neutral, dtype=np.float64)
        value = np.asarray(value, dtype=np.float64)
        targets = (np.arange(N_GPU_SENSORS) if self.sensors is None
                   else np.asarray(self.sensors, dtype=np.intp))
        full[targets] = value if value.ndim == 0 else value[targets]
        return full


def inject_series(series: np.ndarray, injection: DriftInjection) -> np.ndarray:
    """Apply the gain/offset ramp to one ``(n, 7)`` telemetry series.

    Rows before ``start_sample`` are returned untouched; the perturbation
    ramps linearly over ``ramp_samples`` and holds at full strength
    afterwards.  The input is never mutated.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2 or series.shape[1] != N_GPU_SENSORS:
        raise ValueError(
            f"expected (n, {N_GPU_SENSORS}) series, got shape {series.shape}"
        )
    if not injection.perturbs_sensors or injection.start_sample >= len(series):
        return series
    gain = injection._expand(injection.gain, 1.0)
    offset = injection._expand(injection.offset, 0.0)
    t = np.clip(
        (np.arange(len(series)) - injection.start_sample)
        / injection.ramp_samples,
        0.0, 1.0,
    )[:, None]
    out = series * (1.0 + (gain - 1.0) * t) + offset * t
    if injection.clip:
        out = clip_gpu_series(out)
    return out
