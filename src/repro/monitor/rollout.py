"""Canary rollout controller: SHADOW → CANARY → PROMOTED / ROLLED_BACK.

Shipping a new model version to a fleet is a control problem, not a file
copy.  :class:`CanaryController` drives one challenger version through the
classic progression:

1. **SHADOW** — the challenger sees mirrored traffic only (see
   :class:`~repro.monitor.shadow.ShadowEvaluator`).  After
   ``min_shadow_windows`` observations it either advances (agreement at or
   above ``min_agreement``) or rolls back (below ``rollback_agreement``);
   between the two thresholds it keeps gathering evidence.
2. **CANARY** — a deterministic hash-based ``canary_fraction`` of sessions
   is routed to the challenger (same session always lands on the same
   side; no RNG, no flapping).  Guardrails — continued shadow agreement
   and the challenger/champion latency ratio — are re-checked on every
   :meth:`update`.
3. **PROMOTED / ROLLED_BACK** — terminal.  When a
   :class:`~repro.serve.registry.ModelRegistry` is attached, promotion
   flips the registry's ``ACTIVE`` pointer to the challenger version and
   rollback pins it back to the champion, so the decision survives
   restarts and is visible to every server fetching ``get_active``.

The controller never touches traffic itself: servers (or the load
generator) ask :meth:`route` which deployment a session belongs to, and
the bench loop feeds :meth:`update` with monitor statistics.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

__all__ = [
    "SHADOW",
    "CANARY",
    "PROMOTED",
    "ROLLED_BACK",
    "RolloutConfig",
    "RolloutDecision",
    "CanaryController",
]

SHADOW = "shadow"
CANARY = "canary"
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"

#: Numeric encoding of states for the ``monitor.rollout.state`` gauge.
_STATE_CODE = {SHADOW: 0, CANARY: 1, PROMOTED: 2, ROLLED_BACK: -1}


@dataclass(frozen=True)
class RolloutConfig:
    """Gate thresholds and canary sizing for one rollout."""

    canary_fraction: float = 0.25   # sessions routed to the challenger
    min_shadow_windows: int = 200   # evidence before leaving SHADOW
    min_canary_windows: int = 150   # challenger-served windows before PROMOTED
    min_agreement: float = 0.85     # advance/promote gate
    rollback_agreement: float = 0.60  # immediate rollback gate
    max_latency_ratio: float = 4.0  # challenger/champion per-window predict
    salt: str = ""                  # varies the canary cohort between rollouts

    def __post_init__(self):
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError(
                f"canary_fraction must be in (0, 1], got {self.canary_fraction}"
            )
        if not 0.0 <= self.rollback_agreement <= self.min_agreement <= 1.0:
            raise ValueError(
                "need 0 <= rollback_agreement <= min_agreement <= 1, got "
                f"{self.rollback_agreement} / {self.min_agreement}"
            )
        if self.min_shadow_windows < 1 or self.min_canary_windows < 0:
            raise ValueError("window minimums must be positive")


@dataclass(frozen=True)
class RolloutDecision:
    """One state transition, with the evidence that triggered it."""

    at_s: float                 # serving clock at the transition
    from_state: str
    to_state: str
    reason: str


class CanaryController:
    """State machine promoting or rolling back one challenger version.

    Parameters
    ----------
    config:
        Gate thresholds (:class:`RolloutConfig`).
    registry, name, champion_version, challenger_version:
        Optional :class:`~repro.serve.registry.ModelRegistry` binding; on
        a terminal transition the registry's active pointer for ``name``
        is flipped accordingly.  All four must be given together.
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry`; the
        ``monitor.rollout.state`` gauge tracks the numeric state code
        (0 shadow, 1 canary, 2 promoted, -1 rolled back).
    """

    def __init__(
        self,
        config: RolloutConfig | None = None,
        *,
        registry=None,
        name: str | None = None,
        champion_version: int | None = None,
        challenger_version: int | None = None,
        metrics=None,
    ):
        self.config = config or RolloutConfig()
        bound = (registry, name, champion_version, challenger_version)
        if any(b is not None for b in bound) and any(b is None for b in bound):
            raise ValueError(
                "registry, name, champion_version and challenger_version "
                "must be provided together"
            )
        self.registry = registry
        self.name = name
        self.champion_version = champion_version
        self.challenger_version = challenger_version
        self.metrics = metrics
        self._state = SHADOW
        self.decisions: list[RolloutDecision] = []
        self._publish_state()

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> str:
        """Current rollout state (module-level string constants)."""
        return self._state

    @property
    def terminal(self) -> bool:
        """Whether the rollout has reached PROMOTED or ROLLED_BACK."""
        return self._state in (PROMOTED, ROLLED_BACK)

    # -- routing -------------------------------------------------------
    def in_canary_cohort(self, session_id) -> bool:
        """Whether ``session_id`` hashes into the canary fraction.

        Pure function of ``(salt, session_id)`` — stable across calls,
        processes, and machines, so a session never flaps between
        deployments mid-stream.
        """
        h = zlib.crc32(f"{self.config.salt}|{session_id}".encode())
        return (h % 1_000_000) < self.config.canary_fraction * 1_000_000

    def route(self, session_id) -> str:
        """Which deployment serves ``session_id`` *now*:
        ``"champion"`` or ``"challenger"``."""
        if self._state == PROMOTED:
            return "challenger"
        if self._state == CANARY and self.in_canary_cohort(session_id):
            return "challenger"
        return "champion"

    # -- control loop --------------------------------------------------
    def update(
        self,
        *,
        shadow_windows: int,
        shadow_agreement: float,
        canary_windows: int = 0,
        latency_ratio: float = float("nan"),
        now_s: float = 0.0,
    ) -> RolloutDecision | None:
        """Re-evaluate gates against fresh monitor statistics.

        ``shadow_windows``/``shadow_agreement`` come from the
        :class:`~repro.monitor.shadow.ShadowEvaluator`; ``canary_windows``
        counts windows actually served by the challenger;
        ``latency_ratio`` is challenger/champion per-window predict time
        (NaN = not measured, guardrail skipped).  Returns the transition
        taken, if any.
        """
        if self.terminal:
            return None
        agreement_known = (
            shadow_windows >= self.config.min_shadow_windows
            and not math.isnan(shadow_agreement)
        )
        if self._state == SHADOW:
            if not agreement_known:
                return None
            if shadow_agreement < self.config.rollback_agreement:
                return self._transition(
                    ROLLED_BACK, now_s,
                    f"shadow agreement {shadow_agreement:.2%} below rollback "
                    f"threshold {self.config.rollback_agreement:.0%} "
                    f"after {shadow_windows} windows")
            if shadow_agreement >= self.config.min_agreement:
                return self._transition(
                    CANARY, now_s,
                    f"shadow agreement {shadow_agreement:.2%} over "
                    f"{shadow_windows} windows clears the "
                    f"{self.config.min_agreement:.0%} gate; routing "
                    f"{self.config.canary_fraction:.0%} of sessions")
            return None
        # CANARY: guardrails first, then the promotion gate.
        if agreement_known and shadow_agreement < self.config.rollback_agreement:
            return self._transition(
                ROLLED_BACK, now_s,
                f"canary guardrail: shadow agreement fell to "
                f"{shadow_agreement:.2%}")
        if (not math.isnan(latency_ratio)
                and latency_ratio > self.config.max_latency_ratio):
            return self._transition(
                ROLLED_BACK, now_s,
                f"canary guardrail: challenger latency {latency_ratio:.1f}x "
                f"champion exceeds {self.config.max_latency_ratio:.1f}x")
        if (canary_windows >= self.config.min_canary_windows
                and agreement_known
                and shadow_agreement >= self.config.min_agreement):
            return self._transition(
                PROMOTED, now_s,
                f"{canary_windows} canary windows served, agreement "
                f"{shadow_agreement:.2%}, latency guardrail "
                + ("not measured" if math.isnan(latency_ratio)
                   else f"{latency_ratio:.1f}x"))
        return None

    # -- internals -----------------------------------------------------
    def _transition(self, to_state: str, now_s: float,
                    reason: str) -> RolloutDecision:
        decision = RolloutDecision(
            at_s=now_s, from_state=self._state, to_state=to_state,
            reason=reason)
        self._state = to_state
        self.decisions.append(decision)
        self._publish_state()
        if self.registry is not None:
            if to_state == PROMOTED:
                self.registry.set_active(self.name, self.challenger_version)
            elif to_state == ROLLED_BACK:
                self.registry.set_active(self.name, self.champion_version)
        return decision

    def _publish_state(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("monitor.rollout.state").set(
                _STATE_CODE[self._state])
