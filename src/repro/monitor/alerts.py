"""Thresholded alerting over :class:`~repro.serve.metrics.MetricsRegistry`.

Detectors and evaluators produce numbers; operators act on *transitions*.
An :class:`AlertRule` is a predicate over one metric in a registry
snapshot (``"ingress.shed" > 0``, ``"latency.window_s.p95" > 45``,
``"monitor.shadow.agreement" < 0.6``); the :class:`AlertManager`
evaluates every rule per tick and emits the classic two-phase lifecycle:
a rule that holds for ``for_ticks`` consecutive evaluations **fires**
once, stays active silently, and **resolves** once when it stops holding.
The debounce matters: a single shed chunk or one slow batch should not
page anyone.

Histogram metrics are addressed by summary field — the metric path
``latency.window_s.p95`` splits into the instrument name and the
``summary()`` key.  A metric absent from the snapshot (instrument not
created yet) evaluates as not-breached rather than erroring, so rules can
be declared before traffic starts.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

__all__ = ["AlertRule", "AlertEvent", "AlertManager"]

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
}


@dataclass(frozen=True)
class AlertRule:
    """One threshold predicate over a metric snapshot.

    ``metric`` is either a plain instrument name (counter/gauge value) or
    ``<histogram name>.<summary key>`` (e.g. ``latency.window_s.p99``).
    """

    name: str
    metric: str
    op: str
    threshold: float
    for_ticks: int = 1          # consecutive breaching evaluations to fire
    description: str = ""

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {sorted(_OPS)}, got {self.op!r}")
        if self.for_ticks < 1:
            raise ValueError(f"for_ticks must be >= 1, got {self.for_ticks}")

    def breached(self, snapshot: dict) -> tuple[bool, float | None]:
        """Evaluate against ``MetricsRegistry.as_dict()`` output.

        Returns ``(breached, observed_value)``; a missing metric (or a
        histogram with no observations) is ``(False, None)``.
        """
        value = snapshot.get(self.metric)
        if value is None and "." in self.metric:
            name, _, key = self.metric.rpartition(".")
            summary = snapshot.get(name)
            if isinstance(summary, dict):
                value = summary.get(key)
        if isinstance(value, dict) or value is None:
            return False, None
        return _OPS[self.op](value, self.threshold), float(value)


@dataclass(frozen=True)
class AlertEvent:
    """A lifecycle transition: ``kind`` is ``"firing"`` or ``"resolved"``."""

    rule: str
    kind: str
    at_s: float
    value: float | None         # metric value at the transition


@dataclass
class AlertManager:
    """Evaluate a rule set against a metrics registry, tick by tick."""

    rules: list[AlertRule]
    metrics: object             # MetricsRegistry (anything with as_dict())
    timeline: list[AlertEvent] = field(default_factory=list)
    _streak: dict = field(default_factory=dict, repr=False)
    _active: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")

    def evaluate(self, now_s: float = 0.0) -> list[AlertEvent]:
        """Run every rule once; returns the transitions from this tick."""
        snapshot = self.metrics.as_dict()
        events: list[AlertEvent] = []
        for rule in self.rules:
            breached, value = rule.breached(snapshot)
            streak = self._streak.get(rule.name, 0) + 1 if breached else 0
            self._streak[rule.name] = streak
            firing = rule.name in self._active
            if breached and not firing and streak >= rule.for_ticks:
                self._active[rule.name] = now_s
                events.append(AlertEvent(rule.name, "firing", now_s, value))
            elif not breached and firing:
                del self._active[rule.name]
                events.append(AlertEvent(rule.name, "resolved", now_s, value))
        self.timeline.extend(events)
        return events

    def active(self) -> dict:
        """Currently firing alerts: ``rule name -> fired-at time``."""
        return dict(self._active)
