"""Shadow evaluation: replay served batches through a challenger model.

The cheapest way to qualify a new model version against live traffic is
to let it *shadow* the champion: every micro-batch the champion classifies
is re-classified by the challenger, and only the agreement statistics are
kept — the challenger's labels never reach a session's majority vote.
Because the tap sees the already-stacked ``(n, window, sensors)`` batch,
shadowing costs one extra vectorized ``predict`` per flush, not one per
window.

State is O(classes²): agreement counters plus a disagreement matrix keyed
by ``(champion_label, challenger_label)``, which tells an operator *where*
the models diverge (e.g. the challenger relabels half the champion's
``vgg`` windows as ``resnet``) — far more actionable than a single rate.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

__all__ = ["ShadowEvaluator"]


class ShadowEvaluator:
    """Batch tap tracking champion/challenger agreement.

    Attach to the champion's :class:`~repro.serve.server.InferenceServer`
    via ``taps=[shadow]``; each completed batch is re-predicted by
    ``challenger`` and folded into the counters.

    Parameters
    ----------
    challenger:
        Fitted estimator with ``predict`` over ``(n, window, sensors)``.
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry`; exposes
        ``monitor.shadow.windows``/``.disagreements`` counters, the
        ``monitor.shadow.agreement`` gauge, and a wall-clock
        ``monitor.shadow.predict_wall_s`` per-window histogram (the
        challenger half of the rollout latency guardrail).
    """

    def __init__(self, challenger, *, metrics=None):
        if not hasattr(challenger, "predict"):
            raise TypeError("challenger must expose predict()")
        self.challenger = challenger
        self.metrics = metrics
        self.n_windows = 0
        self.n_agree = 0
        self._disagreements: Counter = Counter()
        self._champion_labels: Counter = Counter()
        self._challenger_labels: Counter = Counter()

    # -- server tap ----------------------------------------------------
    def on_batch(self, completions) -> None:
        """Re-classify one completed batch and update agreement counts."""
        if not completions:
            return
        stacked = np.stack([c.request.window for c in completions])
        tic = time.perf_counter()
        labels = np.asarray(self.challenger.predict(stacked)).astype(np.int64)
        wall_s = time.perf_counter() - tic
        if labels.shape != (len(completions),):
            raise ValueError(
                f"challenger.predict returned shape {labels.shape} for a "
                f"batch of {len(completions)}"
            )
        batch_agree = 0
        for completion, challenger_label in zip(completions, labels):
            champion_label = int(completion.label)
            challenger_label = int(challenger_label)
            self.n_windows += 1
            self._champion_labels[champion_label] += 1
            self._challenger_labels[challenger_label] += 1
            if champion_label == challenger_label:
                self.n_agree += 1
                batch_agree += 1
            else:
                self._disagreements[(champion_label, challenger_label)] += 1
        if self.metrics is not None:
            self.metrics.counter("monitor.shadow.windows").inc(len(completions))
            self.metrics.counter("monitor.shadow.disagreements").inc(
                len(completions) - batch_agree)
            self.metrics.gauge("monitor.shadow.agreement").set(self.agreement)
            self.metrics.histogram("monitor.shadow.predict_wall_s").observe(
                wall_s / len(completions))

    # -- statistics ----------------------------------------------------
    @property
    def agreement(self) -> float:
        """Fraction of shadowed windows where both models agree (NaN empty)."""
        if not self.n_windows:
            return float("nan")
        return self.n_agree / self.n_windows

    def disagreements_by_class(self, top: int | None = None):
        """``((champion, challenger), count)`` pairs, most frequent first."""
        return self._disagreements.most_common(top)

    def label_distributions(self) -> dict:
        """Champion and challenger emitted-label histograms (class -> count)."""
        return {
            "champion": dict(sorted(self._champion_labels.items())),
            "challenger": dict(sorted(self._challenger_labels.items())),
        }

    def report(self) -> dict:
        """Snapshot for the operator report / rollout controller."""
        return {
            "windows": self.n_windows,
            "agreement": self.agreement,
            "top_disagreements": [
                {"champion": a, "challenger": b, "count": n}
                for (a, b), n in self.disagreements_by_class(5)
            ],
        }
