"""Streaming drift detection over the seven GPU telemetry channels.

A serving fleet rots silently: a new DNN architecture, a preprocessing
change, or a sensor recalibration shifts the telemetry distribution and
the deployed classifier keeps emitting confident, wrong labels.  This
module watches the *inputs* — no labels required — with two complementary
detectors, both O(1) state and O(sensors) work per sample, both exactly
deterministic:

* **Reference-window z-tests** — the first ``reference`` samples of a
  stream are frozen as the reference distribution (per-sensor mean plus
  the 28 upper-triangle covariance features the paper's classifiers eat).
  A rolling window of the most recent ``window`` samples is then compared
  against it every ``check_every`` samples: a mean z-test per sensor and
  a z-test per covariance feature (feature scale estimated from reference
  blocks).  Covariance drift catches correlation breaks that leave every
  marginal mean untouched.
* **Page–Hinkley** — a cumulative-sum change detector per sensor over the
  standardized residual ``(x - ref_mean) / ref_std``.  Sensitive to small
  persistent mean shifts long before a window test sees them; its
  false-positive rate is controlled by ``ph_delta``/``ph_threshold``
  (expected excursion probability ``~exp(-2·delta·threshold)``).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.simcluster.sensors import GPU_SENSORS, N_GPU_SENSORS

__all__ = [
    "DriftConfig",
    "DriftEvent",
    "PageHinkley",
    "SensorDriftDetector",
    "FleetDriftMonitor",
]

_EPS = 1e-9


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs shared by every per-stream detector.

    Defaults are sized for the paper's 9 Hz telemetry: a 270-sample
    (30 s) reference and rolling window, checks every 90 samples (one
    hop), and thresholds high enough that stationary traffic stays
    silent (pinned by the test suite) while a ramped gain/offset shift
    fires within a few hundred samples.  ``warmup`` discards the leading
    samples of a stream before the reference is collected — real jobs
    spend their first minute in a startup ramp that would otherwise
    freeze an unrepresentative reference.
    """

    warmup: int = 0             # samples discarded before the reference
    reference: int = 270        # samples frozen as the reference window
    window: int = 270           # rolling current-window length
    check_every: int = 90       # samples between z-test evaluations
    z_mean: float = 8.0         # |z| threshold for per-sensor mean drift
    z_cov: float = 10.0         # |z| threshold per covariance feature
    ph_delta: float = 0.1       # PH drift allowance, in reference sigmas
    ph_threshold: float = 50.0  # PH cumulative-deviation firing level
    cooldown: int = 270         # samples between repeat events per detector
    n_blocks: int = 6           # reference blocks for scale estimates
    horizon: int = 540          # recency window for the fleet drift view
    mean_floor_frac: float = 0.02   # practical-significance floor, of range
    cov_floor_frac: float = 0.05    # same for covariance features

    def __post_init__(self):
        if self.reference < 2 * self.n_blocks:
            raise ValueError(
                f"reference window ({self.reference}) must hold at least "
                f"2 samples per block ({self.n_blocks} blocks)"
            )
        if self.window < 2 or self.check_every < 1:
            raise ValueError("window must be >= 2 and check_every >= 1")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.mean_floor_frac < 0 or self.cov_floor_frac < 0:
            raise ValueError("floor fractions must be >= 0")
        if min(self.z_mean, self.z_cov, self.ph_delta, self.ph_threshold) <= 0:
            raise ValueError("thresholds must be positive")


@dataclass(frozen=True)
class DriftEvent:
    """One detector firing.

    ``kind`` is ``"mean"``/``"covariance"``/``"page_hinkley"``;
    ``statistic`` is the z-score or PH cumulative deviation that crossed
    ``threshold``; ``sample_index`` counts samples into the stream
    (reference window included).
    """

    session_id: object
    sensor: str                 # sensor name, or "cov(a, b)" feature name
    kind: str
    sample_index: int
    statistic: float
    threshold: float


class PageHinkley:
    """Two-sided Page–Hinkley cumulative change detector, O(1) state.

    Tracks the cumulative deviation of the input from its running mean,
    minus a per-step allowance ``delta``; fires when the deviation climbs
    ``threshold`` above its running minimum (upward shift) or falls
    ``threshold`` below its running maximum (downward shift).  Inputs are
    expected roughly standardized, so ``delta`` and ``threshold`` are in
    sigma units.
    """

    def __init__(self, *, delta: float = 0.1, threshold: float = 50.0,
                 min_samples: int = 30):
        if delta <= 0 or threshold <= 0:
            raise ValueError("delta and threshold must be positive")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        """Forget all history (used after a confirmed change point)."""
        self._n = 0
        self._mean = 0.0
        self._cum_up = 0.0
        self._min_up = 0.0
        self._cum_down = 0.0
        self._max_down = 0.0

    @property
    def statistic(self) -> float:
        """Current worst-side cumulative deviation above its extremum."""
        return max(self._cum_up - self._min_up, self._max_down - self._cum_down)

    def update(self, x: float) -> bool:
        """Consume one value; True when a change is detected (then resets)."""
        self._n += 1
        self._mean += (x - self._mean) / self._n
        self._cum_up += x - self._mean - self.delta
        self._min_up = min(self._min_up, self._cum_up)
        self._cum_down += x - self._mean + self.delta
        self._max_down = max(self._max_down, self._cum_down)
        if self._n < self.min_samples:
            return False
        if self.statistic > self.threshold:
            self.reset()
            return True
        return False


def _cov_feature_names() -> list[str]:
    names = [s.name for s in GPU_SENSORS]
    iu = np.triu_indices(len(names))
    return [
        f"var({names[i]})" if i == j else f"cov({names[i]}, {names[j]})"
        for i, j in zip(*iu)
    ]


class SensorDriftDetector:
    """Per-stream drift detector over ``(7,)`` telemetry rows.

    Feed rows with :meth:`update`; every call costs O(sensors²) work and
    the whole detector holds O(window) bounded state — nothing grows with
    stream length (pinned by the memory test).  The first ``reference``
    samples only build the reference distribution; detection starts once
    the rolling window has filled past it.
    """

    def __init__(self, session_id: object = None,
                 config: DriftConfig | None = None):
        self.session_id = session_id
        self.config = config or DriftConfig()
        cfg = self.config
        self.n_seen = 0
        self.n_events = 0
        self._first_event_sample: int | None = None
        self._last_event_sample: int | None = None
        # Reference accumulation (bounded by cfg.reference rows).
        self._ref_rows: list[np.ndarray] | None = []
        self._ref_mean: np.ndarray | None = None
        self._ref_std: np.ndarray | None = None
        self._ref_cov: np.ndarray | None = None
        self._ref_cov_std: np.ndarray | None = None
        # Rolling current window: raw rows for eviction plus running sums.
        self._rows: deque[np.ndarray] = deque(maxlen=cfg.window)
        self._sum = np.zeros(N_GPU_SENSORS)
        self._iu = np.triu_indices(N_GPU_SENSORS)
        self._sum_prod = np.zeros(len(self._iu[0]))
        self._since_check = 0
        # Page–Hinkley per sensor, on standardized residuals.
        self._ph = [
            PageHinkley(delta=cfg.ph_delta, threshold=cfg.ph_threshold)
            for _ in range(N_GPU_SENSORS)
        ]
        self._last_fired: dict[str, int] = {}
        self._cov_names = _cov_feature_names()
        self._sensor_names = [s.name for s in GPU_SENSORS]

    # -- properties ----------------------------------------------------
    @property
    def drifted(self) -> bool:
        """Whether any detector has ever fired on this stream."""
        return self.n_events > 0

    @property
    def first_event_sample(self) -> int | None:
        """Stream position of the first firing (None while clean)."""
        return self._first_event_sample

    @property
    def last_event_sample(self) -> int | None:
        """Stream position of the most recent firing (None while clean)."""
        return self._last_event_sample

    @property
    def drifting(self) -> bool:
        """Whether a detector fired within the last ``horizon`` samples.

        Distinguishes *currently shifting* streams from streams that fired
        once long ago (a job changing phase naturally): the fleet-level
        alert keys on how many sessions are drifting at the same time, not
        on how many ever fired.
        """
        return (self._last_event_sample is not None
                and self.n_seen - self._last_event_sample
                <= self.config.horizon)

    @property
    def ready(self) -> bool:
        """True once the reference window is frozen and detection is live."""
        return self._ref_mean is not None

    # -- streaming -----------------------------------------------------
    def update(self, row) -> list[DriftEvent]:
        """Consume one ``(7,)`` telemetry row; returns any events fired."""
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (N_GPU_SENSORS,):
            raise ValueError(
                f"expected a ({N_GPU_SENSORS},) row, got shape {row.shape}"
            )
        self.n_seen += 1
        if self.n_seen <= self.config.warmup:
            return []
        if self._ref_rows is not None:
            self._ref_rows.append(row)
            if len(self._ref_rows) >= self.config.reference:
                self._freeze_reference()
            return []
        return self._detect(row)

    def update_many(self, rows) -> list[DriftEvent]:
        """Consume ``(k, 7)`` rows in time order; concatenated events."""
        out: list[DriftEvent] = []
        for row in np.atleast_2d(np.asarray(rows, dtype=np.float64)):
            out.extend(self.update(row))
        return out

    # -- internals -----------------------------------------------------
    def _freeze_reference(self) -> None:
        cfg = self.config
        ref = np.stack(self._ref_rows)
        self._ref_rows = None
        self._ref_mean = ref.mean(axis=0)
        self._ref_std = np.maximum(ref.std(axis=0), _EPS)
        centred = ref - self._ref_mean
        # Telemetry is strongly autocorrelated (phases), which shrinks the
        # effective sample size of every window statistic: a 9 Hz power
        # oscillation makes 270 samples carry far fewer than 270
        # independent observations.  Estimate lag-1 autocorrelation per
        # sensor and deflate n by the standard (1-rho)/(1+rho) factor —
        # iid streams get rho ~= 0 and are unaffected.
        denom = np.maximum((centred ** 2).sum(axis=0), _EPS)
        rho = (centred[:-1] * centred[1:]).sum(axis=0) / denom
        rho = np.clip(rho, 0.0, 0.999)
        self._n_eff_factor = (1.0 - rho) / (1.0 + rho)
        gram = (centred.T @ centred) / ref.shape[0]
        self._ref_cov = gram[self._iu]
        # Sampling scales from disjoint reference blocks (batch means):
        # telemetry is long-memory — utilization plateaus and power
        # oscillations persist for whole phases — so parametric scales
        # (even lag-1 autocorrelation corrections) wildly underestimate
        # the natural variability of a window statistic.  The empirical
        # spread of block means/features captures it directly; rescale
        # from block size to the rolling-window size (sqrt-n) and floor at
        # the iid scale so zero-variance sensors never divide by ~0.
        blocks = np.array_split(centred, cfg.n_blocks)
        block_means = np.stack([b.mean(axis=0) for b in blocks])
        feats = []
        for b in blocks:
            bc = b - b.mean(axis=0)      # own-mean centred, like the test
            g = (bc.T @ bc) / max(1, bc.shape[0])
            feats.append(g[self._iu])
        block_n = ref.shape[0] / cfg.n_blocks
        scale = math.sqrt(block_n / cfg.window)
        iid_mean_scale = self._ref_std / math.sqrt(cfg.window)
        # Practical-significance floors, in physical units: steady-state
        # temperature/memory channels sit within a fraction of a unit of
        # their reference, so any slow thermal wander is a huge *statistical*
        # z while being operationally meaningless.  Flooring each scale at a
        # fraction of the sensor's physical range means a firing needs both
        # statistical significance and a real effect size (a 1.6x gain on
        # utilization moves ~30% of range; thermal creep moves <2%).
        sensor_range = np.array([s.hi - s.lo for s in GPU_SENSORS])
        mean_floor = cfg.mean_floor_frac * sensor_range
        cov_floor = np.outer(cfg.cov_floor_frac * sensor_range,
                             cfg.cov_floor_frac * sensor_range)[self._iu]
        self._mean_scale = np.maximum(
            np.maximum(block_means.std(axis=0) * scale, iid_mean_scale),
            mean_floor)
        self._ref_cov_std = np.maximum(
            np.maximum(np.stack(feats).std(axis=0) * scale, cov_floor),
            _EPS)
        self._ph_scale = np.maximum(self._ref_std, mean_floor)

    def _detect(self, row: np.ndarray) -> list[DriftEvent]:
        cfg = self.config
        out: list[DriftEvent] = []
        # Rolling sums: evict before append when the window is full.
        if len(self._rows) == cfg.window:
            old = self._rows[0]
            self._sum -= old
            centred_old = old - self._ref_mean
            self._sum_prod -= np.outer(centred_old, centred_old)[self._iu]
        self._rows.append(row)
        self._sum += row
        centred = row - self._ref_mean
        self._sum_prod += np.outer(centred, centred)[self._iu]
        # Page–Hinkley on standardized residuals (autocorrelation-deflated
        # so cumulative excursions stay in long-run sigma units), one
        # detector per sensor.
        z_row = centred / self._ph_scale * np.sqrt(self._n_eff_factor)
        for i, ph in enumerate(self._ph):
            stat = ph.statistic
            if ph.update(z_row[i]):
                out.extend(self._fire(
                    self._sensor_names[i], "page_hinkley",
                    max(stat, cfg.ph_threshold), cfg.ph_threshold))
        # Window z-tests every check_every samples once the window filled.
        self._since_check += 1
        if len(self._rows) == cfg.window and self._since_check >= cfg.check_every:
            self._since_check = 0
            out.extend(self._check_window())
        return out

    def _check_window(self) -> list[DriftEvent]:
        cfg = self.config
        out: list[DriftEvent] = []
        n = len(self._rows)
        cur_mean = self._sum / n
        # Mean z-test against the batch-means scale (see _freeze_reference).
        z = (cur_mean - self._ref_mean) / self._mean_scale
        for i in np.flatnonzero(np.abs(z) > cfg.z_mean):
            out.extend(self._fire(
                self._sensor_names[int(i)], "mean", float(z[i]), cfg.z_mean))
        # Covariance-feature z-test against the block-estimated scale.
        # _sum_prod accumulates products about the *reference* mean; subtract
        # the mean-offset outer product so the tested statistic is the
        # window's covariance about its own mean — otherwise any mean shift
        # (temperature creeps up all job long) leaks quadratically into
        # every var/cov feature and double-fires what the mean test owns.
        diff = cur_mean - self._ref_mean
        cur_cov = self._sum_prod / n - np.outer(diff, diff)[self._iu]
        zc = (cur_cov - self._ref_cov) / self._ref_cov_std
        for i in np.flatnonzero(np.abs(zc) > cfg.z_cov):
            out.extend(self._fire(
                self._cov_names[int(i)], "covariance", float(zc[i]), cfg.z_cov))
        return out

    def _fire(self, sensor: str, kind: str, statistic: float,
              threshold: float) -> list[DriftEvent]:
        key = f"{kind}:{sensor}"
        last = self._last_fired.get(key)
        if last is not None and self.n_seen - last < self.config.cooldown:
            return []
        self._last_fired[key] = self.n_seen
        self.n_events += 1
        self._last_event_sample = self.n_seen
        if self._first_event_sample is None:
            self._first_event_sample = self.n_seen
        return [DriftEvent(
            session_id=self.session_id,
            sensor=sensor,
            kind=kind,
            sample_index=self.n_seen,
            statistic=statistic,
            threshold=threshold,
        )]


@dataclass
class FleetDriftMonitor:
    """Server ingress tap fanning one :class:`SensorDriftDetector` per job.

    Attach to an :class:`~repro.serve.server.InferenceServer` via
    ``taps=[monitor]``: every chunk leaving the ingress queue updates that
    job's detector.  State is O(window) per active session and is freed by
    :meth:`end_session`; recent events are kept in a bounded deque while
    counts and first-detection positions are scalars per session.
    """

    config: DriftConfig = field(default_factory=DriftConfig)
    metrics: object = None      # optional MetricsRegistry
    max_recent: int = 256
    _detectors: dict = field(default_factory=dict, repr=False)
    _recent: deque = field(default=None, repr=False)
    _first_detection: dict = field(default_factory=dict, repr=False)
    _seen: set = field(default_factory=set, repr=False)
    n_events: int = field(default=0, repr=False)

    def __post_init__(self):
        self._recent = deque(maxlen=self.max_recent)

    def on_ingress(self, job_id, samples) -> None:
        """Server tap: update ``job_id``'s detector with a telemetry chunk."""
        detector = self._detectors.get(job_id)
        if detector is None:
            detector = SensorDriftDetector(job_id, self.config)
            self._detectors[job_id] = detector
            self._seen.add(job_id)
        events = detector.update_many(samples)
        if events:
            self.n_events += len(events)
            self._recent.extend(events)
            self._first_detection.setdefault(job_id, events[0].sample_index)
        if self.metrics is not None:
            if events:
                self.metrics.counter("monitor.drift.events").inc(len(events))
            self.metrics.gauge("monitor.drift.sessions_drifted").set(
                len(self._first_detection))
            self.metrics.gauge("monitor.drift.drifted_fraction").set(
                self.drifted_fraction)
            self.metrics.gauge("monitor.drift.drifting_fraction").set(
                self.drifting_fraction)

    def end_session(self, job_id) -> bool:
        """Free the per-job detector (first-detection record is kept)."""
        existed = self._detectors.pop(job_id, None) is not None
        if existed and self.metrics is not None:
            self.metrics.gauge("monitor.drift.drifting_fraction").set(
                self.drifting_fraction)
        return existed

    # -- fleet view ----------------------------------------------------
    @property
    def n_sessions(self) -> int:
        """Sessions currently holding a live detector."""
        return len(self._detectors)

    @property
    def drifted_fraction(self) -> float:
        """Fraction of sessions ever observed that fired (0 when none seen)."""
        if not self._seen:
            return 0.0
        return len(self._first_detection) / len(self._seen)

    @property
    def drifting_fraction(self) -> float:
        """Fraction of *live* sessions drifting within the recency horizon.

        The separating fleet signal: individual jobs change phase and trip
        their detectors occasionally, but those firings are scattered in
        time.  A platform-level shift (sensor recalibration, preprocessing
        bug) trips most of the fleet inside one horizon, so this fraction
        jumps toward 1 only under correlated drift.
        """
        if not self._detectors:
            return 0.0
        drifting = sum(1 for d in self._detectors.values() if d.drifting)
        return drifting / len(self._detectors)

    def first_detections(self) -> dict:
        """``job_id -> sample_index`` of each session's first firing."""
        return dict(self._first_detection)

    def recent_events(self) -> list[DriftEvent]:
        """The most recent events (bounded by ``max_recent``)."""
        return list(self._recent)

    def detection_latencies(self, drift_start: int) -> dict:
        """Per-session samples between an injected ``drift_start`` and the
        first firing; sessions that fired *before* the start are excluded
        (those are false positives, counted by the caller)."""
        return {
            job: first - drift_start
            for job, first in self._first_detection.items()
            if first >= drift_start
        }
