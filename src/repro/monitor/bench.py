"""End-to-end monitor rehearsal: drift → detection → canary → decision.

``repro monitor-bench`` runs the full continuous-evaluation story on one
machine, deterministically:

1. Train a champion (RF+Cov) and a challenger offline; register both in a
   :class:`~repro.serve.registry.ModelRegistry` (v1 champion, v2
   challenger, v1 active).
2. Replay a simulated fleet whose telemetry *rots mid-run* — a sensor
   gain/offset ramp and optionally a class-mix shift injected at a
   configurable stream offset (:class:`~repro.monitor.inject.DriftInjection`).
3. Watch everything: a :class:`~repro.monitor.drift.FleetDriftMonitor`
   taps ingress, a :class:`~repro.monitor.shadow.ShadowEvaluator` taps
   batches, an :class:`~repro.monitor.alerts.AlertManager` evaluates the
   metrics registry every tick, and a
   :class:`~repro.monitor.rollout.CanaryController` routes a hash-based
   fraction of sessions to a second (challenger) server once the shadow
   gate clears.
4. Report detection latency, the rollout decision timeline, the alert
   timeline, and which registry version ended up active.

A *good* challenger passes shadow + canary gates and is PROMOTED; a *bad*
one (trained on permuted labels) is ROLLED_BACK from shadow — both paths
are exercised by tests and the CI smoke job.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from repro.monitor.alerts import AlertEvent, AlertManager, AlertRule
from repro.monitor.drift import DriftConfig, FleetDriftMonitor
from repro.monitor.inject import DriftInjection
from repro.monitor.rollout import (
    CanaryController,
    RolloutConfig,
    RolloutDecision,
)
from repro.monitor.shadow import ShadowEvaluator
from repro.simcluster.cluster import SimulationConfig
from repro.simcluster.workload import DEFAULT_DT_S

__all__ = ["MonitorBenchConfig", "MonitorBenchReport", "run_monitor_bench"]


@dataclass(frozen=True)
class MonitorBenchConfig:
    """Everything one ``repro monitor-bench`` run needs."""

    # offline: simulation + models
    seed: int = 2022
    scale: float = 0.02
    trees: int = 30
    challenger: str = "good"            # "good" | "bad"
    model_name: str = "workload"
    registry_dir: str | None = None     # None -> fresh temp dir
    # fleet replay
    store_dir: str | None = None        # replay from a TelemetryStore;
                                        # an empty store is seeded with the
                                        # bench's simulated release first
    n_jobs: int = 24
    samples_per_tick: int = 90
    max_samples_per_job: int = 2700     # 5 min at 9 Hz
    max_batch: int = 64
    flush_deadline_s: float = 30.0
    # injected drift
    drift_start: int = 1080             # 2 min into each stream
    drift_ramp: int = 270
    drift_gain: float = 1.6
    drift_offset: float = 0.0
    drift_sensors: tuple = (0, 6)       # utilization_gpu_pct, power_draw_W
    class_shift_fraction: float = 0.0
    # drift detector (telemetry-shaped: skip the startup ramp, PH sized
    # for autocorrelated phase noise rather than iid residuals)
    detector_warmup: int = 540
    detector_ph_delta: float = 0.25
    detector_ph_threshold: float = 75.0
    # rollout gates
    canary_fraction: float = 0.4        # hash cohorts are lumpy at small n
    min_shadow_windows: int = 60
    min_canary_windows: int = 24
    min_agreement: float = 0.80
    rollback_agreement: float = 0.55
    max_latency_ratio: float = 10.0
    # alerting
    drift_alert_fraction: float = 0.75  # fleet fraction that pages

    def __post_init__(self):
        if self.challenger not in ("good", "bad"):
            raise ValueError(
                f"challenger must be 'good' or 'bad', got {self.challenger!r}"
            )

    @property
    def injection(self) -> DriftInjection:
        """The drift scenario this config injects into the replay."""
        return DriftInjection(
            start_sample=self.drift_start,
            ramp_samples=self.drift_ramp,
            gain=self.drift_gain,
            offset=self.drift_offset,
            sensors=self.drift_sensors,
            class_shift_fraction=self.class_shift_fraction,
        )


@dataclass
class MonitorBenchReport:
    """Outcome of one monitor-bench run (see :func:`run_monitor_bench`)."""

    config: MonitorBenchConfig
    state: str                          # final rollout state
    active_version: int                 # registry pointer after the run
    champion_version: int
    challenger_version: int
    decisions: list[RolloutDecision]
    alerts: list[AlertEvent]
    shadow: dict                        # ShadowEvaluator.report()
    drift_events: int
    drifted_sessions: int
    false_positive_sessions: int        # fired before the injected start
    detection_latency_samples: dict     # n/min/median/max over sessions
    n_predictions: int
    smoothed_accuracy: float
    fit_seconds: float
    wall_seconds: float
    sim_seconds: float
    champion_metrics: dict = field(default_factory=dict)
    challenger_metrics: dict = field(default_factory=dict)

    @property
    def detection_latency_s(self) -> float:
        """Median fleet detection latency in stream seconds (NaN if none)."""
        median = self.detection_latency_samples.get("median")
        if median is None:
            return float("nan")
        return median * DEFAULT_DT_S

    def format(self) -> str:
        """Operator-facing text report."""
        cfg = self.config
        lines = [
            f"challenger: {cfg.challenger} "
            f"(v{self.challenger_version} vs champion v{self.champion_version})",
            f"injected drift: gain x{cfg.drift_gain:g} offset "
            f"{cfg.drift_offset:+g} on sensors {list(cfg.drift_sensors)} "
            f"from sample {cfg.drift_start} (ramp {cfg.drift_ramp})"
            + (f", class shift {cfg.class_shift_fraction:.0%} of jobs"
               if cfg.class_shift_fraction else ""),
            "",
            f"drift: {self.drift_events} events, "
            f"{self.drifted_sessions}/{cfg.n_jobs} sessions flagged "
            f"({self.false_positive_sessions} before the injection point)",
        ]
        lat = self.detection_latency_samples
        if lat.get("n"):
            lines.append(
                f"detection latency: median {lat['median']:.0f} samples "
                f"({self.detection_latency_s:.1f}s of stream), "
                f"range [{lat['min']:.0f}, {lat['max']:.0f}] "
                f"over {lat['n']} sessions")
        else:
            lines.append("detection latency: no post-injection detections")
        shadow = self.shadow
        agreement = shadow.get("agreement", float("nan"))
        lines.append(
            f"shadow: {shadow.get('windows', 0)} windows, "
            f"agreement {agreement:.2%}" if agreement == agreement
            else f"shadow: {shadow.get('windows', 0)} windows, agreement n/a")
        for d in shadow.get("top_disagreements", [])[:3]:
            lines.append(
                f"  disagrees on champion={d['champion']} -> "
                f"challenger={d['challenger']} ({d['count']} windows)")
        lines.append("")
        lines.append("rollout timeline:")
        if not self.decisions:
            lines.append("  (no transitions — held in shadow)")
        for d in self.decisions:
            lines.append(
                f"  t={d.at_s:7.1f}s  {d.from_state} -> {d.to_state}: "
                f"{d.reason}")
        lines.append("alert timeline:")
        if not self.alerts:
            lines.append("  (no alerts)")
        for a in self.alerts:
            value = "n/a" if a.value is None else f"{a.value:g}"
            lines.append(
                f"  t={a.at_s:7.1f}s  [{a.kind:>8}] {a.rule} (value {value})")
        lines.append("")
        lines.append(
            f"final: state={self.state}, registry active version "
            f"v{self.active_version}")
        lines.append(
            f"fleet: {self.n_predictions} windows classified over "
            f"{self.sim_seconds:.0f}s simulated ({self.wall_seconds:.2f}s "
            f"wall), smoothed accuracy {self.smoothed_accuracy:.2%}")
        return "\n".join(lines)


class _PermutedLabelModel:
    """A deliberately bad challenger: the champion with scrambled labels."""

    def __init__(self, base, n_classes: int, seed: int = 0):
        self.base = base
        rng = np.random.default_rng(seed)
        self._perm = rng.permutation(n_classes)

    def predict(self, X):
        """Champion predictions pushed through a fixed label permutation."""
        return self._perm[np.asarray(self.base.predict(X)).astype(np.int64)]


def _train_models(config: MonitorBenchConfig):
    """Simulate a release, fit champion + challenger, return them + data."""
    from repro.data import build_challenge_suite
    from repro.data.labelled import build_labelled_dataset
    from repro.models import make_rf_cov
    from repro.simcluster.architectures import N_CLASSES

    sim = SimulationConfig(seed=config.seed, trials_scale=config.scale)
    labelled = build_labelled_dataset(sim)
    suite = build_challenge_suite(labelled, seed=config.seed,
                                  names=("60-random-1",))
    ds = suite["60-random-1"]
    tic = time.perf_counter()
    champion = make_rf_cov(n_estimators=config.trees, random_state=0)
    champion.fit(ds.X_train, ds.y_train)
    if config.challenger == "good":
        # An incremental update — same data and seed, 10% more trees —
        # the shape of challenger that *should* clear an agreement gate.
        # (An independently reseeded forest at bench scale agrees only
        # ~65% with the champion: genuinely a different model.)
        challenger = make_rf_cov(
            n_estimators=config.trees + max(1, config.trees // 10),
            random_state=0)
        challenger.fit(ds.X_train, ds.y_train)
    else:
        challenger = _PermutedLabelModel(champion, N_CLASSES,
                                         seed=config.seed + 1)
    fit_seconds = time.perf_counter() - tic
    return champion, challenger, ds.n_samples, labelled, fit_seconds


def run_monitor_bench(
    config: MonitorBenchConfig | None = None,
    *,
    champion=None,
    challenger=None,
    window: int = 540,
    series=None,
    labels=None,
) -> MonitorBenchReport:
    """Run the whole drift → shadow → canary → decision story once.

    With no models given, a release is simulated and champion/challenger
    are trained from it (the CLI path).  Tests inject prefitted models
    plus ``series``/``labels`` directly to skip the training cost.
    """
    config = config or MonitorBenchConfig()
    fit_seconds = 0.0
    labelled = None
    if champion is None or challenger is None:
        champion, challenger, window, labelled, fit_seconds = (
            _train_models(config))
        eligible = labelled.eligible(window)
        series = [t.series for t in eligible.trials]
        labels = [t.label for t in eligible.trials]
    store_backed = config.store_dir is not None
    if store_backed:
        # Source the replayed fleet from the telemetry store: sealed
        # trials come back as zero-copy float32 memmap views.  A fresh
        # (empty) store is seeded with this bench's simulated release.
        from repro.store import TelemetryStore

        store = TelemetryStore(config.store_dir)
        if len(store) == 0:
            if labelled is None:
                raise ValueError(
                    f"store {config.store_dir} is empty and no simulated "
                    "release is available to seed it"
                )
            store.ingest_dataset(labelled.eligible(window))
        series, labels = [], []
        for _key, info, data in store.iter_trials():
            if data.shape[0] >= window:
                series.append(data)
                labels.append(info.label)
    if series is None:
        raise ValueError("series must be provided when models are injected")

    from repro.serve import (
        FleetLoadGenerator,
        InferenceServer,
        MetricsRegistry,
        ModelRegistry,
        ServeConfig,
    )

    # Registry: champion v1 (active), challenger v2 awaiting rollout.
    registry_dir = (config.registry_dir
                    or tempfile.mkdtemp(prefix="repro-monitor-"))
    registry = ModelRegistry(registry_dir)
    champion_version = registry.register(config.model_name, champion)
    challenger_version = registry.register(config.model_name, challenger)
    registry.set_active(config.model_name, champion_version)

    # Fleet replay with the configured drift injected mid-stream.
    gen = FleetLoadGenerator(
        series, labels,
        n_jobs=config.n_jobs,
        samples_per_tick=config.samples_per_tick,
        max_samples_per_job=config.max_samples_per_job,
        seed=config.seed,
        keep_dtype=store_backed,
        drift=config.injection,
    )
    serve_config = ServeConfig(
        window=window,
        max_batch=config.max_batch,
        flush_deadline_s=config.flush_deadline_s,
    )
    metrics = MetricsRegistry()
    drift_monitor = FleetDriftMonitor(
        config=DriftConfig(
            warmup=config.detector_warmup,
            ph_delta=config.detector_ph_delta,
            ph_threshold=config.detector_ph_threshold,
        ),
        metrics=metrics,
    )
    shadow = ShadowEvaluator(
        registry.get(config.model_name, challenger_version), metrics=metrics)
    champion_server = InferenceServer(
        registry.get_active(config.model_name), serve_config,
        clock=gen.clock, metrics=metrics, taps=[drift_monitor, shadow])
    # The drift monitor taps BOTH servers: a canary-routed job keeps its
    # per-job detector (streams are continuous across the reroute), so
    # fleet drift coverage doesn't shrink when the canary opens.
    challenger_server = InferenceServer(
        registry.get(config.model_name, challenger_version), serve_config,
        clock=gen.clock, taps=[drift_monitor])

    controller = CanaryController(
        RolloutConfig(
            canary_fraction=config.canary_fraction,
            min_shadow_windows=config.min_shadow_windows,
            min_canary_windows=config.min_canary_windows,
            min_agreement=config.min_agreement,
            rollback_agreement=config.rollback_agreement,
            max_latency_ratio=config.max_latency_ratio,
            salt=str(config.seed),
        ),
        registry=registry,
        name=config.model_name,
        champion_version=champion_version,
        challenger_version=challenger_version,
        metrics=champion_server.metrics,
    )
    alert_manager = AlertManager(
        rules=[
            AlertRule(
                "fleet-drift", "monitor.drift.drifting_fraction", ">=",
                config.drift_alert_fraction, for_ticks=2,
                description="correlated input drift across the fleet"),
            AlertRule(
                "shadow-agreement-low", "monitor.shadow.agreement", "<",
                config.rollback_agreement, for_ticks=2,
                description="challenger diverging from champion"),
            AlertRule("ingress-shed", "ingress.shed", ">", 0,
                      description="overload: chunks shed at admission"),
        ],
        metrics=champion_server.metrics,
    )

    def _latency_ratio() -> float:
        champ = champion_server.metrics.histogram("batch.predict_wall_s")
        chall = champion_server.metrics.histogram(
            "monitor.shadow.predict_wall_s")
        if not champ.count or not chall.count or champ.mean <= 0:
            return float("nan")
        return chall.mean / champ.mean

    def _route(job):
        if controller.route(job) == "challenger":
            return challenger_server
        return None                      # primary (champion) server

    def _on_tick(tick, emissions):
        canary_windows = int(
            challenger_server.metrics.counter("predictions.emitted").value)
        controller.update(
            shadow_windows=shadow.n_windows,
            shadow_agreement=shadow.agreement,
            canary_windows=canary_windows,
            latency_ratio=_latency_ratio(),
            now_s=gen.clock(),
        )
        alert_manager.evaluate(now_s=gen.clock())

    report = gen.run(champion_server, route=_route, on_tick=_on_tick)

    latencies = sorted(
        drift_monitor.detection_latencies(config.drift_start).values())
    latency_stats: dict = {"n": len(latencies)}
    if latencies:
        latency_stats.update(
            min=float(latencies[0]),
            median=float(statistics.median(latencies)),
            max=float(latencies[-1]),
        )
    first = drift_monitor.first_detections()
    false_positives = sum(1 for s in first.values()
                          if s < config.drift_start)

    return MonitorBenchReport(
        config=config,
        state=controller.state,
        active_version=registry.active_version(config.model_name),
        champion_version=champion_version,
        challenger_version=challenger_version,
        decisions=list(controller.decisions),
        alerts=list(alert_manager.timeline),
        shadow=shadow.report(),
        drift_events=drift_monitor.n_events,
        drifted_sessions=len(first),
        false_positive_sessions=false_positives,
        detection_latency_samples=latency_stats,
        n_predictions=report.n_predictions,
        smoothed_accuracy=report.smoothed_accuracy(),
        fit_seconds=fit_seconds,
        wall_seconds=report.wall_seconds,
        sim_seconds=report.sim_seconds,
        champion_metrics=champion_server.metrics.as_dict(),
        challenger_metrics=challenger_server.metrics.as_dict(),
    )
