"""Loss modules."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import cross_entropy, nll_loss
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["NLLLoss", "CrossEntropyLoss"]


class NLLLoss(Module):
    """Mean negative log-likelihood over log-probabilities.

    The paper's setup: models end in log-softmax and are trained with NLL.
    """

    def __init__(self):
        super().__init__()

    def forward(self, log_probs: Tensor, targets: np.ndarray) -> Tensor:
        """Compute the layer's output for the given input."""
        return nll_loss(log_probs, targets)


class CrossEntropyLoss(Module):
    """Softmax cross-entropy from raw logits (log-softmax + NLL fused)."""

    def __init__(self):
        super().__init__()

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        """Compute the layer's output for the given input."""
        return cross_entropy(logits, targets)
