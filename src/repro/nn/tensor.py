"""Reverse-mode autograd over NumPy arrays.

A deliberately small engine — just the ops the paper's baselines need
(dense algebra, pointwise nonlinearities, reductions, shape surgery) — but
with full broadcasting support and exact gradients, property-tested against
finite differences in the test suite.

Performance-sensitive layers (LSTM, Conv1d) register as *fused* nodes: one
graph node whose backward is hand-derived, instead of hundreds of per-op
nodes per timestep (see :mod:`repro.nn.layers.rnn`).  The glue for that is
:meth:`Tensor.from_op`.

Default dtype is float32, matching the framework baselines and halving
memory traffic (the cache-effects guidance).
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode).

    Also usable as a decorator: ``@no_grad()`` wraps a function so its body
    runs with graph construction off.  Fused layers additionally branch on
    :func:`is_grad_enabled` to take allocation-free fast paths, so wrapping
    a predict loop in ``no_grad`` is what unlocks the inference fast path.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapper


def is_grad_enabled() -> bool:
    """Whether graph construction is currently enabled."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after a broadcast op."""
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """An ndarray plus gradient bookkeeping.

    Create leaf tensors with ``Tensor(data, requires_grad=True)``; every op
    returns a non-leaf tensor wired into the graph.  Call ``backward()`` on
    a scalar result to populate ``grad`` on all reachable leaves.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "_grad_buf")
    __array_priority__ = 100  # make ndarray defer to Tensor in mixed ops

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        dtype=np.float32,
        name: str | None = None,
    ):
        self.data = np.asarray(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._grad_buf: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node.

        ``backward(grad_out)`` must *accumulate* into each parent's ``grad``
        (use ``parent._accum(g)``).  When grad is globally disabled or no
        parent requires grad, a detached tensor is returned and ``backward``
        is dropped.
        """
        if not _GRAD_ENABLED:      # inference: no graph, drop backward early
            return Tensor(data, dtype=data.dtype)
        parents = tuple(parents)
        out = Tensor(data, dtype=data.dtype)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accum(self, grad: np.ndarray) -> None:
        """Accumulate a gradient contribution (used inside backward fns).

        The first contribution is *copied* into a persistent per-tensor
        buffer (``_grad_buf``, allocated once and refilled in place every
        step — ``zero_grad`` clears ``grad`` but keeps the buffer); later
        contributions add in place.  Copy-then-add produces bit-identical
        values to the historical alloc-per-accum behaviour, and because the
        engine never stores a caller's array by reference, fused layers may
        pass scratch buffers they will overwrite on the next batch.
        """
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            buf = self._grad_buf
            if buf is None or buf.shape != grad.shape:
                buf = self._grad_buf = np.empty_like(self.data)
            np.copyto(buf, grad)
            self.grad = buf
        elif self.grad is self._grad_buf:
            np.add(self.grad, grad, out=self.grad)
        else:
            # ``grad`` was assigned from outside (not our buffer): don't
            # mutate an array we may not own.
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode sweep from this tensor."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without grad requires a scalar, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))
        self._accum(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate grads/graph for memory hygiene: non-leaf
                # grads are not part of the public contract.
                if node._parents:
                    node.grad = None

    def zero_grad(self) -> None:
        """Clear accumulated gradients.

        The gradient *buffer* is kept: the next backward pass refills it in
        place instead of allocating a fresh array (see :meth:`_accum`).
        """
        self.grad = None

    # ------------------------------------------------------------------
    # Pickling (used for checkpoints and worker dispatch): the gradient
    # buffer is per-process scratch and never persisted.
    # ------------------------------------------------------------------
    def __getstate__(self):
        d = getattr(self, "__dict__", None)
        slots = {s: getattr(self, s) for s in Tensor.__slots__}
        slots["_grad_buf"] = None
        return (dict(d) if d else None, slots)

    def __setstate__(self, state):
        d, slots = state
        if d:
            self.__dict__.update(d)
        for k, v in slots.items():
            object.__setattr__(self, k, v)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the graph."""
        return Tensor(self.data, dtype=self.data.dtype)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Element dtype."""
        return self.data.dtype

    def item(self) -> float:
        """The single scalar value of this tensor."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying ndarray (no copy)."""
        return self.data

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(g):
            self._accum(g)
            other._accum(g)

        return Tensor.from_op(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g):
            self._accum(-g)

        return Tensor.from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(g):
            self._accum(g * other.data)
            other._accum(g * self.data)

        return Tensor.from_op(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(g):
            self._accum(g / other.data)
            other._accum(-g * self.data / (other.data**2))

        return Tensor.from_op(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)

        def backward(g):
            self._accum(g * exponent * self.data ** (exponent - 1.0))

        return Tensor.from_op(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._wrap(other)
        a, b = self.data, other.data

        def backward(g):
            if a.ndim == 2 and b.ndim == 2:
                self._accum(g @ b.T)
                other._accum(a.T @ g)
            else:  # batched matmul: (..., m, k) @ (..., k, n)
                self._accum(g @ np.swapaxes(b, -1, -2))
                other._accum(np.swapaxes(a, -1, -2) @ g)

        return Tensor.from_op(a @ b, (self, other), backward)

    # ------------------------------------------------------------------
    # Pointwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(g):
            self._accum(g * out_data)

        return Tensor.from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        def backward(g):
            self._accum(g / self.data)

        return Tensor.from_op(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(g):
            self._accum(g * (1.0 - out_data**2))

        return Tensor.from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            self._accum(g * out_data * (1.0 - out_data))

        return Tensor.from_op(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        """Elementwise leaky rectifier."""
        mask = self.data > 0

        def backward(g):
            self._accum(g * np.where(mask, 1.0, negative_slope))

        return Tensor.from_op(
            np.where(mask, self.data, negative_slope * self.data), (self,), backward
        )

    def relu(self) -> "Tensor":
        """Elementwise rectifier."""
        return self.leaky_relu(0.0)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over all elements or along ``axis``."""
        def backward(g):
            if axis is None:
                self._accum(np.broadcast_to(g, self.data.shape))
            else:
                g_exp = g if keepdims else np.expand_dims(g, axis)
                self._accum(np.broadcast_to(g_exp, self.data.shape))

        return Tensor.from_op(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over all elements or along ``axis``."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max along one axis; gradient flows to the (first) argmax."""
        out_data = self.data.max(axis=axis, keepdims=True)
        mask = self.data == out_data
        # Split ties evenly so gradcheck stays clean.
        mask = mask / mask.sum(axis=axis, keepdims=True)

        def backward(g):
            g_exp = g if keepdims else np.expand_dims(g, axis)
            self._accum(mask * g_exp)

        final = out_data if keepdims else out_data.squeeze(axis=axis)
        return Tensor.from_op(final, (self,), backward)

    # ------------------------------------------------------------------
    # Shape surgery
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View with a new shape (gradient reshaped back)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig = self.data.shape

        def backward(g):
            self._accum(g.reshape(orig))

        return Tensor.from_op(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed order when none given)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(g):
            self._accum(g.transpose(inverse))

        return Tensor.from_op(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        def backward(g):
            full = np.zeros_like(self.data)
            np.add.at(full, key, g)
            self._accum(full)

        return Tensor.from_op(self.data[key], (self,), backward)

    @staticmethod
    def concatenate(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Join tensors along an existing axis."""
        tensors = [Tensor._wrap(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g):
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(lo, hi)
                t._accum(g[tuple(sl)])

        return Tensor.from_op(
            np.concatenate([t.data for t in tensors], axis=axis), tensors, backward
        )

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Join tensors along a new axis."""
        tensors = [Tensor._wrap(t) for t in tensors]

        def backward(g):
            for i, t in enumerate(tensors):
                t._accum(np.take(g, i, axis=axis))

        return Tensor.from_op(
            np.stack([t.data for t in tensors], axis=axis), tensors, backward
        )
