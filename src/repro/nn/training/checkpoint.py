"""Training checkpoints: everything needed to resume bit-identically.

The paper's RNN protocol (Section V-A) trains for up to 100 epochs with
early stopping — long enough that one preemption on a shared cluster
loses the whole run.  A :class:`TrainingCheckpoint` captures the *complete*
training-loop state at an epoch boundary:

* model parameters,
* optimizer state (momentum / Adam moments / step count) and LR,
* scheduler position,
* the mini-batch **shuffle RNG state** and the state of every RNG a module
  draws from at forward time (dropout masks) — without these, a resumed
  run diverges on the first shuffled batch,
* the epoch counter, best-so-far weights/accuracy, the early-stopping
  staleness counter, and the :class:`~repro.nn.training.trainer.TrainingHistory`
  so far.

Restoring all of it makes ``fit`` → kill → ``resume`` produce a history
**bit-identical** to an uninterrupted run (wall-clock ``seconds`` aside) —
the invariant ``repro resilience-bench`` asserts.

File format (``repro-checkpoint-v1``): a pickled header dict carrying a
CRC32 over the pickled checkpoint payload, written atomically via
:func:`repro.utils.persist.atomic_write_bytes`; see README "Surviving
failures" for the field list.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.nn.module import Module
from repro.utils.persist import atomic_write_bytes

__all__ = [
    "TrainingCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "collect_forward_rng_states",
    "restore_forward_rng_states",
]

_MAGIC = "repro-checkpoint-v1"


def collect_forward_rng_states(model: Module) -> dict[str, dict]:
    """Bit-generator states of every module RNG used at forward time.

    Walks ``model.named_modules()`` and records ``module.rng`` state for
    modules that hold a :class:`numpy.random.Generator` (e.g. ``Dropout``,
    whose masks are drawn per forward pass).  Layers that used their RNG
    only at init time are captured too — harmless, and future layers with
    stochastic forwards are covered automatically.
    """
    states: dict[str, dict] = {}
    for name, module in model.named_modules():
        rng = getattr(module, "rng", None)
        if isinstance(rng, np.random.Generator):
            states[name] = rng.bit_generator.state
    return states


def restore_forward_rng_states(model: Module, states: dict[str, dict]) -> None:
    """Restore states captured by :func:`collect_forward_rng_states`.

    Raises ``KeyError`` when the model's RNG-bearing module set does not
    match the checkpoint's (a different architecture or layer count).
    """
    own = {
        name
        for name, module in model.named_modules()
        if isinstance(getattr(module, "rng", None), np.random.Generator)
    }
    if own != set(states):
        raise KeyError(
            f"RNG module mismatch: model has {sorted(own)}, "
            f"checkpoint has {sorted(states)}"
        )
    for name, module in model.named_modules():
        if name in states:
            module.rng.bit_generator.state = states[name]


@dataclass
class TrainingCheckpoint:
    """Complete training-loop state at the end of ``epoch``.

    ``history`` covers epochs ``1..epoch``; ``best_state`` /
    ``best_val_accuracy`` / ``stale`` are the early-stopping bookkeeping
    at that point; ``rng_states`` holds the NumPy bit-generator state of
    the batch-shuffle stream under ``"shuffle"`` and the per-module
    forward-time states (see :func:`collect_forward_rng_states`) under
    ``"forward"``.
    """

    epoch: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict[str, Any]
    scheduler_state: dict[str, Any] | None
    rng_states: dict[str, dict]
    history: Any  # TrainingHistory (kept loose to avoid an import cycle)
    best_val_accuracy: float
    best_state: dict[str, np.ndarray] | None
    stale: int
    repro_version: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)


def save_checkpoint(checkpoint: TrainingCheckpoint, path: str | Path) -> Path:
    """Write ``checkpoint`` to ``path`` atomically with a CRC32 checksum.

    A kill at any instant leaves either the previous checkpoint or the new
    one — never a truncated file — so the resume path always has a valid
    checkpoint no older than one save interval.
    """
    import repro

    checkpoint.repro_version = checkpoint.repro_version or repro.__version__
    body = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "magic": _MAGIC,
        "repro_version": checkpoint.repro_version,
        "crc32": zlib.crc32(body),
        "body": body,
    }
    return atomic_write_bytes(
        path, pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    )


def load_checkpoint(path: str | Path) -> TrainingCheckpoint:
    """Load and checksum-verify a checkpoint written by :func:`save_checkpoint`.

    Raises ``FileNotFoundError`` for missing files and ``ValueError`` for
    non-checkpoint or corrupt (CRC mismatch) files.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(
            f"no checkpoint at {path} (resolved: {path.resolve()})"
        )
    with path.open("rb") as handle:
        try:
            header = pickle.load(handle)
        except Exception as exc:
            raise ValueError(f"{path} is not a repro checkpoint: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a repro checkpoint")
    body = header["body"]
    stored_crc = header.get("crc32")
    if stored_crc is not None and zlib.crc32(body) != stored_crc:
        raise ValueError(
            f"{path} failed its CRC32 check: the checkpoint is corrupt"
        )
    checkpoint = pickle.loads(body)
    if not isinstance(checkpoint, TrainingCheckpoint):
        raise ValueError(f"{path} does not contain a TrainingCheckpoint")
    return checkpoint
