"""Mini-batch trainer with early stopping.

Implements the paper's protocol (Section V-A): train up to ``max_epochs``,
step a (cyclical cosine) LR schedule per epoch, early-stop when validation
accuracy has not improved for ``patience`` epochs, and report the *best*
validation accuracy ("we report the best validation accuracy in our
results").  The best-epoch weights are restored on finish.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module
from repro.nn.optim.sgd import Optimizer
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import as_generator

__all__ = ["EpochStats", "TrainingHistory", "Trainer"]


@dataclass(frozen=True)
class EpochStats:
    """Metrics recorded for one training epoch."""

    epoch: int
    train_loss: float
    val_accuracy: float
    lr: float
    seconds: float


@dataclass
class TrainingHistory:
    """Per-epoch statistics of one training run."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        """Add one entry."""
        self.epochs.append(stats)

    @property
    def best_val_accuracy(self) -> float:
        """Highest validation accuracy across epochs."""
        if not self.epochs:
            return float("nan")
        return max(e.val_accuracy for e in self.epochs)

    @property
    def best_epoch(self) -> int:
        """Epoch index (1-based) of the best validation accuracy."""
        best = max(self.epochs, key=lambda e: e.val_accuracy)
        return best.epoch

    def train_losses(self) -> np.ndarray:
        """Per-epoch mean training losses."""
        return np.array([e.train_loss for e in self.epochs])

    def val_accuracies(self) -> np.ndarray:
        """Per-epoch validation accuracies."""
        return np.array([e.val_accuracy for e in self.epochs])


class Trainer:
    """Drives one classifier model through training with early stopping.

    The model must map a ``(N, T, D)`` input tensor to ``(N, K)``
    log-probabilities, and ``loss_fn(log_probs, targets)`` must return a
    scalar :class:`Tensor`.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn,
        scheduler=None,
        batch_size: int = 32,
        max_epochs: int = 100,
        patience: int = 20,
        grad_clip: float = 5.0,
        shuffle_rng: int | np.random.Generator | None = 0,
        verbose: bool = False,
    ):
        if batch_size < 1 or max_epochs < 1 or patience < 1:
            raise ValueError("batch_size, max_epochs and patience must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.scheduler = scheduler
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.grad_clip = grad_clip
        self.shuffle_rng = as_generator(shuffle_rng)
        self.verbose = verbose

    # ------------------------------------------------------------------
    def predict_log_probs(self, X: np.ndarray) -> np.ndarray:
        """Batched inference (no graph construction)."""
        self.model.eval()
        outs = []
        with no_grad():
            for start in range(0, X.shape[0], self.batch_size):
                xb = Tensor(X[start : start + self.batch_size])
                outs.append(self.model(xb).data)
        return np.concatenate(outs, axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict class labels for X."""
        return np.argmax(self.predict_log_probs(X), axis=1)

    def evaluate_accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of current model predictions on (X, y)."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # ------------------------------------------------------------------
    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
    ) -> TrainingHistory:
        """Fit to training data; returns self."""
        X_train = np.asarray(X_train, dtype=np.float32)
        X_val = np.asarray(X_val, dtype=np.float32)
        y_train = np.asarray(y_train, dtype=np.int64)
        y_val = np.asarray(y_val, dtype=np.int64)
        n = X_train.shape[0]
        if n != y_train.shape[0]:
            raise ValueError("X_train and y_train disagree on sample count")

        history = TrainingHistory()
        best_acc = -np.inf
        best_state = None
        stale = 0

        for epoch in range(1, self.max_epochs + 1):
            tic = time.perf_counter()
            self.model.train()
            order = self.shuffle_rng.permutation(n)
            total_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb = Tensor(X_train[idx])
                log_probs = self.model(xb)
                loss = self.loss_fn(log_probs, y_train[idx])
                self.optimizer.zero_grad()
                loss.backward()
                if self.grad_clip > 0:
                    self.optimizer.clip_grad_norm(self.grad_clip)
                self.optimizer.step()
                total_loss += loss.item()
                n_batches += 1

            val_acc = self.evaluate_accuracy(X_val, y_val)
            lr = self.optimizer.lr
            if self.scheduler is not None:
                self.scheduler.step()
            stats = EpochStats(
                epoch=epoch,
                train_loss=total_loss / max(n_batches, 1),
                val_accuracy=val_acc,
                lr=lr,
                seconds=time.perf_counter() - tic,
            )
            history.append(stats)
            if self.verbose:
                print(
                    f"[epoch {epoch:3d}] loss={stats.train_loss:.4f} "
                    f"val_acc={val_acc:.4f} lr={lr:.2e} ({stats.seconds:.1f}s)"
                )

            if val_acc > best_acc:
                best_acc = val_acc
                best_state = self.model.state_dict()
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history
