"""Mini-batch trainer with early stopping and checkpoint/resume.

Implements the paper's protocol (Section V-A): train up to ``max_epochs``,
step a (cyclical cosine) LR schedule per epoch, early-stop when validation
accuracy has not improved for ``patience`` epochs, and report the *best*
validation accuracy ("we report the best validation accuracy in our
results").  The best-epoch weights are restored on finish.

Long runs on shared clusters get preempted; ``fit`` therefore optionally
writes a crash-safe :class:`~repro.nn.training.checkpoint.TrainingCheckpoint`
every ``checkpoint_every`` epochs, and :meth:`Trainer.resume` continues a
killed run to a history **bit-identical** (wall-clock timing aside) to an
uninterrupted one — every RNG consumed by the loop is captured and
restored, so the first post-resume shuffle and dropout mask match exactly.

With ``n_jobs > 1`` (or an explicit ``shard_size``) each mini-batch is
split into fixed-size shards whose gradients are computed by the
shared-memory worker pool in :mod:`repro.nn.training.parallel` and reduced
in shard order; the loss/accuracy trajectory then depends only on
``shard_size``, never on ``n_jobs`` — ``n_jobs=4`` reproduces ``n_jobs=1``
bit-for-bit, and checkpoint/resume keeps working unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.nn.module import Module
from repro.nn.optim.sgd import Optimizer
from repro.nn.tensor import Tensor, no_grad
from repro.nn.training.checkpoint import (
    TrainingCheckpoint,
    collect_forward_rng_states,
    load_checkpoint,
    restore_forward_rng_states,
    save_checkpoint,
)
from repro.nn.training.parallel import (
    GradientWorkerPool,
    flatten_grads,
    param_layout,
    reduce_flat_grads,
    scatter_flat_grads,
    shard_rngs,
)
from repro.resilience.faults import fault_point
from repro.utils.rng import as_generator

__all__ = ["EpochStats", "TrainingHistory", "Trainer"]


@dataclass(frozen=True)
class EpochStats:
    """Metrics recorded for one training epoch."""

    epoch: int
    train_loss: float
    val_accuracy: float
    lr: float
    seconds: float


@dataclass
class TrainingHistory:
    """Per-epoch statistics of one training run."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        """Add one entry."""
        self.epochs.append(stats)

    @property
    def best_val_accuracy(self) -> float:
        """Highest validation accuracy across epochs (NaN when empty)."""
        if not self.epochs:
            return float("nan")
        return max(e.val_accuracy for e in self.epochs)

    @property
    def best_epoch(self) -> int:
        """Epoch index (1-based) of the best validation accuracy.

        Returns 0 for an empty history — the same "no epochs yet"
        sentinel convention as :attr:`best_val_accuracy` returning NaN.
        """
        if not self.epochs:
            return 0
        best = max(self.epochs, key=lambda e: e.val_accuracy)
        return best.epoch

    def train_losses(self) -> np.ndarray:
        """Per-epoch mean training losses."""
        return np.array([e.train_loss for e in self.epochs])

    def val_accuracies(self) -> np.ndarray:
        """Per-epoch validation accuracies."""
        return np.array([e.val_accuracy for e in self.epochs])

    def matches(self, other: "TrainingHistory", *, ignore_timing: bool = True) -> bool:
        """Bit-exact equality with ``other``, timing excluded by default.

        Two histories "match" when every epoch's loss, validation accuracy
        and LR are *bit-identical* floats — the invariant a resumed run
        must satisfy against its uninterrupted twin.  Wall-clock
        ``seconds`` necessarily differ across runs and are ignored unless
        ``ignore_timing=False``.
        """
        if len(self.epochs) != len(other.epochs):
            return False
        for a, b in zip(self.epochs, other.epochs):
            if (a.epoch, a.train_loss, a.val_accuracy, a.lr) != (
                b.epoch, b.train_loss, b.val_accuracy, b.lr
            ):
                return False
            if not ignore_timing and a.seconds != b.seconds:
                return False
        return True


class Trainer:
    """Drives one classifier model through training with early stopping.

    The model must map a ``(N, T, D)`` input tensor to ``(N, K)``
    log-probabilities, and ``loss_fn(log_probs, targets)`` must return a
    scalar :class:`Tensor`.

    Data-parallel training
    ----------------------
    ``n_jobs > 1`` computes shard gradients on persistent worker processes
    over shared memory (see :mod:`repro.nn.training.parallel`); the
    optimizer step stays in the parent.  Each batch is cut into
    ``shard_size``-sample shards (default ``ceil(batch_size / n_jobs)``),
    the shard losses ``backward(n_s / B)``-scale their gradients, and the
    parent reduces shard gradients **in shard order** with serial float32
    adds — so the trajectory is a pure function of ``shard_size`` and
    reproduces bit-for-bit at any ``n_jobs`` (pin ``shard_size`` when
    comparing worker counts).  ``n_jobs=1`` with an explicit ``shard_size``
    runs the identical sharded computation in-process.  For a
    dropout-free model, one shard per batch (``shard_size >= batch_size``)
    is bit-identical to the classic unsharded loop; stochastic layers draw
    per-shard streams derived from their own generators, so sharded runs
    remain checkpoint/resume-exact but use different masks than unsharded
    ones.  Call :meth:`close` (or use the trainer as a context manager)
    to stop the worker pool.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn,
        scheduler=None,
        batch_size: int = 32,
        max_epochs: int = 100,
        patience: int = 20,
        grad_clip: float = 5.0,
        shuffle_rng: int | np.random.Generator | None = 0,
        verbose: bool = False,
        n_jobs: int = 1,
        shard_size: int | None = None,
        worker_faults: list | None = None,
    ):
        if batch_size < 1 or max_epochs < 1 or patience < 1:
            raise ValueError("batch_size, max_epochs and patience must be >= 1")
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.scheduler = scheduler
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.grad_clip = grad_clip
        self.shuffle_rng = as_generator(shuffle_rng)
        self.verbose = verbose
        self.n_jobs = n_jobs
        self.shard_size = shard_size
        self.worker_faults = list(worker_faults) if worker_faults else None
        self._pool: GradientWorkerPool | None = None

    # ------------------------------------------------------------------
    @property
    def _sharded(self) -> bool:
        return self.n_jobs > 1 or self.shard_size is not None

    def _effective_shard_size(self) -> int:
        if self.shard_size is not None:
            return self.shard_size
        return -(-self.batch_size // self.n_jobs)

    def _ensure_pool(self) -> GradientWorkerPool:
        if self._pool is None:
            max_shards = -(-self.batch_size // self._effective_shard_size())
            self._pool = GradientWorkerPool(
                self.model,
                self.loss_fn,
                n_workers=self.n_jobs,
                max_shards=max_shards,
                worker_faults=self.worker_faults,
            )
        return self._pool

    def close(self) -> None:
        """Stop the gradient worker pool (no-op when none is running)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "Trainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def predict_log_probs(self, X: np.ndarray) -> np.ndarray:
        """Batched inference (no graph construction)."""
        self.model.eval()
        outs = []
        with no_grad():
            for start in range(0, X.shape[0], self.batch_size):
                xb = Tensor(X[start : start + self.batch_size])
                outs.append(self.model(xb).data)
        return np.concatenate(outs, axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict class labels for X."""
        return np.argmax(self.predict_log_probs(X), axis=1)

    def evaluate_accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of current model predictions on (X, y).

        Streams through the no-grad fast path in ``batch_size`` chunks,
        accumulating correct counts — never materializing the full
        log-prob matrix.  The chunk boundaries match :meth:`predict`, and
        ``correct / N`` (exact integer sum, one float64 division) is
        bit-identical to the historical ``np.mean`` over concatenated
        predictions.
        """
        y = np.asarray(y)
        n = X.shape[0]
        if n == 0:
            return float("nan")  # matches np.mean of an empty comparison
        self.model.eval()
        correct = 0
        with no_grad():
            for start in range(0, n, self.batch_size):
                xb = Tensor(X[start : start + self.batch_size])
                pred = np.argmax(self.model(xb).data, axis=1)
                correct += int(np.sum(pred == y[start : start + self.batch_size]))
        return correct / n

    # ------------------------------------------------------------------
    @staticmethod
    def _as_arrays(X_train, y_train, X_val, y_val):
        """Normalize dtypes and validate sample counts."""
        X_train = np.asarray(X_train, dtype=np.float32)
        X_val = np.asarray(X_val, dtype=np.float32)
        y_train = np.asarray(y_train, dtype=np.int64)
        y_val = np.asarray(y_val, dtype=np.int64)
        if X_train.shape[0] != y_train.shape[0]:
            raise ValueError("X_train and y_train disagree on sample count")
        return X_train, y_train, X_val, y_val

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        *,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 1,
    ) -> TrainingHistory:
        """Train from scratch; returns the per-epoch history.

        With ``checkpoint_path`` set, a crash-safe checkpoint is written
        at the end of every ``checkpoint_every``-th epoch (and at the
        stopping epoch); a killed run restarts from the latest one via
        :meth:`resume`.  Checkpointing consumes no randomness, so the
        history is bit-identical with or without it.
        """
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        X_train, y_train, X_val, y_val = self._as_arrays(
            X_train, y_train, X_val, y_val
        )
        return self._train_loop(
            X_train, y_train, X_val, y_val,
            history=TrainingHistory(),
            start_epoch=1,
            best_acc=-np.inf,
            best_state=None,
            stale=0,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )

    def resume(
        self,
        checkpoint_path: str | Path,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        *,
        checkpoint_every: int = 1,
        keep_checkpointing: bool = True,
    ) -> TrainingHistory:
        """Continue a killed run from ``checkpoint_path``.

        The trainer must be constructed exactly as for the original run
        (same model architecture, optimizer and scheduler types, batch
        size, patience, ...); all mutable state — parameters, optimizer
        moments, schedule position, shuffle and dropout RNG streams,
        early-stopping bookkeeping — is restored from the checkpoint.  The
        returned history covers the *whole* run (checkpointed epochs plus
        resumed ones) and is bit-identical to an uninterrupted ``fit``.

        With ``keep_checkpointing`` (default) the resumed run continues to
        checkpoint to the same path, so it survives *another* preemption.
        """
        checkpoint = load_checkpoint(checkpoint_path)
        X_train, y_train, X_val, y_val = self._as_arrays(
            X_train, y_train, X_val, y_val
        )
        self.model.load_state_dict(checkpoint.model_state)
        self.optimizer.load_state_dict(checkpoint.optimizer_state)
        if self.scheduler is not None and checkpoint.scheduler_state is not None:
            self.scheduler.load_state_dict(checkpoint.scheduler_state)
        self.shuffle_rng.bit_generator.state = checkpoint.rng_states["shuffle"]
        restore_forward_rng_states(self.model, checkpoint.rng_states["forward"])
        return self._train_loop(
            X_train, y_train, X_val, y_val,
            history=checkpoint.history,
            start_epoch=checkpoint.epoch + 1,
            best_acc=checkpoint.best_val_accuracy,
            best_state=checkpoint.best_state,
            stale=checkpoint.stale,
            checkpoint_path=Path(checkpoint_path) if keep_checkpointing else None,
            checkpoint_every=checkpoint_every,
        )

    # ------------------------------------------------------------------
    def _train_loop(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        *,
        history: TrainingHistory,
        start_epoch: int,
        best_acc: float,
        best_state: dict | None,
        stale: int,
        checkpoint_path: str | Path | None,
        checkpoint_every: int,
    ) -> TrainingHistory:
        """The epoch loop shared by :meth:`fit` and :meth:`resume`."""
        n = X_train.shape[0]
        ctx = None
        if self._sharded:
            ctx = self._sharded_context(X_train, y_train)
        for epoch in range(start_epoch, self.max_epochs + 1):
            if stale >= self.patience:  # resumed past the stopping epoch
                break
            tic = time.perf_counter()
            self.model.train()
            order = self.shuffle_rng.permutation(n)
            total_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                fault_point("trainer.mid_epoch")
                idx = order[start : start + self.batch_size]
                if ctx is not None:
                    total_loss += self._sharded_step(
                        X_train, y_train, idx, ctx
                    )
                    n_batches += 1
                    continue
                xb = Tensor(X_train[idx])
                log_probs = self.model(xb)
                loss = self.loss_fn(log_probs, y_train[idx])
                self.optimizer.zero_grad()
                loss.backward()
                if self.grad_clip > 0:
                    self.optimizer.clip_grad_norm(self.grad_clip)
                self.optimizer.step()
                total_loss += loss.item()
                n_batches += 1

            val_acc = self.evaluate_accuracy(X_val, y_val)
            lr = self.optimizer.lr
            if self.scheduler is not None:
                self.scheduler.step()
            stats = EpochStats(
                epoch=epoch,
                train_loss=total_loss / max(n_batches, 1),
                val_accuracy=val_acc,
                lr=lr,
                seconds=time.perf_counter() - tic,
            )
            history.append(stats)
            if self.verbose:
                print(
                    f"[epoch {epoch:3d}] loss={stats.train_loss:.4f} "
                    f"val_acc={val_acc:.4f} lr={lr:.2e} ({stats.seconds:.1f}s)"
                )

            if val_acc > best_acc:
                best_acc = val_acc
                best_state = self.model.state_dict()
                stale = 0
            else:
                stale += 1

            stopping = stale >= self.patience or epoch == self.max_epochs
            if checkpoint_path is not None and (
                epoch % checkpoint_every == 0 or stopping
            ):
                self._write_checkpoint(
                    checkpoint_path, epoch, history, best_acc, best_state, stale
                )
            fault_point("trainer.epoch_end")
            if stale >= self.patience:
                break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    # ------------------------------------------------------------------
    def _sharded_context(self, X_train: np.ndarray, y_train: np.ndarray) -> dict:
        """Per-``fit`` state for the sharded path (pool, layout, buffers)."""
        params = list(self.model.parameters())
        layout, n_values = param_layout(params)
        rng_mods = [
            (name, m)
            for name, m in self.model.named_modules()
            if isinstance(getattr(m, "rng", None), np.random.Generator)
        ]
        max_shards = -(-self.batch_size // self._effective_shard_size())
        if self.n_jobs > 1:
            pool = self._ensure_pool()
            pool.set_data(X_train, y_train)
            gbuf = pool.grads
        else:
            pool = None
            gbuf = np.empty((max_shards, n_values), dtype=np.float32)
        return {
            "params": params,
            "layout": layout,
            "rng_mods": rng_mods,
            "pool": pool,
            "gbuf": gbuf,
            "acc": np.empty(n_values, dtype=np.float32),
        }

    def _sharded_step(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        idx: np.ndarray,
        ctx: dict,
    ) -> float:
        """One sharded batch: shard gradients, ordered reduce, one step.

        Returns the batch loss ``Σ (n_s / B) · loss_s`` accumulated with
        serial Python-float adds in shard order — the same association at
        any worker count.
        """
        batch = len(idx)
        ss = self._effective_shard_size()
        shards = [idx[b : b + ss] for b in range(0, batch, ss)]
        weights = [np.float32(len(s) / batch) for s in shards]
        # One fresh seed per stochastic module per batch, drawn from the
        # module's own (checkpointed) generator in the parent; shard k
        # derives SeedSequence([s0, k]) wherever it executes.
        s0s = {
            name: int(m.rng.integers(2**63)) for name, m in ctx["rng_mods"]
        }
        if ctx["pool"] is not None:
            losses = ctx["pool"].run_batch(shards, weights, s0s)
        else:
            losses = self._run_shards_local(
                X_train, y_train, shards, weights, s0s, ctx
            )
        self.model.zero_grad()
        reduce_flat_grads(ctx["gbuf"], len(shards), ctx["acc"])
        scatter_flat_grads(ctx["params"], ctx["layout"], ctx["acc"])
        if self.grad_clip > 0:
            self.optimizer.clip_grad_norm(self.grad_clip)
        self.optimizer.step()
        batch_loss = 0.0
        for weight, loss in zip(weights, losses):
            batch_loss += float(weight) * loss
        return batch_loss

    def _run_shards_local(
        self, X, y, shards, weights, s0s, ctx
    ) -> list[float]:
        """In-process shard execution — the bit-parity twin of a worker."""
        rng_mods = ctx["rng_mods"]
        originals = [m.rng for _, m in rng_mods]
        losses = []
        try:
            for s, (idx, weight) in enumerate(zip(shards, weights)):
                rngs = shard_rngs(s0s, s)
                for name, m in rng_mods:
                    m.rng = rngs[name]
                self.model.zero_grad()
                xb = Tensor(X[idx])
                loss = self.loss_fn(self.model(xb), y[idx])
                loss.backward(weight)
                flatten_grads(ctx["params"], ctx["layout"], ctx["gbuf"][s])
                losses.append(loss.item())
        finally:
            for (_, m), rng in zip(rng_mods, originals):
                m.rng = rng
        return losses

    def _write_checkpoint(
        self,
        path: str | Path,
        epoch: int,
        history: TrainingHistory,
        best_acc: float,
        best_state: dict | None,
        stale: int,
    ) -> None:
        """Capture current loop state and persist it atomically."""
        save_checkpoint(
            TrainingCheckpoint(
                epoch=epoch,
                model_state=self.model.state_dict(),
                optimizer_state=self.optimizer.state_dict(),
                scheduler_state=(
                    self.scheduler.state_dict() if self.scheduler is not None else None
                ),
                rng_states={
                    "shuffle": self.shuffle_rng.bit_generator.state,
                    "forward": collect_forward_rng_states(self.model),
                },
                history=history,
                best_val_accuracy=best_acc,
                best_state=best_state,
                stale=stale,
            ),
            path,
        )
