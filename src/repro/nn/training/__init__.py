"""Training loop utilities."""

from repro.nn.training.trainer import EpochStats, Trainer, TrainingHistory

__all__ = ["Trainer", "TrainingHistory", "EpochStats"]
