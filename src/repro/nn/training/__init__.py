"""Training loop utilities: trainer, history, checkpoint/resume."""

from repro.nn.training.checkpoint import (
    TrainingCheckpoint,
    collect_forward_rng_states,
    load_checkpoint,
    restore_forward_rng_states,
    save_checkpoint,
)
from repro.nn.training.parallel import GradientWorkerPool
from repro.nn.training.trainer import EpochStats, Trainer, TrainingHistory

__all__ = [
    "Trainer",
    "TrainingHistory",
    "EpochStats",
    "GradientWorkerPool",
    "TrainingCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "collect_forward_rng_states",
    "restore_forward_rng_states",
]
