"""Shared-memory data-parallel gradient workers, bit-identical to serial.

The :class:`~repro.nn.training.trainer.Trainer` can split every shuffled
mini-batch into fixed-size *shards* and compute shard gradients on a pool
of persistent worker processes.  The design goal is determinism first:

* **Fixed shard decomposition.**  Shard boundaries depend only on
  ``shard_size`` and the batch — never on the worker count — so the same
  shards exist at ``n_jobs=1`` and ``n_jobs=8``.
* **Fixed reduction order.**  The parent reduces shard gradients *in shard
  order* with plain float32 ``np.add`` (:func:`reduce_flat_grads`) and the
  serial path runs the identical code over the identical per-shard flat
  vectors, so loss/accuracy trajectories and checkpoints are bit-identical
  at any ``n_jobs``.
* **Derived per-shard RNG.**  Stochastic layers (dropout) draw from a
  per-batch, per-shard stream seeded as ``SeedSequence([s0, shard_idx])``
  where ``s0`` is drawn once per batch from the module's own generator in
  the *parent* — so mask streams do not depend on which process computes a
  shard, and the parent generators remain the single checkpointable truth.

Data flows through :class:`~repro.parallel.shared.SharedArray` blocks:
the training set (X, y) is shared once per ``fit``, current parameters are
broadcast through a flat parameter block before every batch, and workers
write shard gradients into their shard's row of a shared ``(max_shards,
P)`` gradient block — no gradient bytes ever cross a pipe.

Workers survive across batches, epochs, and successive ``fit`` calls.  A
worker that dies mid-batch (preemption, OOM kill — rehearsed via the
``train.worker.crash`` fault point) is respawned and its unfinished shards
are redispatched; because shard slots and reduction order are fixed, the
recovered batch is bit-identical to an undisturbed one.
"""

from __future__ import annotations

import os
import pickle
import multiprocessing as mp
import multiprocessing.connection
from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.parallel.shared import SharedArray, shared_from_array
from repro.resilience.faults import FaultInjector, FaultSpec, fault_point, install

__all__ = [
    "GradientWorkerPool",
    "flatten_grads",
    "param_layout",
    "reduce_flat_grads",
    "scatter_flat_grads",
]


# ----------------------------------------------------------------------
# Flat parameter/gradient packing
# ----------------------------------------------------------------------
def param_layout(params: list[Parameter]) -> tuple[list[tuple[int, int]], int]:
    """``[(start, stop), ...]`` slices into a flat float32 vector.

    The order is the model's ``parameters()`` traversal order, which is
    deterministic and identical in the parent and every worker replica.
    """
    layout: list[tuple[int, int]] = []
    offset = 0
    for p in params:
        if p.data.dtype != np.float32 or not p.data.flags["C_CONTIGUOUS"]:
            raise ValueError(
                f"data-parallel training requires contiguous float32 "
                f"parameters, got {p.data.dtype} for {p.name!r}"
            )
        layout.append((offset, offset + p.data.size))
        offset += p.data.size
    return layout, offset


def store_flat_params(params, layout, flat: np.ndarray) -> None:
    """Pack current parameter values into ``flat`` (parent → shared block)."""
    for p, (a, b) in zip(params, layout):
        np.copyto(flat[a:b], p.data.reshape(-1))


def load_flat_params(params, layout, flat: np.ndarray) -> None:
    """Load parameter values from ``flat`` in place (shared block → worker)."""
    for p, (a, b) in zip(params, layout):
        np.copyto(p.data.reshape(-1), flat[a:b])


def flatten_grads(params, layout, out: np.ndarray) -> None:
    """Pack accumulated gradients into ``out``; absent grads pack as zero."""
    for p, (a, b) in zip(params, layout):
        if p.requires_grad and p.grad is not None:
            np.copyto(out[a:b], p.grad.reshape(-1))
        else:
            out[a:b] = 0.0


def reduce_flat_grads(gblock: np.ndarray, n_shards: int, out: np.ndarray) -> None:
    """Serial float32 reduction over shard rows, **in shard order**.

    ``out = ((g_0 + g_1) + g_2) + ...`` with one ``np.add`` per shard —
    the association every path (serial and parallel, any worker count)
    must share for bit-identical trajectories.
    """
    np.copyto(out, gblock[0])
    for s in range(1, n_shards):
        np.add(out, gblock[s], out=out)


def scatter_flat_grads(params, layout, flat: np.ndarray) -> None:
    """Hand the reduced flat gradient to each parameter via ``_accum``.

    ``_accum`` copies into the parameter's own grad buffer, so ``flat``
    (a reduction buffer reused every batch) is never aliased.
    """
    for p, (a, b) in zip(params, layout):
        if p.requires_grad:
            p._accum(flat[a:b].reshape(p.data.shape))


def shard_rngs(s0s: dict[str, int], shard_idx: int) -> dict[str, np.random.Generator]:
    """Derived per-shard generators: ``SeedSequence([s0, shard_idx])``.

    Identical in the parent's serial path and in any worker, for any
    assignment of shards to workers.
    """
    return {
        name: np.random.default_rng(np.random.SeedSequence([s0, shard_idx]))
        for name, s0 in s0s.items()
    }


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn, payload: bytes) -> None:
    """Persistent gradient worker: attach shared blocks, serve batches."""
    cfg = pickle.loads(payload)
    if cfg["faults"]:
        install(FaultInjector(list(cfg["faults"])))
    model: Module = cfg["model"]
    loss_fn = cfg["loss_fn"]
    params = list(model.parameters())
    layout, _ = param_layout(params)
    pblock = cfg["pblock"].attach()
    gblock = cfg["gblock"].attach()
    modules = dict(model.named_modules())
    X = y = None
    model.train()
    while True:
        msg = conn.recv()
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "data":
            X = msg[1].attach()
            y = msg[2].attach()
            continue
        _, assignments, s0s = msg  # ("batch", [(shard, idx, weight)], s0s)
        load_flat_params(params, layout, pblock)
        for shard_idx, idx, weight in assignments:
            fault_point("train.worker.crash")
            for name, rng in shard_rngs(s0s, shard_idx).items():
                modules[name].rng = rng
            model.zero_grad()
            xb = Tensor(np.asarray(X[idx]))
            loss = loss_fn(model(xb), np.asarray(y[idx]))
            loss.backward(weight)
            flatten_grads(params, layout, gblock[shard_idx])
            conn.send(("done", shard_idx, loss.item()))


@dataclass
class _Worker:
    proc: mp.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection


class GradientWorkerPool:
    """Persistent spawn-context workers computing shard gradients.

    The pool owns three shared-memory regions: a flat parameter block
    (parent writes before each batch, workers read), a ``(max_shards, P)``
    gradient block (workers write their shard rows, parent reduces), and —
    per :meth:`set_data` call — the training arrays.  Workers are spawned
    once and survive across epochs and ``fit`` calls; :meth:`close`
    terminates them and unlinks every block.

    ``worker_faults`` installs the given
    :class:`~repro.resilience.faults.FaultSpec` s in every worker (the
    ``train.worker.crash`` point fires at the top of each shard) — the
    hook crash-safety tests use to SIGKILL a worker mid-epoch.
    """

    def __init__(
        self,
        model: Module,
        loss_fn,
        n_workers: int,
        max_shards: int,
        worker_faults: list[FaultSpec] | None = None,
        max_worker_restarts: int = 3,
    ):
        if n_workers < 1 or max_shards < 1:
            raise ValueError("n_workers and max_shards must be >= 1")
        self._params = list(model.parameters())
        self._layout, n_values = param_layout(self._params)
        if n_values == 0:
            raise ValueError("model has no parameters")
        self._pshared = SharedArray((n_values,), np.float32)
        self._gshared = SharedArray((max_shards, n_values), np.float32)
        self.max_worker_restarts = max_worker_restarts
        self._restarts = 0
        self._ctx = mp.get_context("spawn")  # fork is unsafe with threaded BLAS
        cfg = {
            "model": model,
            "loss_fn": loss_fn,
            "pblock": self._pshared.handle(),
            "gblock": self._gshared.handle(),
            "faults": list(worker_faults or []),
        }
        self._payload = pickle.dumps(cfg, protocol=pickle.HIGHEST_PROTOCOL)
        # Respawned replacements never re-arm the injected faults — the
        # spec rehearses *a* crash, not a deterministic crash loop.
        cfg["faults"] = []
        self._respawn_payload = pickle.dumps(cfg, protocol=pickle.HIGHEST_PROTOCOL)
        self._data_shared: list[SharedArray] = []
        self._data_msg = None
        self._workers = [self._spawn() for _ in range(n_workers)]
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        """Number of (live) worker slots."""
        return len(self._workers)

    @property
    def grads(self) -> np.ndarray:
        """The shared ``(max_shards, P)`` gradient block."""
        return self._gshared.array

    def _spawn(self, respawn: bool = False) -> _Worker:
        payload = self._respawn_payload if respawn else self._payload
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn, payload), daemon=True
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc=proc, conn=parent_conn)
        if self._data_msg is not None:
            worker.conn.send(self._data_msg)
        return worker

    def set_data(self, X: np.ndarray, y: np.ndarray) -> None:
        """Share a training set with every worker (one copy, zero-copy use)."""
        for old in self._data_shared:
            old.close(unlink=True)
        self._data_shared = [shared_from_array(X), shared_from_array(y)]
        self._data_msg = (
            "data",
            self._data_shared[0].handle(),
            self._data_shared[1].handle(),
        )
        for worker in self._workers:
            worker.conn.send(self._data_msg)

    # ------------------------------------------------------------------
    def run_batch(
        self,
        shards: list[np.ndarray],
        weights: list[np.float32],
        s0s: dict[str, int],
    ) -> list[float]:
        """Compute all shard gradients for one batch; returns shard losses.

        Shard ``s`` goes to worker ``s % n_workers``.  Gradients land in
        ``self.grads[s]``; the returned losses are in shard order.  Dead
        workers are respawned and their unfinished shards redispatched —
        the batch result is unchanged because every shard writes its own
        slot and the caller reduces in shard order.
        """
        if len(shards) > self._gshared.array.shape[0]:
            raise ValueError(
                f"{len(shards)} shards exceed the pool's max_shards "
                f"{self._gshared.array.shape[0]}"
            )
        store_flat_params(self._params, self._layout, self._pshared.array)
        n_workers = len(self._workers)
        # Which worker computes a shard never affects the result (fixed
        # slots, fixed reduction order), so scheduling is free to adapt:
        # spread shards over at most core-count workers.  Gradient shards
        # are pure CPU — oversubscribing cores would only interleave the
        # workers' multi-MB gradient scratch through the cache, so on a
        # machine with fewer cores than workers the surplus workers stay
        # warm and idle while a core-sized active set runs cache-hot.
        active = max(1, min(n_workers, os.cpu_count() or 1))
        queues: dict[int, list] = {}
        for s, (idx, weight) in enumerate(zip(shards, weights)):
            queues.setdefault(s % active, []).append((s, idx, weight))
        max_inflight = active
        inflight: set[int] = set()
        losses: dict[int, float] = {}

        def _dispatch() -> None:
            for w in sorted(queues):
                if len(inflight) >= max_inflight:
                    return
                if w not in inflight and queues[w]:
                    self._workers[w].conn.send(
                        ("batch", [queues[w][0]], s0s))
                    inflight.add(w)

        _dispatch()
        while queues:
            # Wake on the FIRST pipe with traffic (or EOF from a dead
            # worker) instead of polling each in turn — per-worker
            # timeouts serialize badly when several workers time-slice
            # few cores.
            by_conn = {self._workers[w].conn: w for w in inflight}
            ready = mp.connection.wait(list(by_conn), timeout=1.0)
            for conn in ready or list(by_conn):
                w = by_conn[conn]
                alive = True
                try:
                    # Drain everything available; a dead worker's pipe may
                    # still hold results it sent before dying.
                    while conn.poll(0):
                        _kind, s, loss = conn.recv()
                        losses[s] = loss
                except (EOFError, OSError):
                    alive = False
                if alive and not ready:
                    alive = self._workers[w].proc.is_alive()
                before = len(queues[w])
                queues[w] = [a for a in queues[w] if a[0] not in losses]
                finished_some = len(queues[w]) < before
                if not alive:
                    inflight.discard(w)
                    self._restarts += 1
                    if self._restarts > self.max_worker_restarts:
                        raise RuntimeError(
                            f"gradient worker died {self._restarts} times; "
                            f"giving up (max_worker_restarts="
                            f"{self.max_worker_restarts})"
                        )
                    self._workers[w].conn.close()
                    self._workers[w] = self._spawn(respawn=True)
                if not queues[w]:
                    del queues[w]
                    inflight.discard(w)
                elif finished_some:
                    # Head shard done, more queued: free the slot so
                    # _dispatch can hand out the next one.
                    inflight.discard(w)
            _dispatch()
        return [losses[s] for s in range(len(shards))]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and unlink all shared blocks."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=5)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=5)
            worker.conn.close()
        for shared in (self._pshared, self._gshared, *self._data_shared):
            shared.close(unlink=True)
        self._data_shared = []

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
