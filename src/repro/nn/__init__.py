"""From-scratch neural-network stack (NumPy autograd).

Replaces the PyTorch dependency of the paper's RNN baselines: a reverse-mode
autograd engine (:mod:`repro.nn.tensor`), modules and layers (Linear, LSTM /
BiLSTM with fused BPTT, Conv1d, MaxPool1d, Dropout, LeakyReLU), losses,
optimizers (SGD, Adam) with the paper's cyclical cosine LR schedule, and a
Trainer implementing early stopping on validation accuracy.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.functional import cross_entropy, dropout, log_softmax, nll_loss, softmax
from repro.nn.layers import LSTM, BiLSTM, Conv1d, Dropout, LeakyReLU, Linear, MaxPool1d, ReLU, Tanh
from repro.nn.loss import CrossEntropyLoss, NLLLoss
from repro.nn.optim import Adam, ConstantLR, CyclicCosineLR, SGD, StepLR
from repro.nn.training import Trainer, TrainingHistory

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Parameter",
    "Sequential",
    "log_softmax",
    "softmax",
    "nll_loss",
    "cross_entropy",
    "dropout",
    "Linear",
    "LeakyReLU",
    "ReLU",
    "Tanh",
    "Dropout",
    "Conv1d",
    "MaxPool1d",
    "LSTM",
    "BiLSTM",
    "NLLLoss",
    "CrossEntropyLoss",
    "SGD",
    "Adam",
    "CyclicCosineLR",
    "ConstantLR",
    "StepLR",
    "Trainer",
    "TrainingHistory",
]
