"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "uniform_fan_in", "orthogonal"]


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot uniform: U(±gain·√(6/(fan_in+fan_out)))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.0
) -> np.ndarray:
    """He uniform for (leaky-)ReLU fan-in."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_fan_in(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """PyTorch's LSTM default: U(±1/√hidden) applied to every weight/bias."""
    fan_in, _ = _fans(shape)
    bound = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal init for recurrent weights (stabilizes long sequences)."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal init needs a 2-D shape, got {shape}")
    a = rng.normal(size=(max(shape), min(shape)))
    q, _r = np.linalg.qr(a)
    q = q[: shape[0], : shape[1]] if q.shape != shape else q
    if q.shape != shape:
        q = q.T
    return q.astype(np.float32)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        # Linear weights are (in_features, out_features).
        return shape[0], shape[1]
    # Conv weights are (out_channels, in_channels, *kernel).
    receptive = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
