"""Optimizers and learning-rate schedulers."""

from repro.nn.optim.sgd import SGD
from repro.nn.optim.adam import Adam
from repro.nn.optim.schedulers import CyclicCosineLR, ConstantLR, StepLR

__all__ = ["SGD", "Adam", "CyclicCosineLR", "ConstantLR", "StepLR"]
