"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD"]


class Optimizer:
    """Base optimizer: parameter registration and grad clearing."""

    def __init__(self, params, lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got no parameters")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one optimization update from accumulated gradients."""
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float(np.sum(p.grad.astype(np.float64) ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm > 0:
            scale = max_norm / (norm + 1e-12)
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad * scale
        return norm


class SGD(Optimizer):
    """Classic SGD: ``v ← μv + g``, ``w ← w − lr·v`` (plus weight decay)."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one optimization update from accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g
