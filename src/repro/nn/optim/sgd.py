"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD"]


class Optimizer:
    """Base optimizer: parameter registration and grad clearing."""

    def __init__(self, params, lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got no parameters")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one optimization update from accumulated gradients."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Copy of the optimizer's mutable state (for checkpointing).

        Subclasses extend this with their moment buffers; parameter
        *values* are not included (they live in the model's state dict).
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict`.

        ``lr`` is restored with its exact scalar type: a schedule-set
        ``np.float64`` promotes ``lr * grad`` to float64 while a Python
        float keeps float32 (NEP 50 weak promotion), so coercing here
        would change the first post-resume update by one ulp and break
        bit-identical resume.
        """
        self.lr = state["lr"]

    def clip_grad_norm(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float(np.sum(p.grad.astype(np.float64) ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm > 0:
            scale = max_norm / (norm + 1e-12)
            for p in self.params:
                if p.grad is None:
                    continue
                if p.grad is p._grad_buf:
                    # Scale the engine-owned buffer in place (same ufunc,
                    # bit-identical to the old reallocating multiply).
                    np.multiply(p.grad, scale, out=p.grad)
                else:
                    p.grad = p.grad * scale
        return norm


class SGD(Optimizer):
    """Classic SGD: ``v ← μv + g``, ``w ← w − lr·v`` (plus weight decay)."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> dict:
        """Copy of lr and per-parameter momentum buffers."""
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict`."""
        super().load_state_dict(state)
        velocity = state["velocity"]
        if len(velocity) != len(self._velocity):
            raise ValueError(
                f"velocity count mismatch: checkpoint has {len(velocity)}, "
                f"optimizer has {len(self._velocity)} parameters"
            )
        self._velocity = [v.copy() for v in velocity]

    def step(self) -> None:
        """Apply one optimization update from accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g
