"""Learning-rate schedules.

The paper trains its RNNs with "a cyclical learning rate scheduler ... with
cosine annealing" (Smith's CLR + SGDR-style cosine), implemented here as
:class:`CyclicCosineLR`: within each cycle the LR decays from ``max_lr`` to
``min_lr`` along a half-cosine, then warm-restarts; optional cycle-length
multiplication lengthens successive cycles.
"""

from __future__ import annotations

import numpy as np

from repro.nn.optim.sgd import Optimizer

__all__ = ["ConstantLR", "StepLR", "CyclicCosineLR"]


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def get_lr(self) -> float:
        """Learning rate for the current step count."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step (typically one epoch) and apply the new LR."""
        self.step_count += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> dict:
        """Copy of the schedule position (for checkpointing)."""
        return {"step_count": self.step_count, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore a position saved by :meth:`state_dict`.

        ``base_lr`` keeps its stored scalar type (see
        ``Optimizer.load_state_dict`` on why coercion breaks bit-identical
        resume).
        """
        self.step_count = int(state["step_count"])
        self.base_lr = state["base_lr"]


class ConstantLR(_Scheduler):
    """No-op schedule (baseline for scheduler ablations)."""

    def get_lr(self) -> float:
        """Learning rate for the current step count."""
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        """Learning rate for the current step count."""
        return self.base_lr * self.gamma ** (self.step_count // self.step_size)


class CyclicCosineLR(_Scheduler):
    """Cosine-annealed cyclical LR with warm restarts.

    Parameters
    ----------
    cycle_len:
        Steps per cycle (first cycle).
    min_lr:
        Floor of the cosine within each cycle.
    cycle_mult:
        Multiplier on the cycle length after each restart (SGDR's T_mult).
    """

    def __init__(
        self,
        optimizer: Optimizer,
        cycle_len: int = 10,
        min_lr: float = 1e-5,
        cycle_mult: float = 1.0,
    ):
        super().__init__(optimizer)
        if cycle_len < 1:
            raise ValueError(f"cycle_len must be >= 1, got {cycle_len}")
        if min_lr <= 0 or min_lr > self.base_lr:
            raise ValueError(
                f"min_lr must be in (0, base_lr={self.base_lr}], got {min_lr}"
            )
        if cycle_mult < 1.0:
            raise ValueError(f"cycle_mult must be >= 1, got {cycle_mult}")
        self.cycle_len = cycle_len
        self.min_lr = min_lr
        self.cycle_mult = cycle_mult

    def get_lr(self) -> float:
        # Locate position within the current (possibly stretched) cycle.
        # step_count has already been incremented by step(); position 0 of
        # the first cycle corresponds to step_count == 1.
        """Learning rate for the current step count."""
        step = self.step_count - 1
        length = self.cycle_len
        while step >= length:
            step -= length
            length = max(1, int(round(length * self.cycle_mult)))
        frac = step / length
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * frac)
        )
