"""Adam optimizer (Kingma & Ba) with decoupled weight decay option."""

from __future__ import annotations

import numpy as np

from repro.nn.optim.sgd import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction.

    ``decoupled_weight_decay=True`` gives AdamW behaviour (decay applied to
    the weights directly, not through the moment estimates).
    """

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = False,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled_weight_decay = decoupled_weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def state_dict(self) -> dict:
        """Copy of lr, step count, and first/second moment estimates."""
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        state["t"] = self._t
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict`."""
        super().load_state_dict(state)
        if len(state["m"]) != len(self._m):
            raise ValueError(
                f"moment count mismatch: checkpoint has {len(state['m'])}, "
                f"optimizer has {len(self._m)} parameters"
            )
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]
        self._t = int(state["t"])

    def step(self) -> None:
        """Apply one optimization update from accumulated gradients."""
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay and not self.decoupled_weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if self.weight_decay and self.decoupled_weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update
