"""Adam optimizer (Kingma & Ba) with decoupled weight decay option."""

from __future__ import annotations

import numpy as np

from repro.nn.optim.sgd import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction.

    ``decoupled_weight_decay=True`` gives AdamW behaviour (decay applied to
    the weights directly, not through the moment estimates).
    """

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = False,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled_weight_decay = decoupled_weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0
        # Per-parameter step scratch (two buffers each), allocated on first
        # use and reused across steps; excluded from state_dict.
        self._scratch: list[tuple[np.ndarray, np.ndarray]] | None = None

    def state_dict(self) -> dict:
        """Copy of lr, step count, and first/second moment estimates."""
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        state["t"] = self._t
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict`."""
        super().load_state_dict(state)
        if len(state["m"]) != len(self._m):
            raise ValueError(
                f"moment count mismatch: checkpoint has {len(state['m'])}, "
                f"optimizer has {len(self._m)} parameters"
            )
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]
        self._t = int(state["t"])

    def step(self) -> None:
        """Apply one optimization update from accumulated gradients.

        When every scalar hyperparameter is a Python float (NEP 50 weak
        promotion: all arithmetic stays float32) the update runs through
        preallocated scratch buffers — the same ufunc sequence as the
        allocating form, so results are bit-identical.  A non-float scalar
        (e.g. a schedule-set ``np.float64`` lr, which intentionally promotes
        the update to float64) takes the legacy allocating path so the
        historical promotion behaviour is preserved exactly.
        """
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        wd = self.weight_decay
        fast = (
            type(self.lr) is float and type(self.eps) is float
            and type(b1) is float and type(b2) is float
            and (not wd or type(wd) is float)
        )
        if fast and self._scratch is None:
            self._scratch = [
                (np.empty_like(p.data), np.empty_like(p.data))
                for p in self.params
            ]
        for i, (p, m, v) in enumerate(zip(self.params, self._m, self._v)):
            if p.grad is None:
                continue
            g = p.grad
            if not fast:
                if wd and not self.decoupled_weight_decay:
                    g = g + wd * p.data
                m *= b1
                m += (1.0 - b1) * g
                v *= b2
                v += (1.0 - b2) * g * g
                update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
                if wd and self.decoupled_weight_decay:
                    update = update + wd * p.data
                p.data -= self.lr * update
                continue
            u, w = self._scratch[i]
            if wd and not self.decoupled_weight_decay:
                np.multiply(p.data, wd, out=w)
                np.add(g, w, out=w)
                g = w
            m *= b1
            np.multiply(g, 1.0 - b1, out=u)
            m += u
            v *= b2
            np.multiply(g, 1.0 - b2, out=u)
            np.multiply(u, g, out=u)
            v += u
            np.divide(m, bc1, out=u)
            np.divide(v, bc2, out=w)
            np.sqrt(w, out=w)
            np.add(w, self.eps, out=w)
            np.divide(u, w, out=u)
            if wd and self.decoupled_weight_decay:
                np.multiply(p.data, wd, out=w)
                np.add(u, w, out=u)
            np.multiply(u, self.lr, out=u)
            p.data -= u
