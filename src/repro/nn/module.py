"""Module/Parameter system (PyTorch-style, minimal).

Modules auto-register :class:`Parameter` attributes and sub-modules, expose
``parameters()`` for optimizers, and carry a ``training`` flag that
:class:`repro.nn.layers.Dropout` respects.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration and train/eval modes."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Iterate over all trainable parameters."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Iterate over (qualified_name, parameter) pairs."""
        for name, p in self._parameters.items():
            yield f"{prefix}{name}", p
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """Iterate over this module and all submodules."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Iterate over (qualified_name, module) pairs, root first.

        The root's name is ``""``; children are dotted attribute paths
        (``"lstm1.fw"``), matching :meth:`named_parameters` prefixes.
        """
        yield prefix, self
        for mod_name, module in self._modules.items():
            child = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from module.named_modules(prefix=child)

    def n_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- modes -------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode on this module and submodules."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode (disables dropout)."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters():
            p.zero_grad()

    # -- forward -----------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the layer's output for the given input."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- state -------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters keyed by qualified name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by state_dict."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, extra={sorted(extra)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].astype(p.data.dtype).copy()


class Sequential(Module):
    """Feed-forward container applying sub-modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x):
        """Compute the layer's output for the given input."""
        for layer in self.layers:
            x = layer(x)
        return x
