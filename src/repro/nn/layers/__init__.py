"""Neural-network layers."""

from repro.nn.layers.linear import Linear
from repro.nn.layers.activation import LeakyReLU, ReLU, Tanh
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.conv import Conv1d, MaxPool1d
from repro.nn.layers.convlstm import ConvLSTM1d, segment_sequence
from repro.nn.layers.rnn import LSTM, BiLSTM

__all__ = [
    "Linear",
    "LeakyReLU",
    "ReLU",
    "Tanh",
    "Dropout",
    "Conv1d",
    "MaxPool1d",
    "ConvLSTM1d",
    "segment_sequence",
    "LSTM",
    "BiLSTM",
]
