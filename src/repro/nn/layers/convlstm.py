"""1-D ConvLSTM (Shi et al., NIPS 2015), the paper's suggested future-work
architecture.

"We believe that the ConvLSTM architecture is promising in its ability to
capture convolutional features in both the input-to-state and
state-to-state domains" (Section VI).  A ConvLSTM replaces the LSTM's dense
gate transforms with convolutions::

    z_t = Conv_x(x_t) + Conv_h(h_{t-1}) ,   gates i, f, g, o from z_t
    c_t = f ∘ c_{t-1} + i ∘ g ,              h_t = o ∘ tanh(c_t)

For the challenge's telemetry we factor each 540-sample window into
``n_segments`` coarse time steps of ``segment_len`` fine samples; the
ConvLSTM scans segments (state evolution) while convolving along the fine
axis within each segment (local pattern extraction), keeping state shape
``(batch, segment_len, hidden_channels)``.

Unlike :class:`repro.nn.layers.rnn.LSTM` (fused BPTT over 540 steps), the
segment count here is small (~10–30), so the layer composes ordinary
autograd ops — padded :class:`Conv1d` for both gate paths plus pointwise
gate math — and inherits exact gradients from the engine.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.conv import Conv1d
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator, spawn_generators

__all__ = ["ConvLSTM1d", "segment_sequence"]


def segment_sequence(x: np.ndarray, n_segments: int) -> np.ndarray:
    """Reshape ``(N, T, C)`` into ``(N, n_segments, T // n_segments, C)``.

    Trailing samples that do not fill a segment are dropped (at 9 Hz this
    loses < 1 coarse step of a 60 s window).
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected (N, T, C), got shape {x.shape}")
    n, t, c = x.shape
    if n_segments < 1 or n_segments > t:
        raise ValueError(f"n_segments={n_segments} out of range [1, {t}]")
    seg_len = t // n_segments
    return x[:, : n_segments * seg_len].reshape(n, n_segments, seg_len, c)


class ConvLSTM1d(Module):
    """Convolutional LSTM over segmented 1-D sequences.

    Parameters
    ----------
    in_channels / hidden_channels:
        Channels of the input segments and of the recurrent state.
    kernel_size:
        Convolution width along the fine (within-segment) axis; must be odd
        ('same' padding keeps the state length fixed across steps).
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        kernel_size: int = 5,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd ('same' padding)")
        rngs = spawn_generators(as_generator(rng), 2)
        self.in_channels = in_channels
        self.hidden_channels = hidden_channels
        self.kernel_size = kernel_size
        self.conv_x = Conv1d(in_channels, 4 * hidden_channels, kernel_size,
                             padding="same", rng=rngs[0])
        self.conv_h = Conv1d(hidden_channels, 4 * hidden_channels, kernel_size,
                             padding="same", bias=False, rng=rngs[1])

    def forward(self, x: Tensor) -> Tensor:
        """``(N, n_segments, L, C_in)`` → ``(N, n_segments, L, C_hidden)``.

        Returns the full hidden-state sequence; take ``out[:, -1]`` for the
        final state.
        """
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ValueError(
                f"expected (N, S, L, {self.in_channels}), got {x.shape}"
            )
        n, n_seg, seg_len, _ = x.shape
        ch = self.hidden_channels

        h = Tensor(np.zeros((n, seg_len, ch), dtype=np.float32))
        c = Tensor(np.zeros((n, seg_len, ch), dtype=np.float32))
        outputs: list[Tensor] = []
        for t in range(n_seg):
            z = self.conv_x(x[:, t]) + self.conv_h(h)
            i = z[:, :, :ch].sigmoid()
            f = z[:, :, ch : 2 * ch].sigmoid()
            g = z[:, :, 2 * ch : 3 * ch].tanh()
            o = z[:, :, 3 * ch :].sigmoid()
            c = f * c + i * g
            h = o * c.tanh()
            outputs.append(h)
        return Tensor.stack(outputs, axis=1)
