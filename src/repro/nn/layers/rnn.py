"""LSTM layers with fused hand-derived backward and a grad-aware fast path.

A per-op autograd LSTM would create hundreds of graph nodes per timestep;
here the whole sequence is one graph node.  Two implementations share that
node layout:

* the **slow reference** (:meth:`LSTM._forward_slow`): per-step temporaries
  are freshly allocated and the backward closure (``_backward_slow``)
  mirrors the textbook BPTT recurrences — easy to audit, kept forever as
  the parity oracle;
* the **fused kernel** (:func:`_fused_seq_forward`, default): the same
  float operations in the same order, but every per-step temporary lives in
  preallocated float32 scratch reused across batches, gate activations are
  written straight into the caches, and — for :class:`BiLSTM` — both
  directions are stacked into one ``(2N, ·)`` row block so each elementwise
  ufunc dispatches once instead of twice.  Elementwise ops round per
  element, so stacking rows changes nothing; matmuls stay per-direction.
  Gradients are **bit-identical** to the slow reference, pinned by the
  parity suite and the ``repro train-bench`` gate.

Under :class:`~repro.nn.tensor.no_grad` the forward takes an inference
fast path instead: no ``(T, N, 4H)`` gate/cell caches, no backward closure,
and all per-step temporaries live in per-layer scratch buffers that are
reused across calls of the same ``(N, T)`` shape (steady-state serving
batches hit the same shape every flush).  The fast path performs the exact
same floating-point operations in the same order as the training forward,
so its outputs are bit-identical — pinned by the parity test suite.

Gate order follows PyTorch: input ``i``, forget ``f``, cell ``g``,
output ``o``::

    z_t = x_t W_ih + h_{t-1} W_hh + b
    c_t = f·c_{t-1} + i·g ,   h_t = o·tanh(c_t)
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import orthogonal, uniform_fan_in
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.rng import as_generator

__all__ = ["LSTM", "BiLSTM"]

#: Largest |x| for which the textbook sigmoid is used: ``exp(75)`` ≈ 2.6e32,
#: far below float32 overflow, so ``1/(1+exp(-x))`` is safe on [-75, 75].
_SIGMOID_SAFE_MAX = 75.0


def _sigmoid_unchecked(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Textbook ``1/(1+exp(-x))`` in three in-place passes.

    The caller must guarantee ``max|x| <= _SIGMOID_SAFE_MAX`` (no overflow
    possible).  Rounds per element, so the result is independent of how the
    input rows are sliced or stacked — the property the fused BiLSTM kernel
    relies on when it evaluates both directions (and the adjacent ``i``/``f``
    gate blocks) in one call.
    """
    # x * -1.0 rather than np.negative: this numpy build's f32 negative
    # loop misreads strided operands at byte-stride 16 (a column view of a
    # 4-column float32 array — exactly the o-gate slice when hidden=1).
    # Multiplying by -1.0 flips the sign bit exactly, so the two are
    # bit-identical for every finite float32.
    np.multiply(x, -1.0, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    return np.divide(1.0, out, out=out)


def _sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Small-magnitude inputs (the overwhelmingly common case for gate
    pre-activations) take the textbook ``1/(1+exp(-x))`` form — three ufunc
    passes.  When any ``|x|`` exceeds :data:`_SIGMOID_SAFE_MAX` the call
    falls back to the piecewise form, where ``exp`` is only ever taken of
    ``-|x|`` so large pre-activations (|x| ~ 100 and beyond) cannot
    overflow: for ``x >= 0`` it is again ``1/(1+exp(-x))``; for ``x < 0``
    the algebraically equal ``exp(x)/(1+exp(x))``.

    The branch is chosen per *call* from the array's max magnitude, so two
    calls on the same array always agree bit-for-bit.
    """
    if x.size and float(np.max(np.abs(x))) <= _SIGMOID_SAFE_MAX:
        return _sigmoid_unchecked(x, np.empty_like(x) if out is None else out)
    e = np.exp(-np.abs(x))
    num = np.where(x >= 0.0, 1.0, e)
    np.add(e, 1.0, out=e)
    return np.divide(num, e, out=num if out is None else out)


def _gate_bound(zx: np.ndarray, w_hh: np.ndarray) -> float:
    """Upper bound on any gate pre-activation magnitude for one direction.

    ``|z| = |x W_ih + b + h W_hh| <= max|x W_ih + b| + max_j Σ_k |W_hh[k,j]|``
    since hidden states satisfy ``|h| = |o·tanh(c)| < 1``.  When the bound
    is within :data:`_SIGMOID_SAFE_MAX`, *every* per-gate ``_sigmoid`` call
    — any slicing, either path — provably takes the unchecked branch, so
    the fused kernel may call it directly and still match the reference.

    ``zx`` is the already-computed ``x W_ih + b`` block (the fused forward
    hands over its scratch, so the bound costs two reductions, not a
    duplicate GEMM); ``max|zx|`` is taken as ``max(|min|, |max|)`` to avoid
    materialising ``|zx|``.
    """
    if zx.size == 0:
        return 0.0
    mx = max(-float(np.min(zx)), float(np.max(zx)))
    return mx + float(np.max(np.abs(w_hh).sum(axis=0)))


def _seq_scratch(host: Module, R: int, N: int, T: int, H: int, D: int) -> dict:
    """Per-host fused-kernel scratch for an ``(R·N, T)`` stacked problem.

    Rebuilt only on shape change; per-timestep views into the big caches
    are precomputed once so the hot loops do no slice arithmetic.
    """
    s = getattr(host, "_train_scratch", None)
    if s is not None and s["key"] == (R, N, T, H, D):
        return s
    RN = R * N
    f32 = np.float32
    # Gate cache layout is (T, 4, RN, H): each gate activation is a
    # *contiguous* (RN, H) block, so every backward read (and the forward
    # cell/hidden updates) runs the ufunc inner loop over contiguous
    # memory instead of strided column slices of an (RN, 4H) row — 2-3x
    # faster per pass on this box.  Elementwise ops round per element, so
    # the layout is invisible to the math.
    gates = np.empty((T, 4, RN, H), dtype=f32)
    cells = np.empty((T, RN, H), dtype=f32)
    tanh_c = np.empty((T, RN, H), dtype=f32)
    # dz is laid out (RN, T, 4H) — row-major per *sequence* — so the three
    # end-of-loop weight-gradient GEMMs read each direction's block as a
    # contiguous (N·T, 4H) view with no transpose copy.  The per-step view
    # dz[:, t] has strided rows; BLAS consumes that via lda (identical
    # GEMM shape → identical reduction order → identical bits).
    dz = np.empty((RN, T, 4 * H), dtype=f32)
    s = {
        "key": (R, N, T, H, D),
        "xs": np.empty((RN, T, D), dtype=f32),
        "zx": np.empty((RN, T, 4 * H), dtype=f32),
        "gates": gates, "cells": cells, "tanh_c": tanh_c, "dz": dz,
        "zh": np.empty((RN, 4 * H), dtype=f32),
        "z": np.empty((RN, 4 * H), dtype=f32),
        "h": np.empty((RN, H), dtype=f32),
        "ig": np.empty((RN, H), dtype=f32),
        "zeros": np.zeros((RN, H), dtype=f32),  # never written
        "dh": np.empty((RN, H), dtype=f32),
        "dc": np.empty((RN, H), dtype=f32),
        "do": np.empty((RN, H), dtype=f32),
        "dh_next": np.empty((RN, H), dtype=f32),
        "dc_next": np.empty((RN, H), dtype=f32),
        "t1": np.empty((RN, H), dtype=f32),
        "t2": np.empty((RN, H), dtype=f32),
        # (2, RN, H) scratch: the i/f gate derivative chains are the same
        # elementwise op sequence, so the backward runs them as one joint
        # pass over the stacked [i, f] blocks (bit-identical per element).
        "ta": np.empty((2, RN, H), dtype=f32),
        "tb": np.empty((2, RN, H), dtype=f32),
        "hp": np.empty((N, T, H), dtype=f32),
        # Precomputed per-step views into the caches (no per-step slicing).
        "gate_views": [
            (gates[t], gates[t, 0], gates[t, 1], gates[t, 2], gates[t, 3])
            for t in range(T)
        ],
        "dz_rows": [dz[:, t] for t in range(T)],
    }
    host._train_scratch = s
    return s


def _fused_seq_forward(x: Tensor, dirs, host: Module) -> Tensor | None:
    """Fused multi-direction LSTM forward + single fused BPTT backward.

    ``dirs`` is a list of ``(LSTM, reverse)`` pairs evaluated jointly by
    stacking their batch rows; the output concatenates their hidden
    sequences along the channel axis in ``dirs`` order (matching
    :meth:`BiLSTM.forward`'s ``Tensor.concatenate``).  Returns ``None``
    when the pre-activation bound exceeds the sigmoid fast-path range —
    the caller then falls back to the slow reference, which handles
    arbitrary magnitudes (and whose per-call checked ``_sigmoid`` would
    otherwise be impossible to match from joint calls).

    Gradients are bit-identical to the per-direction slow reference: every
    elementwise op rounds per element (stacking is invisible), matmuls run
    per direction on contiguous row blocks, and the reduction order of the
    three weight-gradient GEMMs is unchanged.
    """
    R = len(dirs)
    N, T, D = x.shape
    H = dirs[0][0].hidden_size
    s = _seq_scratch(host, R, N, T, H, D)
    xs, zx = s["xs"], s["zx"]
    for d, (lstm, reverse) in enumerate(dirs):
        sl = slice(d * N, (d + 1) * N)
        np.copyto(xs[sl], x.data[:, ::-1] if reverse else x.data)
        zx2 = zx[sl].reshape(N * T, 4 * H)
        np.matmul(xs[sl].reshape(N * T, D), lstm.w_ih.data, out=zx2)
        np.add(zx[sl], lstm.bias.data, out=zx[sl])
        if _gate_bound(zx[sl], lstm.w_hh.data) > _SIGMOID_SAFE_MAX:
            return None

    gates, cells, tanh_c = s["gates"], s["cells"], s["tanh_c"]
    zh, z, h, ig, zeros = s["zh"], s["z"], s["h"], s["ig"], s["zeros"]
    gate_views = s["gate_views"]
    out = np.empty((N, T, R * H), dtype=np.float32)
    h.fill(0.0)
    for t in range(T):
        for d, (lstm, _reverse) in enumerate(dirs):
            sl = slice(d * N, (d + 1) * N)
            np.matmul(h[sl], lstm.w_hh.data, out=zh[sl])
        np.add(zx[:, t], zh, out=z)
        gt, i_v, f_v, g_v, o_v = gate_views[t]
        # tanh of the candidate block first, then sigmoid the *whole* z
        # row in place: one contiguous 4H-wide pass beats three strided
        # column-slice passes even though the g columns' sigmoid output
        # is discarded.  Per-element results are unchanged (the 4-pass
        # form rounds per element regardless of slicing).
        np.tanh(z[:, 2 * H:3 * H], out=g_v)
        _sigmoid_unchecked(z, out=z)
        np.copyto(i_v, z[:, :H])
        np.copyto(f_v, z[:, H:2 * H])
        np.copyto(o_v, z[:, 3 * H:])
        np.multiply(i_v, g_v, out=ig)
        ct = cells[t]
        np.multiply(f_v, cells[t - 1] if t else zeros, out=ct)
        np.add(ct, ig, out=ct)
        np.tanh(ct, out=tanh_c[t])
        np.multiply(o_v, tanh_c[t], out=h)
        for d, (lstm, reverse) in enumerate(dirs):
            out[:, T - 1 - t if reverse else t, d * H:(d + 1) * H] = \
                h[d * N:(d + 1) * N]

    host._fused_gen = gen = getattr(host, "_fused_gen", 0) + 1
    parents = [x]
    for lstm, _reverse in dirs:
        parents += [lstm.w_ih, lstm.w_hh, lstm.bias]

    def backward(grad_out: np.ndarray) -> None:
        if host._fused_gen != gen:
            raise RuntimeError(
                "fused LSTM backward after a newer forward reused the "
                "scratch; call backward before the next forward, or set "
                "fused_backward=False for multi-forward graphs"
            )
        dz, dz_rows = s["dz"], s["dz_rows"]
        dh, dc, do = s["dh"], s["dc"], s["do"]
        dh_next, dc_next = s["dh_next"], s["dc_next"]
        t1, t2 = s["t1"], s["t2"]
        ta, tb = s["ta"], s["tb"]
        dh_next.fill(0.0)
        dc_next.fill(0.0)
        for t in range(T - 1, -1, -1):
            for d, (lstm, reverse) in enumerate(dirs):
                dh[d * N:(d + 1) * N] = \
                    grad_out[:, T - 1 - t if reverse else t, d * H:(d + 1) * H]
            np.add(dh, dh_next, out=dh)
            _gt, i_v, f_v, g_v, o_v = gate_views[t]
            tc = tanh_c[t]
            c_prev = cells[t - 1] if t else zeros
            dz_t = dz_rows[t]
            # do = dh·tc ; dc = dh·o·(1−tc²) + dc_next  (reference op order)
            np.multiply(dh, tc, out=do)
            np.multiply(dh, o_v, out=t1)
            np.multiply(tc, tc, out=t2)
            np.subtract(1.0, t2, out=t2)
            np.multiply(t1, t2, out=t1)
            np.add(t1, dc_next, out=dc)
            # dz_i = (dc·g)·i·(1−i) ; dz_f = (dc·c_prev)·f·(1−f)
            # Same per-element chain, stacked gate blocks → one joint pass.
            np.multiply(dc, g_v, out=ta[0])
            np.multiply(dc, c_prev, out=ta[1])
            np.multiply(ta, _gt[:2], out=ta)
            np.subtract(1.0, _gt[:2], out=tb)
            np.multiply(ta[0], tb[0], out=dz_t[:, :H])
            np.multiply(ta[1], tb[1], out=dz_t[:, H:2 * H])
            # dz_g = (dc·i)·(1−g²)
            np.multiply(dc, i_v, out=t1)
            np.multiply(g_v, g_v, out=t2)
            np.subtract(1.0, t2, out=t2)
            np.multiply(t1, t2, out=dz_t[:, 2 * H:3 * H])
            # dz_o = do·o·(1−o)
            np.multiply(do, o_v, out=t1)
            np.subtract(1.0, o_v, out=t2)
            np.multiply(t1, t2, out=dz_t[:, 3 * H:])
            for d, (lstm, _reverse) in enumerate(dirs):
                sl = slice(d * N, (d + 1) * N)
                np.matmul(dz_t[sl], lstm.w_hh.data.T, out=dh_next[sl])
            np.multiply(dc, f_v, out=dc_next)

        hp = s["hp"]
        for d, (lstm, reverse) in enumerate(dirs):
            sl = slice(d * N, (d + 1) * N)
            dzf2 = dz[sl].reshape(N * T, 4 * H)
            if lstm.w_ih.requires_grad:
                lstm.w_ih._accum(xs[sl].reshape(N * T, D).T @ dzf2)
            if lstm.w_hh.requires_grad:
                hp[:, 0] = 0.0
                ch = slice(d * H, (d + 1) * H)
                hp[:, 1:] = out[:, :0:-1, ch] if reverse else out[:, :T - 1, ch]
                lstm.w_hh._accum(hp.reshape(N * T, H).T @ dzf2)
            if lstm.bias.requires_grad:
                lstm.bias._accum(dzf2.sum(axis=0))
            if x.requires_grad:
                dxs = (dzf2 @ lstm.w_ih.data.T).reshape(N, T, D)
                x._accum(dxs[:, ::-1] if reverse else dxs)

    return Tensor.from_op(out, parents, backward)


class LSTM(Module):
    """Unidirectional LSTM returning the full hidden-state sequence.

    ``forward(x)`` maps ``(N, T, D) → (N, T, H)``.  Set ``reverse=True`` to
    process the sequence end-to-start (used by :class:`BiLSTM`); the output
    is returned in *original* time order either way.

    ``fused_backward`` (class default ``True``) selects the fused
    scratch-buffer kernel; disable it to run the slow closure reference
    the parity suite compares against.
    """

    fused_backward: bool = True

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ValueError(
                f"sizes must be >= 1, got input={input_size}, hidden={hidden_size}"
            )
        rng = as_generator(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        H = hidden_size
        self.w_ih = Parameter(uniform_fan_in((input_size, 4 * H), rng), name="w_ih")
        # Orthogonal recurrent blocks per gate keep long sequences stable.
        w_hh = np.concatenate([orthogonal((H, H), rng) for _ in range(4)], axis=1)
        self.w_hh = Parameter(w_hh, name="w_hh")
        bias = np.zeros(4 * H, dtype=np.float32)
        bias[H : 2 * H] = 1.0  # forget-gate bias 1: standard trick
        self.bias = Parameter(bias, name="bias")
        self._infer_scratch: dict | None = None
        self._train_scratch: dict | None = None

    def _scratch_for(self, N: int, T: int) -> dict:
        """Reusable inference buffers for a ``(N, T)`` input shape.

        Rebuilt only when the shape changes; a steady stream of same-shape
        predict batches allocates nothing after the first call.
        """
        s = self._infer_scratch
        if s is None or s["shape"] != (N, T):
            H = self.hidden_size
            f32 = np.float32
            s = {
                "shape": (N, T),
                "zx": np.empty((N, T, 4 * H), dtype=f32),
                "zh": np.empty((N, 4 * H), dtype=f32),
                "z": np.empty((N, 4 * H), dtype=f32),
                "i": np.empty((N, H), dtype=f32),
                "f": np.empty((N, H), dtype=f32),
                "g": np.empty((N, H), dtype=f32),
                "o": np.empty((N, H), dtype=f32),
                "ig": np.empty((N, H), dtype=f32),
                "tc": np.empty((N, H), dtype=f32),
                "h": np.empty((N, H), dtype=f32),
                "c": np.empty((N, H), dtype=f32),
            }
            self._infer_scratch = s
        return s

    def _forward_inference(self, x_data: np.ndarray, reverse: bool) -> np.ndarray:
        """No-grad forward: same float ops as the training path, no caches.

        Skips the BPTT bookkeeping entirely (``gates``/``cells``/``tanh_c``/
        ``h_prev_all`` and the backward closure) and runs every per-step
        temporary in preallocated scratch.  Only the returned ``(N, T, H)``
        output is freshly allocated — it outlives the call.

        When the batch's pre-activation bound stays within the sigmoid
        fast-path range (checked once per call), the per-step gate sigmoids
        skip their per-call range checks and the ``i``/``f`` pair fuses into
        one call — bit-identical either way, see :func:`_gate_bound`.
        """
        N, T, _D = x_data.shape
        H = self.hidden_size
        s = self._scratch_for(N, T)
        xs = x_data[:, ::-1] if reverse else x_data
        zx = s["zx"]
        np.matmul(xs.reshape(N * T, -1), self.w_ih.data,
                  out=zx.reshape(N * T, 4 * H))
        zx += self.bias.data
        safe = (
            float(np.max(np.abs(zx)))
            + float(np.max(np.abs(self.w_hh.data).sum(axis=0)))
            <= _SIGMOID_SAFE_MAX
        ) if zx.size else True

        h, c = s["h"], s["c"]
        h[:] = 0.0
        c[:] = 0.0
        zh, z, ig, tc = s["zh"], s["z"], s["ig"], s["tc"]
        w_hh = self.w_hh.data
        out = np.empty((N, T, H), dtype=np.float32)
        for t in range(T):
            np.matmul(h, w_hh, out=zh)
            np.add(zx[:, t], zh, out=z)
            if safe:
                # tanh the candidate block, then one contiguous in-place
                # sigmoid over the whole z row (see the training kernel) —
                # per-element results identical to the sliced form.
                g = np.tanh(z[:, 2 * H : 3 * H], out=s["g"])
                _sigmoid_unchecked(z, out=z)
                i, f, o = z[:, :H], z[:, H : 2 * H], z[:, 3 * H :]
            else:
                i = _sigmoid(z[:, :H], out=s["i"])
                f = _sigmoid(z[:, H : 2 * H], out=s["f"])
                o = _sigmoid(z[:, 3 * H :], out=s["o"])
                g = np.tanh(z[:, 2 * H : 3 * H], out=s["g"])
            np.multiply(i, g, out=ig)
            np.multiply(f, c, out=c)
            np.add(c, ig, out=c)
            np.tanh(c, out=tc)
            np.multiply(o, tc, out=h)
            out[:, T - 1 - t if reverse else t] = h
        return out

    def forward(self, x: Tensor, reverse: bool = False) -> Tensor:
        """Compute the layer's output for the given input."""
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(f"expected (N, T, {self.input_size}), got {x.shape}")
        if not is_grad_enabled():
            return Tensor(self._forward_inference(x.data, reverse))
        if self.fused_backward:
            out = _fused_seq_forward(x, [(self, reverse)], self)
            if out is not None:
                return out
        return self._forward_slow(x, reverse)

    def _forward_slow(self, x: Tensor, reverse: bool = False) -> Tensor:
        """Per-op closure-graph reference path (parity oracle for the
        fused kernel); builds fresh per-step temporaries every call."""
        N, T, _D = x.shape
        H = self.hidden_size
        w_ih, w_hh, bias = self.w_ih, self.w_hh, self.bias

        xs = x.data[:, ::-1] if reverse else x.data
        # Input contribution for all steps at once: one big GEMM.
        zx = xs.reshape(N * T, -1) @ w_ih.data
        zx = zx.reshape(N, T, 4 * H) + bias.data

        gates = np.empty((T, N, 4 * H), dtype=np.float32)  # activated i,f,g,o
        cells = np.empty((T, N, H), dtype=np.float32)      # c_t
        tanh_c = np.empty((T, N, H), dtype=np.float32)
        h_prev_all = np.empty((T, N, H), dtype=np.float32)
        h = np.zeros((N, H), dtype=np.float32)
        c = np.zeros((N, H), dtype=np.float32)
        out = np.empty((N, T, H), dtype=np.float32)

        for t in range(T):
            h_prev_all[t] = h
            z = zx[:, t] + h @ w_hh.data
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c = f * c + i * g
            tc = np.tanh(c)
            h = o * tc
            gates[t, :, :H] = i
            gates[t, :, H : 2 * H] = f
            gates[t, :, 2 * H : 3 * H] = g
            gates[t, :, 3 * H :] = o
            cells[t] = c
            tanh_c[t] = tc
            out[:, t] = h

        out_final = out[:, ::-1].copy() if reverse else out

        def _backward_slow(grad_out: np.ndarray) -> None:
            g_out = grad_out[:, ::-1] if reverse else grad_out  # (N, T, H)
            dz_all = np.empty((T, N, 4 * H), dtype=np.float32)
            dh_next = np.zeros((N, H), dtype=np.float32)
            dc_next = np.zeros((N, H), dtype=np.float32)
            w_hh_T = w_hh.data.T
            for t in range(T - 1, -1, -1):
                i = gates[t, :, :H]
                f = gates[t, :, H : 2 * H]
                gg = gates[t, :, 2 * H : 3 * H]
                o = gates[t, :, 3 * H :]
                tc = tanh_c[t]
                c_prev = cells[t - 1] if t > 0 else np.zeros((N, H), dtype=np.float32)

                dh = g_out[:, t] + dh_next
                do = dh * tc
                dc = dh * o * (1.0 - tc**2) + dc_next
                di = dc * gg
                df = dc * c_prev
                dg = dc * i
                dz = dz_all[t]
                dz[:, :H] = di * i * (1.0 - i)
                dz[:, H : 2 * H] = df * f * (1.0 - f)
                dz[:, 2 * H : 3 * H] = dg * (1.0 - gg**2)
                dz[:, 3 * H :] = do * o * (1.0 - o)
                dh_next = dz @ w_hh_T
                dc_next = dc * f

            dz_flat = dz_all.transpose(1, 0, 2).reshape(N * T, 4 * H)
            if w_ih.requires_grad:
                w_ih._accum(xs.reshape(N * T, -1).T @ dz_flat)
            if w_hh.requires_grad:
                hp = h_prev_all.transpose(1, 0, 2).reshape(N * T, H)
                w_hh._accum(hp.T @ dz_flat)
            if bias.requires_grad:
                bias._accum(dz_flat.sum(axis=0))
            if x.requires_grad:
                dxs = (dz_flat @ w_ih.data.T).reshape(N, T, -1)
                x._accum(dxs[:, ::-1] if reverse else dxs)

        return Tensor.from_op(out_final, (x, w_ih, w_hh, bias), _backward_slow)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_infer_scratch"] = None  # don't persist scratch buffers
        state["_train_scratch"] = None
        state.pop("_fused_gen", None)
        return state

    def last_hidden(self, output: Tensor, reverse: bool = False) -> Tensor:
        """Final hidden state from a full-sequence output.

        For a reversed pass the "final" state sits at original index 0.
        """
        return output[:, 0, :] if reverse else output[:, -1, :]


class BiLSTM(Module):
    """Bidirectional LSTM: forward and reversed passes, concatenated.

    ``forward(x)`` maps ``(N, T, D) → (N, T, 2H)`` (features =
    [forward_h_t ; backward_h_t]).  ``final_states(out)`` returns the
    ``(N, 2H)`` concatenation of the two directions' final states — the
    paper's classification head consumes that.

    With ``fused_backward`` (the default) both directions run in one
    fused kernel — elementwise work stacked into ``(2N, ·)`` blocks, one
    graph node, no concatenation copy on the backward path — producing
    bit-identical outputs and gradients to the two-pass reference.
    """

    fused_backward: bool = True

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = as_generator(rng)
        self.hidden_size = hidden_size
        self.fw = LSTM(input_size, hidden_size, rng)
        self.bw = LSTM(input_size, hidden_size, rng)
        self._train_scratch: dict | None = None
        self._fs_scratch: np.ndarray | None = None

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        if is_grad_enabled() and self.fused_backward:
            out = _fused_seq_forward(
                x, [(self.fw, False), (self.bw, True)], self
            )
            if out is not None:
                return out
        out_f = self.fw(x)
        out_b = self.bw(x, reverse=True)
        return Tensor.concatenate([out_f, out_b], axis=2)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_train_scratch"] = None  # don't persist scratch buffers
        state["_fs_scratch"] = None
        state.pop("_fused_gen", None)
        return state

    def final_states(self, output: Tensor) -> Tensor:
        """(N, 2H): forward direction at t=T−1, backward direction at t=0.

        With ``fused_backward`` this is one graph node whose backward adds
        the head gradient into a zeroed per-shape scratch — bit-identical
        to the reference chain (two ``__getitem__`` scatters + a
        concatenate), which allocates a full ``(N, T, 2H)`` zeros array
        per slice per batch.
        """
        H = self.hidden_size
        if not (is_grad_enabled() and self.fused_backward):
            fw_last = output[:, -1, :H]
            bw_last = output[:, 0, H:]
            return Tensor.concatenate([fw_last, bw_last], axis=1)
        data = np.concatenate(
            [output.data[:, -1, :H], output.data[:, 0, H:]], axis=1
        )

        def backward(g):
            if not output.requires_grad:
                return
            s = self._fs_scratch
            if s is None or s.shape != output.data.shape:
                s = self._fs_scratch = np.empty_like(output.data)
            s.fill(0.0)
            # Add-into-zeros mirrors the reference ``np.add.at`` scatter
            # (so signed zeros in g land identically: +0 + (-0) = +0).
            v = s[:, -1, :H]
            np.add(v, g[:, :H], out=v)
            v = s[:, 0, H:]
            np.add(v, g[:, H:], out=v)
            output._accum(s)

        return Tensor.from_op(data, (output,), backward)
