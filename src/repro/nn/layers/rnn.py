"""LSTM layers with fused hand-derived backward and a grad-aware fast path.

A per-op autograd LSTM would create hundreds of graph nodes per timestep;
here the whole sequence is one graph node.  The forward caches gate
activations per step; the backward runs the standard BPTT recurrences, with
the weight-gradient contractions hoisted *out* of the time loop into three
large GEMMs (the dominant cost becomes BLAS, per the optimization guide).

Under :class:`~repro.nn.tensor.no_grad` the forward takes an inference
fast path instead: no ``(T, N, 4H)`` gate/cell caches, no backward closure,
and all per-step temporaries live in per-layer scratch buffers that are
reused across calls of the same ``(N, T)`` shape (steady-state serving
batches hit the same shape every flush).  The fast path performs the exact
same floating-point operations in the same order as the training forward,
so its outputs are bit-identical — pinned by the parity test suite.

Gate order follows PyTorch: input ``i``, forget ``f``, cell ``g``,
output ``o``::

    z_t = x_t W_ih + h_{t-1} W_hh + b
    c_t = f·c_{t-1} + i·g ,   h_t = o·tanh(c_t)
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import orthogonal, uniform_fan_in
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.rng import as_generator

__all__ = ["LSTM", "BiLSTM"]


def _sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic sigmoid (piecewise ``exp`` form).

    ``exp`` is only ever taken of ``-|x|``, so large-magnitude
    pre-activations (|x| ~ 100 and beyond) cannot overflow: for ``x >= 0``
    this is the textbook ``1/(1+exp(-x))``; for ``x < 0`` it is the
    algebraically equal ``exp(x)/(1+exp(x))``.
    """
    e = np.exp(-np.abs(x))
    num = np.where(x >= 0.0, 1.0, e)
    np.add(e, 1.0, out=e)
    return np.divide(num, e, out=num if out is None else out)


class LSTM(Module):
    """Unidirectional LSTM returning the full hidden-state sequence.

    ``forward(x)`` maps ``(N, T, D) → (N, T, H)``.  Set ``reverse=True`` to
    process the sequence end-to-start (used by :class:`BiLSTM`); the output
    is returned in *original* time order either way.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ValueError(
                f"sizes must be >= 1, got input={input_size}, hidden={hidden_size}"
            )
        rng = as_generator(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        H = hidden_size
        self.w_ih = Parameter(uniform_fan_in((input_size, 4 * H), rng), name="w_ih")
        # Orthogonal recurrent blocks per gate keep long sequences stable.
        w_hh = np.concatenate([orthogonal((H, H), rng) for _ in range(4)], axis=1)
        self.w_hh = Parameter(w_hh, name="w_hh")
        bias = np.zeros(4 * H, dtype=np.float32)
        bias[H : 2 * H] = 1.0  # forget-gate bias 1: standard trick
        self.bias = Parameter(bias, name="bias")
        self._infer_scratch: dict | None = None

    def _scratch_for(self, N: int, T: int) -> dict:
        """Reusable inference buffers for a ``(N, T)`` input shape.

        Rebuilt only when the shape changes; a steady stream of same-shape
        predict batches allocates nothing after the first call.
        """
        s = self._infer_scratch
        if s is None or s["shape"] != (N, T):
            H = self.hidden_size
            f32 = np.float32
            s = {
                "shape": (N, T),
                "zx": np.empty((N, T, 4 * H), dtype=f32),
                "zh": np.empty((N, 4 * H), dtype=f32),
                "z": np.empty((N, 4 * H), dtype=f32),
                "i": np.empty((N, H), dtype=f32),
                "f": np.empty((N, H), dtype=f32),
                "g": np.empty((N, H), dtype=f32),
                "o": np.empty((N, H), dtype=f32),
                "ig": np.empty((N, H), dtype=f32),
                "tc": np.empty((N, H), dtype=f32),
                "h": np.empty((N, H), dtype=f32),
                "c": np.empty((N, H), dtype=f32),
            }
            self._infer_scratch = s
        return s

    def _forward_inference(self, x_data: np.ndarray, reverse: bool) -> np.ndarray:
        """No-grad forward: same float ops as the training path, no caches.

        Skips the BPTT bookkeeping entirely (``gates``/``cells``/``tanh_c``/
        ``h_prev_all`` and the backward closure) and runs every per-step
        temporary in preallocated scratch.  Only the returned ``(N, T, H)``
        output is freshly allocated — it outlives the call.
        """
        N, T, _D = x_data.shape
        H = self.hidden_size
        s = self._scratch_for(N, T)
        xs = x_data[:, ::-1] if reverse else x_data
        zx = s["zx"]
        np.matmul(xs.reshape(N * T, -1), self.w_ih.data,
                  out=zx.reshape(N * T, 4 * H))
        zx += self.bias.data

        h, c = s["h"], s["c"]
        h[:] = 0.0
        c[:] = 0.0
        zh, z, ig, tc = s["zh"], s["z"], s["ig"], s["tc"]
        w_hh = self.w_hh.data
        out = np.empty((N, T, H), dtype=np.float32)
        for t in range(T):
            np.matmul(h, w_hh, out=zh)
            np.add(zx[:, t], zh, out=z)
            i = _sigmoid(z[:, :H], out=s["i"])
            f = _sigmoid(z[:, H : 2 * H], out=s["f"])
            g = np.tanh(z[:, 2 * H : 3 * H], out=s["g"])
            o = _sigmoid(z[:, 3 * H :], out=s["o"])
            np.multiply(i, g, out=ig)
            np.multiply(f, c, out=c)
            np.add(c, ig, out=c)
            np.tanh(c, out=tc)
            np.multiply(o, tc, out=h)
            out[:, T - 1 - t if reverse else t] = h
        return out

    def forward(self, x: Tensor, reverse: bool = False) -> Tensor:
        """Compute the layer's output for the given input."""
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(f"expected (N, T, {self.input_size}), got {x.shape}")
        if not is_grad_enabled():
            return Tensor(self._forward_inference(x.data, reverse))
        N, T, _D = x.shape
        H = self.hidden_size
        w_ih, w_hh, bias = self.w_ih, self.w_hh, self.bias

        xs = x.data[:, ::-1] if reverse else x.data
        # Input contribution for all steps at once: one big GEMM.
        zx = xs.reshape(N * T, -1) @ w_ih.data
        zx = zx.reshape(N, T, 4 * H) + bias.data

        gates = np.empty((T, N, 4 * H), dtype=np.float32)  # activated i,f,g,o
        cells = np.empty((T, N, H), dtype=np.float32)      # c_t
        tanh_c = np.empty((T, N, H), dtype=np.float32)
        h_prev_all = np.empty((T, N, H), dtype=np.float32)
        h = np.zeros((N, H), dtype=np.float32)
        c = np.zeros((N, H), dtype=np.float32)
        out = np.empty((N, T, H), dtype=np.float32)

        for t in range(T):
            h_prev_all[t] = h
            z = zx[:, t] + h @ w_hh.data
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c = f * c + i * g
            tc = np.tanh(c)
            h = o * tc
            gates[t, :, :H] = i
            gates[t, :, H : 2 * H] = f
            gates[t, :, 2 * H : 3 * H] = g
            gates[t, :, 3 * H :] = o
            cells[t] = c
            tanh_c[t] = tc
            out[:, t] = h

        out_final = out[:, ::-1].copy() if reverse else out

        def backward(grad_out: np.ndarray) -> None:
            g_out = grad_out[:, ::-1] if reverse else grad_out  # (N, T, H)
            dz_all = np.empty((T, N, 4 * H), dtype=np.float32)
            dh_next = np.zeros((N, H), dtype=np.float32)
            dc_next = np.zeros((N, H), dtype=np.float32)
            w_hh_T = w_hh.data.T
            for t in range(T - 1, -1, -1):
                i = gates[t, :, :H]
                f = gates[t, :, H : 2 * H]
                gg = gates[t, :, 2 * H : 3 * H]
                o = gates[t, :, 3 * H :]
                tc = tanh_c[t]
                c_prev = cells[t - 1] if t > 0 else np.zeros((N, H), dtype=np.float32)

                dh = g_out[:, t] + dh_next
                do = dh * tc
                dc = dh * o * (1.0 - tc**2) + dc_next
                di = dc * gg
                df = dc * c_prev
                dg = dc * i
                dz = dz_all[t]
                dz[:, :H] = di * i * (1.0 - i)
                dz[:, H : 2 * H] = df * f * (1.0 - f)
                dz[:, 2 * H : 3 * H] = dg * (1.0 - gg**2)
                dz[:, 3 * H :] = do * o * (1.0 - o)
                dh_next = dz @ w_hh_T
                dc_next = dc * f

            dz_flat = dz_all.transpose(1, 0, 2).reshape(N * T, 4 * H)
            if w_ih.requires_grad:
                w_ih._accum(xs.reshape(N * T, -1).T @ dz_flat)
            if w_hh.requires_grad:
                hp = h_prev_all.transpose(1, 0, 2).reshape(N * T, H)
                w_hh._accum(hp.T @ dz_flat)
            if bias.requires_grad:
                bias._accum(dz_flat.sum(axis=0))
            if x.requires_grad:
                dxs = (dz_flat @ w_ih.data.T).reshape(N, T, -1)
                x._accum(dxs[:, ::-1] if reverse else dxs)

        return Tensor.from_op(out_final, (x, w_ih, w_hh, bias), backward)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_infer_scratch"] = None  # don't persist inference buffers
        return state

    def last_hidden(self, output: Tensor, reverse: bool = False) -> Tensor:
        """Final hidden state from a full-sequence output.

        For a reversed pass the "final" state sits at original index 0.
        """
        return output[:, 0, :] if reverse else output[:, -1, :]


class BiLSTM(Module):
    """Bidirectional LSTM: forward and reversed passes, concatenated.

    ``forward(x)`` maps ``(N, T, D) → (N, T, 2H)`` (features =
    [forward_h_t ; backward_h_t]).  ``final_states(out)`` returns the
    ``(N, 2H)`` concatenation of the two directions' final states — the
    paper's classification head consumes that.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = as_generator(rng)
        self.hidden_size = hidden_size
        self.fw = LSTM(input_size, hidden_size, rng)
        self.bw = LSTM(input_size, hidden_size, rng)

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        out_f = self.fw(x)
        out_b = self.bw(x, reverse=True)
        return Tensor.concatenate([out_f, out_b], axis=2)

    def final_states(self, output: Tensor) -> Tensor:
        """(N, 2H): forward direction at t=T−1, backward direction at t=0."""
        H = self.hidden_size
        fw_last = output[:, -1, :H]
        bw_last = output[:, 0, H:]
        return Tensor.concatenate([fw_last, bw_last], axis=1)
