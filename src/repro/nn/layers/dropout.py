"""Dropout layer (inverted scaling, train-mode only)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import dropout
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["Dropout"]


class Dropout(Module):
    """Drop activations with probability ``p`` during training.

    The paper uses ``p = 0.5`` after the LSTM projection and between
    stacked LSTM layers.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"p must be in [0, 1), got {p}")
        self.p = p
        self.rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        return dropout(x, self.p, self.rng, training=self.training)
