"""1-D convolution and max-pooling over channels-last sequences.

Input layout is ``(batch, time, channels)`` — the same layout the challenge
tensors and the LSTM use, so the paper's CNN-LSTM front end composes
without transposes.

Both layers are *fused* autograd nodes: the forward builds strided windows
with ``sliding_window_view`` (zero-copy) and contracts them with one
einsum/GEMM; the backward is hand-derived (see
:class:`repro.nn.tensor.Tensor.from_op`), avoiding hundreds of small graph
nodes per sequence.

Under :class:`~repro.nn.tensor.no_grad` both forwards take a fast path:
no backward closure is built and no forward state (input windows, argmax
indices, offsets) is retained, so nothing outlives the call but the output
itself.  Fast-path outputs are bit-identical to the training forward.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.init import kaiming_uniform, uniform_fan_in
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.rng import as_generator

__all__ = ["Conv1d", "MaxPool1d"]


def conv_output_length(t: int, kernel: int, stride: int, padding: int = 0) -> int:
    """Output length for the given geometry."""
    t_eff = t + 2 * padding
    if t_eff < kernel:
        raise ValueError(f"sequence length {t_eff} shorter than kernel {kernel}")
    return (t_eff - kernel) // stride + 1


def resolve_padding(padding: int | str, kernel_size: int) -> int:
    """Resolve 'valid' / 'same' / explicit int padding."""
    if padding == "valid":
        return 0
    if padding == "same":
        if kernel_size % 2 == 0:
            raise ValueError("'same' padding requires an odd kernel size")
        return (kernel_size - 1) // 2
    pad = int(padding)
    if pad < 0:
        raise ValueError(f"padding must be >= 0, got {padding}")
    return pad


class Conv1d(Module):
    """Valid (no-padding) 1-D convolution, ``(N, T, C_in) → (N, T', C_out)``.

    Weight shape is ``(C_out, C_in, K)``; output ``T' = (T − K)//stride + 1``.

    With ``fused_backward`` (the default) the gradient contractions write
    into preallocated per-shape scratch reused across batches; the
    allocating reference is kept as :meth:`_backward_slow` and produces
    bit-identical gradients (same einsum contractions, same scatter
    order).  Scratch is per-process and excluded from pickling.
    """

    fused_backward: bool = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | str = "valid",
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if kernel_size < 1 or stride < 1:
            raise ValueError(
                f"kernel_size and stride must be >= 1, got {kernel_size}, {stride}"
            )
        rng = as_generator(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._pad = resolve_padding(padding, kernel_size)
        self.weight = Parameter(
            kaiming_uniform((out_channels, in_channels, kernel_size), rng),
            name="conv_weight",
        )
        self.bias = (
            Parameter(uniform_fan_in((out_channels,), rng), name="conv_bias")
            if bias
            else None
        )
        self._bwd_scratch: dict | None = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_bwd_scratch"] = None  # per-process scratch, never persisted
        return state

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        if x.ndim != 3 or x.shape[2] != self.in_channels:
            raise ValueError(
                f"expected (N, T, {self.in_channels}), got {x.shape}"
            )
        stride, K, pad = self.stride, self.kernel_size, self._pad
        w, b = self.weight, self.bias
        x_data = x.data
        if pad:
            x_data = np.pad(x_data, ((0, 0), (pad, pad), (0, 0)))
        # (N, T, C) -> windows (N, T', C, K), a strided view (no copy).
        windows = sliding_window_view(x_data, K, axis=1)[:, ::stride]
        out = np.einsum("ntck,ock->nto", windows, w.data, optimize=True)
        if not is_grad_enabled():
            # Inference fast path: same contraction, but no backward
            # closure and no retained windows/offsets — in-place bias add,
            # only the output survives the call.
            if b is not None:
                out += b.data
            return Tensor(np.ascontiguousarray(out, dtype=x.dtype))
        if b is not None:
            out = out + b.data
        out = np.ascontiguousarray(out, dtype=x.dtype)
        t_out = out.shape[1]
        offsets = np.arange(t_out) * stride

        parents = (x, w) if b is None else (x, w, b)

        def backward_slow(g):
            # Allocating reference: one fresh array per gradient.
            if w.requires_grad:
                w._accum(np.einsum("nto,ntck->ock", g, windows, optimize=True))
            if b is not None and b.requires_grad:
                b._accum(g.sum(axis=(0, 1)))
            if x.requires_grad:
                dxw = np.einsum("nto,ock->ntck", g, w.data, optimize=True)
                dx = np.zeros_like(x_data)
                # For fixed k the target positions offsets+k are distinct,
                # so fancy-index accumulation is race-free.
                for k in range(K):
                    dx[:, offsets + k, :] += dxw[:, :, :, k]
                if pad:
                    dx = dx[:, pad:-pad, :]
                x._accum(dx)

        def backward_fused(g):
            # Same contractions and scatter order as the reference, but
            # every gradient lands in scratch reused across batches (the
            # engine copies on _accum, so reuse is safe).
            s = self._bwd_scratch
            if s is None or s["key"] != x_data.shape:
                s = self._bwd_scratch = {
                    "key": x_data.shape,
                    "dw": np.empty_like(w.data),
                    "db": None if b is None else np.empty_like(b.data),
                    "dxw": np.empty(windows.shape, dtype=x_data.dtype),
                    "dx": np.empty_like(x_data),
                }
            if w.requires_grad:
                np.einsum("nto,ntck->ock", g, windows,
                          out=s["dw"], optimize=True)
                w._accum(s["dw"])
            if b is not None and b.requires_grad:
                np.sum(g, axis=(0, 1), out=s["db"])
                b._accum(s["db"])
            if x.requires_grad:
                dxw = s["dxw"]
                np.einsum("nto,ock->ntck", g, w.data, out=dxw, optimize=True)
                dx = s["dx"]
                dx.fill(0.0)
                for k in range(K):
                    dx[:, offsets + k, :] += dxw[:, :, :, k]
                if pad:
                    dx = dx[:, pad:-pad, :]
                x._accum(dx)

        backward = backward_fused if self.fused_backward else backward_slow
        return Tensor.from_op(out, parents, backward)


class MaxPool1d(Module):
    """Non-overlapping (by default) temporal max pooling, channels-last.

    With ``fused_backward`` (the default) the scatter target and index
    grids live in per-shape scratch reused across batches; the allocating
    reference is kept as the ``backward_slow`` closure (toggle
    ``fused_backward=False``) and is bit-identical.
    """

    fused_backward: bool = True

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        self._bwd_scratch: dict | None = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_bwd_scratch"] = None  # per-process scratch, never persisted
        return state

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        if x.ndim != 3:
            raise ValueError(f"expected (N, T, C), got {x.shape}")
        K, stride = self.kernel_size, self.stride
        windows = sliding_window_view(x.data, K, axis=1)[:, ::stride]  # (N,T',C,K)
        if not is_grad_enabled():
            # Inference fast path: plain max — same elements the argmax
            # gather selects — with no argmax cache or backward closure.
            return Tensor(
                np.ascontiguousarray(windows.max(axis=3), dtype=x.dtype)
            )
        arg = windows.argmax(axis=3)  # (N, T', C)
        out = np.take_along_axis(windows, arg[..., None], axis=3)[..., 0]
        out = np.ascontiguousarray(out, dtype=x.dtype)
        n, t_out, c = out.shape
        offsets = np.arange(t_out) * stride

        def backward_slow(g):
            if not x.requires_grad:
                return
            dx = np.zeros_like(x.data)
            time_idx = offsets[None, :, None] + arg  # (N, T', C)
            n_idx = np.arange(n)[:, None, None]
            c_idx = np.arange(c)[None, None, :]
            np.add.at(dx, (n_idx, time_idx, c_idx), g)
            x._accum(dx)

        def backward_fused(g):
            if not x.requires_grad:
                return
            s = self._bwd_scratch
            if s is None or s["key"] != (x.shape, out.shape):
                s = self._bwd_scratch = {
                    "key": (x.shape, out.shape),
                    "dx": np.empty_like(x.data),
                    "n_idx": np.arange(n)[:, None, None],
                    "c_idx": np.arange(c)[None, None, :],
                }
            dx = s["dx"]
            dx.fill(0.0)
            time_idx = offsets[None, :, None] + arg
            np.add.at(dx, (s["n_idx"], time_idx, s["c_idx"]), g)
            x._accum(dx)

        backward = backward_fused if self.fused_backward else backward_slow
        return Tensor.from_op(out, (x,), backward)
