"""Pointwise activation layers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["LeakyReLU", "ReLU", "Tanh"]


class LeakyReLU(Module):
    """Leaky rectifier — the nonlinearity the paper's LSTM head uses."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        return x.leaky_relu(self.negative_slope)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        return x.relu()


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __init__(self):
        super().__init__()

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        return x.tanh()
