"""Dense (fully-connected) layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import kaiming_uniform, uniform_fan_in
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.rng import as_generator

__all__ = ["Linear"]


class Linear(Module):
    """``y = x @ W + b`` with weight shape ``(in_features, out_features)``.

    Accepts any leading batch shape; the last axis must be ``in_features``.

    With ``fused_backward`` (the default) the layer is a single graph node
    whose backward computes ``dW = flatᵀ·g``, ``db = Σ g``, and
    ``dx = g·Wᵀ`` directly into preallocated scratch — bit-identical to the
    per-op chain (reshape → matmul → add → reshape) kept in
    :meth:`_forward_slow` as the parity reference.  Scratch buffers are
    per-process and excluded from pickling.
    """

    fused_backward: bool = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"features must be >= 1, got in={in_features}, out={out_features}"
            )
        rng = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = (
            Parameter(uniform_fan_in((out_features,), rng), name="bias")
            if bias
            else None
        )
        self._bwd_scratch: dict | None = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_bwd_scratch"] = None  # per-process scratch, never persisted
        return state

    def _check_input(self, x: Tensor) -> None:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )

    def _forward_slow(self, x: Tensor) -> Tensor:
        """Per-op reference chain; gradient parity target for the fused path."""
        flat = x.reshape(-1, self.in_features) if x.ndim != 2 else x
        out = flat @ self.weight
        if self.bias is not None:
            out = out + self.bias
        if x.ndim != 2:
            out = out.reshape(*x.shape[:-1], self.out_features)
        return out

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        self._check_input(x)
        if not self.fused_backward:
            return self._forward_slow(x)
        w, b = self.weight, self.bias
        in_f, out_f = self.in_features, self.out_features
        flat = x.data.reshape(-1, in_f)
        out = flat @ w.data
        if b is not None:
            np.add(out, b.data, out=out)
        out = out.reshape(*x.shape[:-1], out_f)
        if not is_grad_enabled():
            return Tensor(out)

        def backward(g):
            g_flat = g.reshape(-1, out_f)
            s = self._bwd_scratch
            if s is None or s["rows"] != g_flat.shape[0]:
                s = self._bwd_scratch = {
                    "rows": g_flat.shape[0],
                    "dw": np.empty_like(w.data),
                    "db": None if b is None else np.empty_like(b.data),
                    "dx": np.empty((g_flat.shape[0], in_f), dtype=w.data.dtype),
                }
            if w.requires_grad:
                np.matmul(flat.T, g_flat, out=s["dw"])
                w._accum(s["dw"])
            if b is not None and b.requires_grad:
                # The reference adds the bias on the *flattened* 2-D
                # activations, so its unbroadcast grad is always a sum over
                # the single leading axis.
                np.sum(g_flat, axis=0, out=s["db"])
                b._accum(s["db"])
            if x.requires_grad:
                np.matmul(g_flat, w.data.T, out=s["dx"])
                x._accum(s["dx"].reshape(x.shape))

        parents = (x, w) if b is None else (x, w, b)
        return Tensor.from_op(out, parents, backward)
