"""Dense (fully-connected) layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import kaiming_uniform, uniform_fan_in
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["Linear"]


class Linear(Module):
    """``y = x @ W + b`` with weight shape ``(in_features, out_features)``.

    Accepts any leading batch shape; the last axis must be ``in_features``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"features must be >= 1, got in={in_features}, out={out_features}"
            )
        rng = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = (
            Parameter(uniform_fan_in((out_features,), rng), name="bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer's output for the given input."""
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        flat = x.reshape(-1, self.in_features) if x.ndim != 2 else x
        out = flat @ self.weight
        if self.bias is not None:
            out = out + self.bias
        if x.ndim != 2:
            out = out.reshape(*x.shape[:-1], self.out_features)
        return out
