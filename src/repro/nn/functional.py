"""Functional ops built on the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["log_softmax", "softmax", "nll_loss", "cross_entropy", "dropout"]


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``.

    Fused node: forward uses the log-sum-exp trick, backward is
    ``g − softmax(x) · Σg`` — one expression instead of a chain of
    exp/sum/log nodes.
    """
    z = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(z).sum(axis=axis, keepdims=True))
    out_data = z - lse
    softmax_data = np.exp(out_data)

    def backward(g):
        x._accum(g - softmax_data * g.sum(axis=axis, keepdims=True))

    return Tensor.from_op(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax probabilities along the given axis."""
    return log_softmax(x, axis=axis).exp()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer targets.

    ``log_probs`` is ``(n, k)`` log-probabilities (from
    :func:`log_softmax`), matching the paper's loss: "we take the negative
    log-likelihood loss of the log-probability vector with respect to the
    correct classes".
    """
    targets = np.asarray(targets)
    n, k = log_probs.shape
    if targets.shape != (n,):
        raise ValueError(f"targets must have shape ({n},), got {targets.shape}")
    if targets.min() < 0 or targets.max() >= k:
        raise ValueError(f"targets out of range [0, {k})")
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy from raw logits."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


def dropout(
    x: Tensor, p: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale kept by 1/(1−p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout p must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep

    def backward(g):
        x._accum(g * mask)

    return Tensor.from_op(x.data * mask, (x,), backward)
