"""repro.store — crash-safe sharded telemetry store with zero-copy replay.

The system of record for simulated fleet telemetry, built from four
layers (each its own module):

* :mod:`repro.store.wal` — per-shard write-ahead log with group commit
  and CRC-framed records; a kill mid-commit loses only the torn tail.
* :mod:`repro.store.segment` — immutable columnar float32 segment files
  read through ``np.memmap``: every sealed trial is one contiguous
  row-range view, copied nowhere.
* :mod:`repro.store.manifest` — the atomically swapped segment catalog;
  the store's single commit point for sealing.
* :mod:`repro.store.store` — :class:`TelemetryStore`, the orchestrator:
  append → group commit → seal → serve, with recovery on open.

On top: :mod:`repro.store.compact` (time-bucketed downsampling with
retention, preserving full-trace moments), :mod:`repro.store.replay`
(deterministic re-drive of serve/monitor scenarios at a configurable
rate), and :mod:`repro.store.bench` (the gated ``repro store-bench``
suite).
"""

from repro.store.compact import CompactionReport, bucket_means, compact_store
from repro.store.manifest import Manifest
from repro.store.replay import ReplayConfig, Replayer
from repro.store.segment import SegmentReader, SegmentWriter, TrialSlice
from repro.store.store import TelemetryStore
from repro.store.wal import WalRecord, WriteAheadLog, read_wal

__all__ = [
    "CompactionReport",
    "Manifest",
    "ReplayConfig",
    "Replayer",
    "SegmentReader",
    "SegmentWriter",
    "TelemetryStore",
    "TrialSlice",
    "WalRecord",
    "WriteAheadLog",
    "bucket_means",
    "compact_store",
    "read_wal",
]
