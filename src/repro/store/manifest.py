"""The store's manifest: the single atomic commit point for sealed data.

The manifest records, per shard, which segment files are live and the
next segment sequence number.  It is the *only* authority readers
consult: a segment file on disk that the manifest does not reference is
invisible (a crash artifact, garbage-collected later), so sealing rows
is atomic — either the ``os.replace`` of the manifest lands (all new
segments visible at once) or it doesn't (the WAL still holds every
committed row).

The ``store.manifest.swap`` fault point fires after segments are durable
but before the manifest replace, pinning exactly that window in the
crash tests.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.resilience.faults import fault_point
from repro.utils.persist import atomic_write_bytes

__all__ = ["Manifest", "MANIFEST_NAME"]

MANIFEST_NAME = "MANIFEST"
_MAGIC = "repro-store-manifest-v1"


@dataclass
class Manifest:
    """Live-segment catalog for one store; persisted atomically."""

    n_shards: int
    n_sensors: int | None = None        # fixed by the first append
    version: int = 0                    # bumped on every swap
    segments: dict[int, list[int]] = field(default_factory=dict)
    next_seq: dict[int, int] = field(default_factory=dict)

    def shard_segments(self, shard: int) -> list[int]:
        """Sequence numbers of the live segments of ``shard``, in order."""
        return list(self.segments.get(shard, []))

    def allocate_seq(self, shard: int) -> int:
        """Reserve the next segment sequence number for ``shard``."""
        seq = self.next_seq.get(shard, 1)
        self.next_seq[shard] = seq + 1
        return seq

    def add_segment(self, shard: int, seq: int) -> None:
        """Reference a freshly sealed segment (visible after save)."""
        self.segments.setdefault(shard, []).append(seq)

    def replace_segment(self, shard: int, old_seq: int, new_seq: int) -> None:
        """Swap a compacted segment for its downsampled replacement."""
        seqs = self.segments.get(shard, [])
        seqs[seqs.index(old_seq)] = new_seq

    # ------------------------------------------------------------------
    def save(self, root: str | Path, *, fsync: bool = True) -> Path:
        """Atomically persist this manifest (the store's commit point)."""
        self.version += 1
        body = pickle.dumps(
            {
                "n_shards": self.n_shards,
                "n_sensors": self.n_sensors,
                "version": self.version,
                "segments": self.segments,
                "next_seq": self.next_seq,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        payload = pickle.dumps(
            {"magic": _MAGIC, "crc32": zlib.crc32(body), "body": body},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fault_point("store.manifest.swap")
        return atomic_write_bytes(Path(root) / MANIFEST_NAME, payload, fsync=fsync)

    @classmethod
    def load(cls, root: str | Path) -> "Manifest | None":
        """Load the manifest, or ``None`` when the store has never sealed.

        Raises ``ValueError`` on a corrupt file — impossible through the
        atomic write path, so it indicates disk-level damage.
        """
        path = Path(root) / MANIFEST_NAME
        if not path.is_file():
            return None
        with path.open("rb") as handle:
            try:
                payload = pickle.load(handle)
            except Exception as exc:
                raise ValueError(f"{path} is not a repro store manifest: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
            raise ValueError(f"{path} is not a repro store manifest")
        body = payload["body"]
        if zlib.crc32(body) != payload["crc32"]:
            raise ValueError(
                f"{path} failed its CRC32 check: the manifest is corrupt"
            )
        state = pickle.loads(body)
        return cls(
            n_shards=state["n_shards"],
            n_sensors=state["n_sensors"],
            version=state["version"],
            segments=state["segments"],
            next_seq=state["next_seq"],
        )
