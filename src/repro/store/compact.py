"""Time-bucketed downsampling compaction with retention.

Old telemetry rarely needs full 100 ms cadence: compaction folds each
trial's rows into fixed-width time buckets (bucket means), rewriting old
segments as much smaller ones while the newest ``keep_segments`` per
shard stay raw (the retention window a replay or debug session wants at
native rate).

Two properties make this lossless where it matters:

* Each compacted :class:`~repro.store.segment.TrialSlice` carries the
  :class:`~repro.data.fulltrace.TraceMoments` of the *original* rows —
  the single-pass ``(count, sum, outer-product)`` accumulator — so
  full-trace covariance features remain computable bit-for-bit after the
  raw rows are gone.
* The rewrite reuses the store's commit protocol: new segments are
  finalized invisibly, one manifest swap retires the old ones, and only
  then are their files deleted.  A kill anywhere leaves a consistent
  store (at worst stray files for :meth:`TelemetryStore.gc_stray`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.fulltrace import TraceMoments
from repro.store.segment import SegmentReader, SegmentWriter, TrialSlice, segment_paths
from repro.store.store import TelemetryStore

__all__ = ["CompactionReport", "bucket_means", "compact_store"]


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction pass did."""

    segments_compacted: int
    rows_before: int
    rows_after: int

    @property
    def row_reduction(self) -> float:
        """Fraction of rows eliminated (0 when nothing was compacted)."""
        if self.rows_before == 0:
            return 0.0
        return 1.0 - self.rows_after / self.rows_before


def bucket_means(rows: np.ndarray, bucket: int) -> np.ndarray:
    """Mean of every ``bucket`` consecutive rows (trailing partial kept).

    ``(n, s) -> (ceil(n / bucket), s)`` float32; accumulation runs in
    float64.
    """
    if bucket < 1:
        raise ValueError(f"bucket must be >= 1, got {bucket}")
    rows = np.asarray(rows)
    n = rows.shape[0]
    starts = np.arange(0, n, bucket)
    sums = np.add.reduceat(rows, starts, axis=0, dtype=np.float64)
    counts = np.minimum(starts + bucket, n) - starts
    return (sums / counts[:, None]).astype(np.float32)


def compact_store(
    store: TelemetryStore, *, bucket: int, keep_segments: int = 1
) -> CompactionReport:
    """Downsample every eligible segment of ``store`` in place.

    Per shard, the newest ``keep_segments`` segments are retained raw;
    older raw segments are rewritten with each trial reduced to
    ``bucket``-row means plus its original-row :class:`TraceMoments`.
    Already-compacted segments are skipped, so the pass is idempotent.
    """
    if bucket < 2:
        raise ValueError(f"bucket must be >= 2 to downsample, got {bucket}")
    if keep_segments < 0:
        raise ValueError(f"keep_segments must be >= 0, got {keep_segments}")
    store.flush()
    manifest = store.manifest
    swaps: list[tuple[int, int, int, dict]] = []   # shard, old, new, trials
    rows_before = rows_after = 0
    for shard in range(store.n_shards):
        live = manifest.shard_segments(shard)
        eligible = live[: len(live) - keep_segments] if keep_segments else live
        for seq in eligible:
            reader = store._readers[(shard, seq)]
            if all(t.downsample_bucket for t in reader.trials.values()):
                continue                            # already compacted
            chunks: list[np.ndarray] = []
            trials: dict[tuple[int, int], TrialSlice] = {}
            start = 0
            for key, info in sorted(
                reader.trials.items(), key=lambda kv: kv[1].row_start
            ):
                raw = reader.series(key)
                moments = info.moments
                if moments is None:
                    moments = TraceMoments(raw.shape[1]).update(raw)
                if info.downsample_bucket:          # keep as-is, carry through
                    down, eff_bucket = np.asarray(raw), info.downsample_bucket
                else:
                    down, eff_bucket = bucket_means(raw, bucket), bucket
                chunks.append(down)
                trials[key] = TrialSlice(
                    row_start=start,
                    n_rows=down.shape[0],
                    label=info.label,
                    model_name=info.model_name,
                    downsample_bucket=eff_bucket,
                    moments=moments,
                )
                start += down.shape[0]
            rows_before += reader.n_rows
            rows_after += start
            new_seq = manifest.allocate_seq(shard)
            SegmentWriter.write(
                store._shard_dir(shard),
                new_seq,
                np.concatenate(chunks, axis=0),
                trials,
                fsync=store.fsync,
            )
            manifest.replace_segment(shard, seq, new_seq)
            swaps.append((shard, seq, new_seq, trials))
    if not swaps:
        return CompactionReport(0, 0, 0)
    manifest.save(store.root, fsync=store.fsync)    # atomic retire+publish
    for shard, old_seq, new_seq, trials in swaps:
        old = store._readers.pop((shard, old_seq))
        old.close()
        store._readers[(shard, new_seq)] = SegmentReader(
            store._shard_dir(shard), new_seq
        )
        for key in trials:
            store._catalog[key] = (shard, new_seq)
        for path in segment_paths(store._shard_dir(shard), old_seq):
            path.unlink(missing_ok=True)
    return CompactionReport(len(swaps), rows_before, rows_after)
