"""Per-shard write-ahead log with group commit.

The WAL is the durability layer for freshly appended telemetry: records
are framed, CRC-protected, and appended to one log file per shard.  A
*group commit* (:meth:`WriteAheadLog.commit`) writes every staged record
and fsyncs the file once, so a batch of appends costs one disk flush.

Frame layout (little-endian)::

    magic   4 bytes   b"RWL1"
    length  u32       payload byte count
    payload bytes     pickled record header + raw float32 series bytes
    crc32   u32       CRC32 over the payload

Recovery reads records in order and stops at the first frame that is
truncated, mis-magic'd, or fails its CRC — everything before that point
was durably committed and is served; everything after never committed
(a SIGKILL mid-append leaves exactly such a torn tail; see the
``store.wal.append`` fault point).  The torn tail is trimmed the next
time the log is opened for writing, never on read.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.resilience.faults import fault_point

__all__ = ["WalRecord", "WriteAheadLog", "frame_payload", "iter_frames", "read_wal"]

_MAGIC = b"RWL1"
_FRAME_HEAD = struct.Struct("<4sI")     # magic, payload length
_FRAME_TAIL = struct.Struct("<I")       # crc32
_MAX_PAYLOAD = 1 << 31                  # sanity bound against garbage lengths


def frame_payload(payload: bytes, *, magic: bytes = _MAGIC) -> bytes:
    """Wrap ``payload`` in the WAL frame layout (magic + length + crc).

    The frame format is generic over the payload — the telemetry WAL and
    the trace sink's span log share it, distinguished only by ``magic``
    (4 bytes).
    """
    if len(magic) != 4:
        raise ValueError(f"magic must be 4 bytes, got {magic!r}")
    return (
        _FRAME_HEAD.pack(magic, len(payload))
        + payload
        + _FRAME_TAIL.pack(zlib.crc32(payload))
    )


def iter_frames(raw: bytes, *, magic: bytes = _MAGIC):
    """Yield ``(payload, end_offset)`` for each intact frame of ``raw``.

    Stops at the first truncated, mis-magic'd, or CRC-failing frame —
    the torn-tail recovery rule.  ``end_offset`` is the byte offset just
    past the frame, so the last yielded value is the valid prefix length.
    """
    offset = 0
    while offset + _FRAME_HEAD.size + _FRAME_TAIL.size <= len(raw):
        frame_magic, length = _FRAME_HEAD.unpack_from(raw, offset)
        if frame_magic != magic or length > _MAX_PAYLOAD:
            return
        body_start = offset + _FRAME_HEAD.size
        body_end = body_start + length
        if body_end + _FRAME_TAIL.size > len(raw):
            return                      # torn tail: frame never committed
        payload = raw[body_start:body_end]
        (crc,) = _FRAME_TAIL.unpack_from(raw, body_end)
        if zlib.crc32(payload) != crc:
            return
        offset = body_end + _FRAME_TAIL.size
        yield payload, offset


@dataclass(frozen=True)
class WalRecord:
    """One committed telemetry append: a whole trial's series plus label.

    ``series`` is float32 C-order ``(n_rows, n_sensors)``; the pair
    ``(job_id, gpu_index)`` is the trial key, unique per store.
    """

    job_id: int
    gpu_index: int
    label: int
    model_name: str
    series: np.ndarray

    def encode(self) -> bytes:
        """Frame this record (magic + length + payload + crc)."""
        series = np.ascontiguousarray(self.series, dtype=np.float32)
        payload = pickle.dumps(
            {
                "job_id": int(self.job_id),
                "gpu_index": int(self.gpu_index),
                "label": int(self.label),
                "model_name": str(self.model_name),
                "shape": series.shape,
                "data": series.tobytes(),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return frame_payload(payload)

    @property
    def key(self) -> tuple[int, int]:
        """The trial key ``(job_id, gpu_index)``."""
        return (self.job_id, self.gpu_index)


def _decode_payload(payload: bytes) -> WalRecord:
    head = pickle.loads(payload)
    series = np.frombuffer(head["data"], dtype=np.float32).reshape(head["shape"])
    return WalRecord(
        job_id=head["job_id"],
        gpu_index=head["gpu_index"],
        label=head["label"],
        model_name=head["model_name"],
        series=series,
    )


def read_wal(path: str | Path) -> tuple[list[WalRecord], int]:
    """Read every intact record of a WAL file.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    offset of the first torn/corrupt frame (== file size when the log is
    clean).  Never modifies the file.
    """
    path = Path(path)
    if not path.is_file():
        return [], 0
    raw = path.read_bytes()
    records: list[WalRecord] = []
    valid = 0
    for payload, end in iter_frames(raw):
        try:
            records.append(_decode_payload(payload))
        except Exception:               # undecodable despite CRC: treat as torn
            break
        valid = end
    return records, valid


class WriteAheadLog:
    """Append-only log for one shard, with staged records and group commit."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._staged: list[WalRecord] = []
        self._trimmed = False

    @property
    def n_staged(self) -> int:
        """Records staged but not yet committed."""
        return len(self._staged)

    def stage(self, record: WalRecord) -> None:
        """Buffer a record in memory; durable only after :meth:`commit`."""
        self._staged.append(record)

    def _trim_torn_tail(self) -> None:
        """Truncate any torn frame a crash left, once, before first append."""
        if self._trimmed:
            return
        self._trimmed = True
        if not self.path.is_file():
            return
        _, valid = read_wal(self.path)
        if valid < self.path.stat().st_size:
            with self.path.open("rb+") as handle:
                handle.truncate(valid)

    def commit(self, *, fsync: bool = True) -> list[WalRecord]:
        """Group-commit every staged record: write all frames, fsync once.

        Returns the records that became durable.  A crash mid-commit
        leaves a torn tail that recovery ignores, so earlier commits are
        never damaged.
        """
        if not self._staged:
            return []
        self._trim_torn_tail()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            with self.path.open("ab") as handle:
                for record in self._staged:
                    frame = record.encode()
                    half = len(frame) // 2
                    handle.write(frame[:half])
                    fault_point("store.wal.append")
                    handle.write(frame[half:])
                if fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
        except BaseException:
            # An unwound fault mid-frame leaves a torn tail; keep the
            # batch staged (commit is retryable — complete frames from a
            # failed attempt are deduped by key on recovery) and force a
            # re-trim before any future append lands behind the tear.
            self._trimmed = False
            raise
        committed = self._staged
        self._staged = []
        return committed

    def truncate(self) -> None:
        """Drop every record (rows now sealed into segments)."""
        if self.path.is_file():
            with self.path.open("rb+") as handle:
                handle.truncate(0)
                handle.flush()
                os.fsync(handle.fileno())
        self._trimmed = True

    def records(self) -> list[WalRecord]:
        """Every intact committed record currently in the log."""
        records, _ = read_wal(self.path)
        return records
