"""The sharded telemetry store: WAL in front, mmap segments behind.

:class:`TelemetryStore` is the crash-safe system of record for simulated
fleet telemetry.  Writes take the durability path::

    append() --stage--> shard WAL --group commit--> flush() --seal-->
    segment files --one atomic manifest swap--> WAL truncate

and reads take the zero-copy path: every sealed trial is a contiguous
row range of one ``np.memmap``-ed segment, so :meth:`series` returns a
float32 view that the serving/replay stack consumes without ever copying
the telemetry.

Crash-safety invariants (pinned by the SIGKILL suite at the
``store.wal.append`` / ``store.segment.finalize`` / ``store.manifest.swap``
fault points):

* A kill mid-commit loses only the uncommitted tail — earlier group
  commits always survive (torn WAL frames are detected by CRC and
  trimmed).
* A kill mid-flush loses *nothing*: rows stay recoverable from the WAL
  until the manifest swap lands, and stray segment files the manifest
  never referenced are invisible.
* A kill between the manifest swap and the WAL truncate double-stores
  rows; recovery dedupes by trial key, preferring the sealed copy.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from repro.data.dataset import LabelledDataset, LabelledTrial
from repro.data.fulltrace import TraceMoments
from repro.store.manifest import Manifest
from repro.store.segment import SegmentReader, SegmentWriter, TrialSlice, segment_paths
from repro.store.wal import WalRecord, WriteAheadLog
from repro.utils.persist import atomic_write_bytes

__all__ = ["TelemetryStore", "STORE_CONFIG_NAME"]

STORE_CONFIG_NAME = "STORECONFIG"
_CONFIG_MAGIC = "repro-store-config-v1"
WAL_NAME = "wal.log"


def _shard_dir_name(shard: int) -> str:
    return f"shard-{shard:02d}"


class TelemetryStore:
    """Crash-safe sharded append-only store for labelled GPU telemetry.

    Parameters
    ----------
    root:
        Store directory; created (with its shard subdirectories) when
        absent, recovered when present.
    n_shards:
        Shard count for a *new* store; an existing store keeps the count
        it was created with (a mismatch raises).  Trials land on shard
        ``job_id % n_shards``.
    fsync:
        Default durability of commits and seals.  Tests that only
        exercise logic may disable it for speed; the crash suite keeps
        it on.
    """

    def __init__(self, root: str | Path, n_shards: int = 4, *, fsync: bool = True):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.root = Path(root)
        self.fsync = fsync
        self.root.mkdir(parents=True, exist_ok=True)
        self.n_shards = self._load_or_init_config(n_shards)
        self.manifest = Manifest.load(self.root) or Manifest(n_shards=self.n_shards)
        if self.manifest.n_shards != self.n_shards:
            raise ValueError(
                f"store at {self.root} has {self.manifest.n_shards} shards, "
                f"asked for {self.n_shards}"
            )
        self._n_sensors: int | None = self.manifest.n_sensors
        self._wals = [
            WriteAheadLog(self._shard_dir(s) / WAL_NAME) for s in range(self.n_shards)
        ]
        #: (shard, seq) -> open segment reader, for every live segment.
        self._readers: dict[tuple[int, int], SegmentReader] = {}
        #: trial key -> (shard, seq) of the sealed segment holding it.
        self._catalog: dict[tuple[int, int], tuple[int, int]] = {}
        #: trial key -> committed-but-unsealed record (WAL-resident).
        self._wal_trials: dict[tuple[int, int], WalRecord] = {}
        self._staged: set[tuple[int, int]] = set()
        self._recover()

    # ------------------------------------------------------------------
    # open/recovery
    def _shard_dir(self, shard: int) -> Path:
        return self.root / _shard_dir_name(shard)

    def _load_or_init_config(self, n_shards: int) -> int:
        path = self.root / STORE_CONFIG_NAME
        if path.is_file():
            with path.open("rb") as handle:
                cfg = pickle.load(handle)
            if not isinstance(cfg, dict) or cfg.get("magic") != _CONFIG_MAGIC:
                raise ValueError(f"{path} is not a repro store config")
            return int(cfg["n_shards"])
        atomic_write_bytes(
            path,
            pickle.dumps(
                {"magic": _CONFIG_MAGIC, "n_shards": n_shards},
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
            fsync=self.fsync,
        )
        return n_shards

    def _recover(self) -> None:
        """Rebuild catalog from the manifest, then replay shard WALs.

        WAL records whose key already appears in a sealed segment are
        crash artifacts of a kill between the manifest swap and the WAL
        truncate; the sealed copy wins.
        """
        for shard in range(self.n_shards):
            for seq in self.manifest.shard_segments(shard):
                reader = SegmentReader(self._shard_dir(shard), seq)
                self._readers[(shard, seq)] = reader
                for key in reader.trials:
                    self._catalog[key] = (shard, seq)
        for shard, wal in enumerate(self._wals):
            for record in wal.records():
                if record.key in self._catalog or record.key in self._wal_trials:
                    continue
                self._wal_trials[record.key] = record

    # ------------------------------------------------------------------
    # write path
    def shard_of(self, job_id: int) -> int:
        """The shard a job's trials land on."""
        return int(job_id) % self.n_shards

    def append(
        self,
        job_id: int,
        series: np.ndarray,
        *,
        label: int = -1,
        model_name: str = "",
        gpu_index: int = 0,
    ) -> tuple[int, int]:
        """Stage one trial's whole series; durable after :meth:`commit`.

        The series is converted to C-order float32 — the store's native
        (and the models' training) dtype.  Returns the trial key.
        Duplicate keys and sensor-width mismatches raise ``ValueError``.
        """
        series = np.ascontiguousarray(series, dtype=np.float32)
        if series.ndim != 2 or series.shape[0] == 0:
            raise ValueError(
                f"series must be non-empty (n_rows, n_sensors), got {series.shape}"
            )
        if self._n_sensors is None:
            self._n_sensors = int(series.shape[1])
        elif series.shape[1] != self._n_sensors:
            raise ValueError(
                f"store holds {self._n_sensors}-sensor telemetry, "
                f"job {job_id} has {series.shape[1]} sensors"
            )
        key = (int(job_id), int(gpu_index))
        if key in self._catalog or key in self._wal_trials or key in self._staged:
            raise ValueError(f"trial {key} already stored (store is append-only)")
        record = WalRecord(
            job_id=key[0],
            gpu_index=key[1],
            label=int(label),
            model_name=str(model_name),
            series=series,
        )
        self._wals[self.shard_of(job_id)].stage(record)
        self._staged.add(key)
        return key

    def commit(self) -> int:
        """Group-commit every staged record (one fsync per touched shard).

        Returns the number of records made durable.
        """
        n = 0
        for wal in self._wals:
            for record in wal.commit(fsync=self.fsync):
                self._wal_trials[record.key] = record
                self._staged.discard(record.key)
                n += 1
        return n

    def flush(self) -> int:
        """Seal committed WAL rows into segments; returns segments sealed.

        Ordering gives atomicity: segments are finalized first (invisible
        until referenced), then one manifest swap makes them all live,
        then the WALs are truncated.  A crash anywhere leaves either the
        old state (rows still in WALs) or the new one (rows sealed,
        duplicates dropped on recovery) — never a torn mixture.
        """
        self.commit()
        if not self._wal_trials:
            return 0
        by_shard: dict[int, list[WalRecord]] = {}
        for record in self._wal_trials.values():
            by_shard.setdefault(self.shard_of(record.job_id), []).append(record)
        sealed: list[tuple[int, int, dict]] = []
        for shard in sorted(by_shard):
            records = by_shard[shard]
            rows = np.concatenate([r.series for r in records], axis=0)
            trials: dict[tuple[int, int], TrialSlice] = {}
            start = 0
            for r in records:
                trials[r.key] = TrialSlice(
                    row_start=start,
                    n_rows=r.series.shape[0],
                    label=r.label,
                    model_name=r.model_name,
                )
                start += r.series.shape[0]
            seq = self.manifest.allocate_seq(shard)
            SegmentWriter.write(
                self._shard_dir(shard), seq, rows, trials, fsync=self.fsync
            )
            self.manifest.add_segment(shard, seq)
            sealed.append((shard, seq, trials))
        self.manifest.n_sensors = self._n_sensors
        self.manifest.save(self.root, fsync=self.fsync)   # the commit point
        for shard, seq, trials in sealed:
            self._readers[(shard, seq)] = SegmentReader(self._shard_dir(shard), seq)
            for key in trials:
                self._catalog[key] = (shard, seq)
        for wal in self._wals:
            wal.truncate()
        self._wal_trials.clear()
        return len(sealed)

    # ------------------------------------------------------------------
    # read path
    def keys(self) -> list[tuple[int, int]]:
        """Every stored trial key ``(job_id, gpu_index)``, sorted."""
        return sorted(set(self._catalog) | set(self._wal_trials))

    def __len__(self) -> int:
        return len(self._catalog) + len(self._wal_trials)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._catalog or key in self._wal_trials

    def series(self, job_id: int, gpu_index: int = 0) -> np.ndarray:
        """One trial's float32 rows — a zero-copy memmap view when sealed."""
        key = (int(job_id), int(gpu_index))
        loc = self._catalog.get(key)
        if loc is not None:
            return self._readers[loc].series(key)
        record = self._wal_trials.get(key)
        if record is not None:
            return record.series
        raise KeyError(f"trial {key} not in store {self.root}")

    def slice_info(self, job_id: int, gpu_index: int = 0) -> TrialSlice:
        """Label/provenance metadata of one stored trial."""
        key = (int(job_id), int(gpu_index))
        loc = self._catalog.get(key)
        if loc is not None:
            return self._readers[loc].trials[key]
        record = self._wal_trials.get(key)
        if record is not None:
            return TrialSlice(
                row_start=0,
                n_rows=record.series.shape[0],
                label=record.label,
                model_name=record.model_name,
            )
        raise KeyError(f"trial {key} not in store {self.root}")

    def moments(self, job_id: int, gpu_index: int = 0) -> TraceMoments:
        """Raw trace moments of one trial.

        Compacted trials return the moments of the *original* rows
        (persisted at compaction time), so full-trace covariance features
        survive downsampling.
        """
        info = self.slice_info(job_id, gpu_index)
        if info.moments is not None:
            return info.moments
        series = self.series(job_id, gpu_index)
        return TraceMoments(series.shape[1]).update(series)

    def iter_trials(self):
        """Yield ``(key, TrialSlice, series)`` for every trial, sorted by key."""
        for key in self.keys():
            yield key, self.slice_info(*key), self.series(*key)

    def labelled_dataset(self, min_samples: int | None = None) -> LabelledDataset:
        """The store's contents as a :class:`LabelledDataset`.

        Sealed trials back their ``series`` with zero-copy float32 memmap
        views (:class:`LabelledTrial` preserves float32).  Trials shorter
        than ``min_samples`` (e.g. after compaction) are skipped when the
        bound is given.
        """
        trials = []
        for key, info, series in self.iter_trials():
            if min_samples is not None and series.shape[0] < min_samples:
                continue
            trials.append(
                LabelledTrial(
                    series=series,
                    label=info.label,
                    model_name=info.model_name,
                    job_id=key[0],
                    gpu_index=key[1],
                )
            )
        return LabelledDataset(trials)

    # ------------------------------------------------------------------
    # bulk ingest
    def ingest(self, jobs, *, flush: bool = True) -> int:
        """Append every GPU series of the given simulated jobs.

        Returns the number of trials ingested; seals them into segments
        unless ``flush=False`` (then they stay WAL-resident after one
        group commit).
        """
        n = 0
        for job in jobs:
            for gs in job.gpu_series:
                self.append(
                    job.record.job_id,
                    gs.data,
                    label=job.record.class_label,
                    model_name=job.record.architecture,
                    gpu_index=gs.gpu_index,
                )
                n += 1
        if flush:
            self.flush()
        else:
            self.commit()
        return n

    def ingest_dataset(self, dataset: LabelledDataset, *, flush: bool = True) -> int:
        """Append every trial of a labelled dataset (see :meth:`ingest`)."""
        for trial in dataset:
            self.append(
                trial.job_id,
                trial.series,
                label=trial.label,
                model_name=trial.model_name,
                gpu_index=trial.gpu_index,
            )
        if flush:
            self.flush()
        else:
            self.commit()
        return len(dataset)

    # ------------------------------------------------------------------
    # maintenance
    @property
    def n_sensors(self) -> int | None:
        """Sensor width, fixed by the first append (None when empty)."""
        return self._n_sensors

    def total_rows(self) -> int:
        """Total stored telemetry rows across segments and WALs."""
        sealed = sum(r.n_rows for r in self._readers.values())
        return sealed + sum(r.series.shape[0] for r in self._wal_trials.values())

    def stats(self) -> dict:
        """Shape summary for logs and the CLI."""
        return {
            "root": str(self.root),
            "n_shards": self.n_shards,
            "n_trials": len(self),
            "n_segments": len(self._readers),
            "wal_resident_trials": len(self._wal_trials),
            "total_rows": self.total_rows(),
            "n_sensors": self._n_sensors,
            "manifest_version": self.manifest.version,
        }

    def verify(self) -> None:
        """CRC-check every live segment; raises ``ValueError`` on damage."""
        for (shard, seq), reader in self._readers.items():
            if not reader.verify():
                raise ValueError(
                    f"segment {seq} of shard {shard} failed its CRC check"
                )

    def gc_stray(self) -> list[Path]:
        """Delete segment/tmp files the manifest does not reference.

        Strays are left by kills mid-flush; they are invisible to readers,
        so collection is safe at any time.  Returns the removed paths.
        """
        removed: list[Path] = []
        for shard in range(self.n_shards):
            shard_dir = self._shard_dir(shard)
            if not shard_dir.is_dir():
                continue
            live: set[Path] = set()
            for seq in self.manifest.shard_segments(shard):
                live.update(segment_paths(shard_dir, seq))
            for path in shard_dir.iterdir():
                if path.name == WAL_NAME or path in live:
                    continue
                if path.suffix in (".dat", ".meta", ".tmp"):
                    path.unlink()
                    removed.append(path)
        return removed

    def close(self) -> None:
        """Release every segment memory map (views become invalid)."""
        for reader in self._readers.values():
            reader.close()

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
