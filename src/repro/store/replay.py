"""Deterministic replay of stored telemetry through the serving stack.

:class:`Replayer` turns a :class:`~repro.store.TelemetryStore` back into
live traffic: the same sealed float32 rows the simulator produced at
ingest time are re-driven — as zero-copy memmap views — through a
:class:`~repro.serve.loadgen.FleetLoadGenerator` against an
:class:`~repro.serve.server.InferenceServer`, optionally with a
:class:`~repro.monitor.inject.DriftInjection` to re-create monitor drift
scenarios from archived data.

Determinism: the replay seed fixes series assignment and stagger, the
shared :class:`~repro.serve.loadgen.SimulatedClock` fixes batching
deadlines, and the store's sorted trial-key order fixes the candidate
list — so two replays of the same store at the same config are
bit-identical, regardless of shard count or the
:attr:`~ReplayConfig.rate` multiplier (rate only rescales simulated
time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.loadgen import FleetLoadGenerator, LoadReport
from repro.serve.server import InferenceServer, ServeConfig
from repro.store.store import TelemetryStore

__all__ = ["ReplayConfig", "Replayer"]


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs of one deterministic store replay.

    ``rate`` is the replay-rate multiplier: ``4.0`` re-drives the fleet
    at 4x the original telemetry cadence (same rows, quarter the
    simulated time).  ``min_samples`` filters short trials exactly like
    the release's eligibility rule.
    """

    n_jobs: int = 16
    samples_per_tick: int = 90
    rate: float = 1.0
    min_samples: int = 540
    max_samples_per_job: int | None = None
    stagger_ticks: int = 3
    seed: int = 0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")


class Replayer:
    """Re-drives a telemetry store through serve/monitor scenarios."""

    def __init__(self, store: TelemetryStore, config: ReplayConfig | None = None):
        self.store = store
        self.config = config or ReplayConfig()

    def loadgen(self, *, drift=None) -> FleetLoadGenerator:
        """A fresh deterministic fleet generator over the store's trials.

        Each call rebuilds the generator from scratch, so successive
        replays are independent and identical.  ``drift`` is an optional
        :class:`~repro.monitor.inject.DriftInjection` applied on top of
        the archived streams.
        """
        cfg = self.config
        return FleetLoadGenerator.from_store(
            self.store,
            n_jobs=cfg.n_jobs,
            min_samples=cfg.min_samples,
            samples_per_tick=cfg.samples_per_tick,
            max_samples_per_job=cfg.max_samples_per_job,
            stagger_ticks=cfg.stagger_ticks,
            seed=cfg.seed,
            rate=cfg.rate,
            drift=drift,
        )

    def run(
        self,
        model,
        *,
        serve_config: ServeConfig | None = None,
        drift=None,
        taps=(),
        route=None,
        on_tick=None,
    ) -> LoadReport:
        """Replay the whole store against a fresh inference server.

        ``model`` is any fitted estimator with ``predict`` over
        ``(n, window, sensors)``; ``taps``/``route``/``on_tick`` pass
        through to the server and generator, so monitor pipelines and
        canary splits run on archived telemetry exactly as they do live.
        """
        gen = self.loadgen(drift=drift)
        server = InferenceServer(
            model, serve_config, clock=gen.clock, taps=taps
        )
        return gen.run(server, route=route, on_tick=on_tick)
