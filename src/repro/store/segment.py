"""Immutable columnar segment files with memory-mapped zero-copy reads.

A segment is the sealed, read-optimized form of a batch of WAL records:

* ``seg-NNNNNN.dat`` — the raw telemetry: fixed-width float32 sensor
  columns, one ``(n_rows, n_sensors)`` C-order frame table.  Every
  trial occupies one contiguous row range, so a per-trial read is a
  single ``np.memmap`` slice — a zero-copy view handed straight to the
  serving/replay path.
* ``seg-NNNNNN.meta`` — the header: per-trial index (key → row range,
  label, model name), a CRC32 over the data bytes, and optional
  downsampling provenance.  Written atomically via
  :func:`repro.utils.persist.atomic_write_bytes`, so it is either absent
  or intact.

Finalization is crash-safe: data bytes go to a ``.tmp`` file, are
fsynced, and only then renamed over the final name (the
``store.segment.finalize`` fault point sits between the two); the meta
follows.  A segment becomes *visible* only once the manifest references
it, so a kill anywhere in this sequence leaves at worst stray files that
readers never consult.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.resilience.faults import fault_point
from repro.utils.persist import atomic_write_bytes

__all__ = ["TrialSlice", "SegmentWriter", "SegmentReader", "segment_paths"]

_META_MAGIC = "repro-store-segment-v1"


@dataclass(frozen=True)
class TrialSlice:
    """One trial's location and metadata inside a segment."""

    row_start: int
    n_rows: int
    label: int
    model_name: str
    downsample_bucket: int = 0          # 0 = raw cadence
    moments: object = None              # TraceMoments of the raw rows, if compacted


def segment_paths(shard_dir: str | Path, seq: int) -> tuple[Path, Path]:
    """``(dat, meta)`` paths of segment ``seq`` in ``shard_dir``."""
    shard_dir = Path(shard_dir)
    stem = f"seg-{seq:06d}"
    return shard_dir / f"{stem}.dat", shard_dir / f"{stem}.meta"


class SegmentWriter:
    """Seals rows + per-trial index into one immutable segment."""

    @staticmethod
    def write(
        shard_dir: str | Path,
        seq: int,
        rows: np.ndarray,
        trials: dict[tuple[int, int], TrialSlice],
        *,
        fsync: bool = True,
    ) -> tuple[Path, Path]:
        """Durably write segment ``seq``; returns ``(dat, meta)`` paths.

        ``rows`` is the concatenated ``(n_rows, n_sensors)`` float32
        table; ``trials`` maps trial keys to their row ranges within it.
        The data file is finalized first (tmp + fsync + rename), then the
        meta; neither is visible to the store until the manifest commits.
        """
        shard_dir = Path(shard_dir)
        shard_dir.mkdir(parents=True, exist_ok=True)
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        if rows.ndim != 2:
            raise ValueError(f"segment rows must be 2-D, got {rows.shape}")
        dat_path, meta_path = segment_paths(shard_dir, seq)
        data = rows.tobytes()

        fd, tmp_name = tempfile.mkstemp(
            dir=shard_dir, prefix=dat_path.name + ".", suffix=".tmp"
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                if fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            fault_point("store.segment.finalize")
            os.replace(tmp, dat_path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        meta = {
            "magic": _META_MAGIC,
            "n_rows": int(rows.shape[0]),
            "n_sensors": int(rows.shape[1]),
            "dtype": "float32",
            "crc32": zlib.crc32(data),
            "trials": dict(trials),
        }
        atomic_write_bytes(
            meta_path,
            pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL),
            fsync=fsync,
        )
        return dat_path, meta_path


class SegmentReader:
    """Zero-copy reads of one sealed segment via ``np.memmap``.

    The map is created lazily on first read and shared by every trial
    view, so replaying a fleet from a segment touches each page once and
    allocates nothing per batch.
    """

    def __init__(self, shard_dir: str | Path, seq: int):
        self.dat_path, self.meta_path = segment_paths(shard_dir, seq)
        self.seq = seq
        with self.meta_path.open("rb") as handle:
            meta = pickle.load(handle)
        if not isinstance(meta, dict) or meta.get("magic") != _META_MAGIC:
            raise ValueError(f"{self.meta_path} is not a repro store segment meta")
        self.n_rows: int = meta["n_rows"]
        self.n_sensors: int = meta["n_sensors"]
        self.crc32: int = meta["crc32"]
        self.trials: dict[tuple[int, int], TrialSlice] = meta["trials"]
        self._mmap: np.memmap | None = None

    @property
    def data(self) -> np.ndarray:
        """The whole segment as a read-only ``(n_rows, n_sensors)`` memmap."""
        if self._mmap is None:
            self._mmap = np.memmap(
                self.dat_path,
                dtype=np.float32,
                mode="r",
                shape=(self.n_rows, self.n_sensors),
            )
        return self._mmap

    def series(self, key: tuple[int, int]) -> np.ndarray:
        """Zero-copy view of one trial's rows (oldest first)."""
        t = self.trials[key]
        return self.data[t.row_start : t.row_start + t.n_rows]

    def verify(self) -> bool:
        """CRC32-check the data bytes against the sealed header."""
        return zlib.crc32(self.dat_path.read_bytes()) == self.crc32

    def close(self) -> None:
        """Release the memory map (views become invalid)."""
        self._mmap = None
