"""The ``repro store-bench`` suite: ingest, replay, recovery, compaction.

Like ``repro perf-bench``, every number this bench reports rides behind a
correctness gate, and any gate failure raises
:class:`~repro.perf.harness.ParityError` (the CLI exits nonzero):

* **Ingest/readback parity** — at every configured shard count, each
  stored series must be bit-identical to the float32 form of the array
  the simulator produced at ingest time, both from the writing process
  and after a fresh recovery open, and served zero-copy (the returned
  view shares memory with the segment memmap).
* **Replay determinism** — the emission label sequence of a fleet
  replay must be identical across shard counts *and* rate multipliers
  (rate rescales simulated time, never data), and every window a
  stream session emits must equal the matching raw slice of the stored
  series.
* **Crash recovery** — a SIGKILL injected at each ``store.*`` fault
  point must leave a store that reopens and serves *exactly* the
  committed prefix: no torn reads, no lost commits.
* **Zero-copy replay memory** — the replay bench's max-RSS growth after
  warmup must stay ~0 (bounded by :data:`RSS_GATE_MB`), the measurable
  form of "mmap reads add no per-batch copies".
* **Compaction moments parity** — full-trace covariance features
  computed from the moments a compacted trial carries must match the
  features of the original raw rows.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.perf.harness import BenchResult, ParityError, measure
from repro.resilience.bench import _run_to_sigkill
from repro.resilience.faults import FaultInjector, FaultSpec, install
from repro.store.compact import compact_store
from repro.store.replay import ReplayConfig, Replayer
from repro.store.store import TelemetryStore

__all__ = ["StoreBenchConfig", "run_store_bench", "RSS_GATE_MB"]

#: Allowed max-RSS growth (MiB) across the timed replay runs.  A copying
#: read path fails this by tens of MiB even at smoke scale.
RSS_GATE_MB = 8.0


@dataclass(frozen=True)
class StoreBenchConfig:
    """Knobs of one store-bench run (``--quick`` shrinks all of them)."""

    seed: int = 2022
    scale: float = 0.02                 # simulator trials_scale
    shard_counts: tuple[int, ...] = (1, 4)
    rates: tuple[float, ...] = (1.0, 4.0)
    n_replay_jobs: int = 16
    samples_per_tick: int = 90
    min_samples: int = 540
    compact_bucket: int = 10
    warmup: int = 1
    repeats: int = 3

    def __post_init__(self):
        if not self.shard_counts or min(self.shard_counts) < 1:
            raise ValueError(f"bad shard_counts {self.shard_counts}")
        if not self.rates or min(self.rates) <= 0:
            raise ValueError(f"bad rates {self.rates}")


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise ParityError(f"store gate failed: {what}")


class _GrandMeanModel:
    """Near-free deterministic model so replays time the I/O path."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Label 1 where the window's grand mean is positive."""
        return (X.mean(axis=(1, 2)) > 0.0).astype(np.int64)


def _simulated_jobs(config: StoreBenchConfig):
    """The bench's telemetry corpus plus its float32 reference arrays."""
    from repro.simcluster.cluster import ClusterSimulator, SimulationConfig

    sim = ClusterSimulator(
        SimulationConfig(seed=config.seed, trials_scale=config.scale)
    )
    jobs, _ = sim.generate()
    reference = {
        (job.record.job_id, gs.gpu_index):
            np.ascontiguousarray(gs.data, dtype=np.float32)
        for job in jobs
        for gs in job.gpu_series
    }
    return jobs, reference


# ----------------------------------------------------------------------
# gate (a): ingest/readback bit-parity and replay determinism
# ----------------------------------------------------------------------
def _emission_trace(store: TelemetryStore, config: StoreBenchConfig, rate: float):
    """The replayed emission sequence, as comparable plain tuples."""
    replayer = Replayer(store, ReplayConfig(
        n_jobs=config.n_replay_jobs,
        samples_per_tick=config.samples_per_tick,
        min_samples=config.min_samples,
        rate=rate,
        seed=config.seed,
    ))
    report = replayer.run(_GrandMeanModel())
    return [
        (e.job_id, int(e.prediction.label), int(e.prediction.smoothed_label))
        for e in report.emissions
    ]


def _check_parity(config: StoreBenchConfig, jobs, reference, workdir: Path) -> None:
    """Run the ingest/readback and replay-determinism gates."""
    traces = []
    for n_shards in config.shard_counts:
        root = workdir / f"parity-{n_shards}"
        with TelemetryStore(root, n_shards=n_shards) as store:
            store.ingest(jobs)
            for key, expected in reference.items():
                _require(
                    np.array_equal(store.series(*key), expected),
                    f"stored series {key} at n_shards={n_shards}",
                )
        with TelemetryStore(root, n_shards=n_shards) as store:
            for key, expected in reference.items():
                got = store.series(*key)
                _require(
                    np.array_equal(got, expected),
                    f"recovered series {key} at n_shards={n_shards}",
                )
            first = next(iter(reference))
            _require(
                np.shares_memory(
                    store.series(*first),
                    store._readers[store._catalog[first]].data,
                ),
                "sealed reads are zero-copy views of the segment memmap",
            )
            for rate in config.rates:
                traces.append((n_shards, rate, _emission_trace(store, config, rate)))
    base_shards, base_rate, base_trace = traces[0]
    for n_shards, rate, trace in traces[1:]:
        _require(
            trace == base_trace,
            f"replay at n_shards={n_shards} rate={rate} diverged from "
            f"n_shards={base_shards} rate={base_rate}",
        )
    _require(len(base_trace) > 0, "replay produced no emissions")


def _check_window_parity(config: StoreBenchConfig, reference, workdir: Path) -> None:
    """Every emitted window must equal the raw slice of the stored rows."""
    from repro.serve.session import StreamSession

    root = workdir / f"parity-{config.shard_counts[0]}"
    window, hop = config.min_samples, config.samples_per_tick
    with TelemetryStore(root, n_shards=config.shard_counts[0]) as store:
        checked = 0
        for key, expected in reference.items():
            if expected.shape[0] < window or checked >= 8:
                continue
            stream = store.series(*key)
            session = StreamSession(session_id=key, window=window, hop=hop)
            for start in range(0, stream.shape[0], hop):
                for req in session.push(stream[start : start + hop]):
                    end = req.sample_index
                    _require(
                        np.array_equal(req.window, expected[end - window : end]),
                        f"replayed window for {key} @ {end}",
                    )
            checked += 1
        _require(checked > 0, "no trial long enough for window parity")


# ----------------------------------------------------------------------
# gate (b): SIGKILL recovery at every store.* fault point
# ----------------------------------------------------------------------
def _crash_payload(root: str | Path, point: str, at_hit: int, n_shards: int) -> dict:
    return {
        "root": str(root),
        "point": point,
        "at_hit": at_hit,
        "n_shards": n_shards,
    }


def _committed_trials() -> list[tuple[int, np.ndarray]]:
    """The two trials the crash workers durably commit before dying."""
    rng = np.random.default_rng(7)
    return [
        (0, rng.normal(size=(600, 7)).astype(np.float32)),
        (1, rng.normal(size=(480, 7)).astype(np.float32)),
    ]


def _victim_trial() -> tuple[int, np.ndarray]:
    """The trial whose durability op the injected fault interrupts."""
    rng = np.random.default_rng(11)
    return 2, rng.normal(size=(540, 7)).astype(np.float32)


def _crash_store_worker(payload: dict) -> None:
    """Sacrificial child: commit two trials, then die at a fault point.

    ``store.wal.append`` fires during the third trial's commit;
    ``store.segment.finalize`` / ``store.manifest.swap`` fire during the
    flush that tries to seal all three.
    """
    install(FaultInjector([
        FaultSpec(payload["point"], at_hit=payload["at_hit"], mode="kill")
    ]))
    store = TelemetryStore(payload["root"], n_shards=payload["n_shards"])
    for job_id, series in _committed_trials():
        store.append(job_id, series, label=job_id, model_name=f"m{job_id}")
    store.commit()
    job_id, series = _victim_trial()
    store.append(job_id, series, label=job_id, model_name=f"m{job_id}")
    if payload["point"] == "store.wal.append":
        store.commit()
    else:
        store.flush()
    raise SystemExit("worker was supposed to die before finishing")


def _check_recovery(config: StoreBenchConfig, workdir: Path) -> None:
    """SIGKILL each store.* point; reopen must serve the committed prefix.

    The committed prefix differs by point: a kill mid-WAL-append loses
    exactly the uncommitted victim, while a kill anywhere in the flush
    sequence (segment finalize, manifest swap) loses *nothing* — the
    flush group-committed the victim to the WAL before sealing, and the
    WAL survives until the manifest swap lands.
    """
    pair = _committed_trials()
    all_three = pair + [_victim_trial()]
    scenarios = [
        # wal.append hits once per record per commit: 2 for the committed
        # pair, so hit 3 lands mid-frame in the victim's commit.
        ("store.wal.append", 3, pair),
        ("store.segment.finalize", 1, all_three),
        ("store.manifest.swap", 1, all_three),
    ]
    for n_shards in config.shard_counts:
        for point, at_hit, survivors in scenarios:
            root = workdir / f"crash-{point.replace('.', '_')}-{n_shards}"
            killed = _run_to_sigkill(
                _crash_store_worker,
                _crash_payload(root, point, at_hit, n_shards),
            )
            _require(killed, f"worker survived fault at {point}")
            with TelemetryStore(root, n_shards=n_shards) as store:
                _require(
                    store.keys() == [(j, 0) for j, _ in survivors],
                    f"committed prefix after kill at {point} "
                    f"(n_shards={n_shards}): got {store.keys()}",
                )
                for job_id, series in survivors:
                    _require(
                        np.array_equal(store.series(job_id), series),
                        f"series {job_id} intact after kill at {point}",
                    )
                store.verify()
                store.gc_stray()
                for job_id, series in survivors:
                    _require(
                        np.array_equal(store.series(job_id), series),
                        f"series {job_id} intact after gc at {point}",
                    )


# ----------------------------------------------------------------------
# gate (e): compaction preserves full-trace features via moments
# ----------------------------------------------------------------------
def _check_compaction(config: StoreBenchConfig, jobs, reference, workdir: Path):
    """Compact a store and gate moments-derived features against raw rows."""
    from repro.data.fulltrace import full_trace_covariance

    root = workdir / "compact"
    with TelemetryStore(root, n_shards=config.shard_counts[0]) as store:
        store.ingest(jobs)
        n_sensors = store.n_sensors
        mean = np.zeros(n_sensors)
        scale = np.ones(n_sensors)
        raw_features = {
            key: full_trace_covariance(expected, mean, scale)
            for key, expected in reference.items()
        }
        rows_before = store.total_rows()
        report = compact_store(
            store, bucket=config.compact_bucket, keep_segments=0
        )
        _require(report.segments_compacted > 0, "compaction compacted nothing")
        _require(
            store.total_rows() < rows_before,
            "compaction did not reduce row count",
        )
        for key in reference:
            got = store.moments(*key).standardized_covariance(mean, scale)
            _require(
                np.allclose(got, raw_features[key], rtol=1e-8, atol=1e-10),
                f"moments-derived features for {key} after compaction",
            )
    with TelemetryStore(root, n_shards=config.shard_counts[0]) as store:
        key = next(iter(reference))
        got = store.moments(*key).standardized_covariance(mean, scale)
        _require(
            np.allclose(got, raw_features[key], rtol=1e-8, atol=1e-10),
            "moments survive a reopen",
        )
        return report


# ----------------------------------------------------------------------
def run_store_bench(
    config: StoreBenchConfig | None = None, *, workdir: str | Path | None = None
) -> list[BenchResult]:
    """Run every store bench and gate; returns the BENCH_store.json rows.

    Raises :class:`ParityError` when any gate fails — torn read, replay
    divergence, RSS growth, or feature drift — so callers can turn that
    into a nonzero exit.
    """
    config = config or StoreBenchConfig()
    own_workdir = workdir is None
    workdir = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="repro-store-bench-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    try:
        jobs, reference = _simulated_jobs(config)
        total_rows = int(sum(v.shape[0] for v in reference.values()))
        bench_cfg = {
            "scale": config.scale,
            "trials": len(reference),
            "rows": total_rows,
            "shard_counts": list(config.shard_counts),
            "rates": list(config.rates),
        }

        _check_parity(config, jobs, reference, workdir)
        _check_window_parity(config, reference, workdir)
        _check_recovery(config, workdir)

        results: list[BenchResult] = []

        def ingest_fresh() -> None:
            root = workdir / "ingest"
            shutil.rmtree(root, ignore_errors=True)
            with TelemetryStore(root, n_shards=config.shard_counts[-1]) as store:
                store.ingest(jobs)

        results.append(measure(
            ingest_fresh, bench="store.ingest", n_samples=total_rows,
            config=bench_cfg, warmup=config.warmup, repeats=config.repeats,
        ))

        def recover_scan() -> None:
            with TelemetryStore(
                workdir / "ingest", n_shards=config.shard_counts[-1]
            ) as store:
                for _key, _info, series in store.iter_trials():
                    series[0]            # touch first page of every trial

        results.append(measure(
            recover_scan, bench="store.recover", n_samples=total_rows,
            config=bench_cfg, warmup=config.warmup, repeats=config.repeats,
        ))

        replay_store = TelemetryStore(
            workdir / "ingest", n_shards=config.shard_counts[-1]
        )
        try:
            replayer = Replayer(replay_store, ReplayConfig(
                n_jobs=config.n_replay_jobs,
                samples_per_tick=config.samples_per_tick,
                min_samples=config.min_samples,
                rate=config.rates[-1],
                seed=config.seed,
            ))
            gen = replayer.loadgen()
            replay_rows = sum(
                gen.job_stream(j).shape[0] for j in range(gen.n_jobs)
            )
            replay = measure(
                lambda: replayer.run(_GrandMeanModel()),
                bench="store.replay", n_samples=int(replay_rows),
                config={**bench_cfg, "n_jobs": config.n_replay_jobs,
                        "rate": config.rates[-1]},
                warmup=max(1, config.warmup), repeats=config.repeats,
            )
            _require(
                replay.rss_mb <= RSS_GATE_MB,
                f"replay RSS grew {replay.rss_mb:.1f} MiB "
                f"(> {RSS_GATE_MB} MiB): read path is copying",
            )
            results.append(replay)
        finally:
            replay_store.close()

        _check_compaction(config, jobs, reference, workdir)

        def compact_fresh() -> None:
            root = workdir / "compact-bench"
            shutil.rmtree(root, ignore_errors=True)
            with TelemetryStore(root, n_shards=config.shard_counts[0]) as store:
                store.ingest(jobs)
                compact_store(store, bucket=config.compact_bucket,
                              keep_segments=0)

        results.append(measure(
            compact_fresh, bench="store.compact", n_samples=total_rows,
            config={**bench_cfg, "bucket": config.compact_bucket},
            warmup=0, repeats=max(2, config.repeats - 1),
        ))
        return results
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
