"""Per-job-type GPU power efficiency (Section IV-B's suggested analysis).

For each architecture class, relate sustained GPU utilization to power
draw: ``efficiency = mean utilization (%) / mean power (W)`` over the
active portion of each trial, aggregated per class.  Classes that convert
watts into utilization poorly are flagged — the operational insight the
paper proposes datacenter operators could act on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import LabelledDataset
from repro.simcluster.architectures import architecture_names
from repro.simcluster.sensors import gpu_sensor_index

__all__ = ["EfficiencyReport", "job_type_efficiency"]

_UTIL = gpu_sensor_index("utilization_gpu_pct")
_POWER = gpu_sensor_index("power_draw_W")


@dataclass(frozen=True)
class EfficiencyReport:
    """Per-class power-efficiency summary."""

    class_name: str
    n_trials: int
    mean_util_pct: float
    mean_power_w: float
    util_per_watt: float      # the paper's efficiency proxy
    energy_kj_per_trial: float

    def row(self) -> dict:
        """This report as a printable dict row."""
        return {
            "class": self.class_name,
            "trials": self.n_trials,
            "util %": f"{self.mean_util_pct:.1f}",
            "power W": f"{self.mean_power_w:.1f}",
            "util/W": f"{self.util_per_watt:.3f}",
            "kJ/trial": f"{self.energy_kj_per_trial:.0f}",
        }


def job_type_efficiency(
    dataset: LabelledDataset,
    *,
    active_util_threshold: float = 10.0,
    dt_s: float = 60.0 / 540.0,
) -> list[EfficiencyReport]:
    """Compute the per-class efficiency table.

    Parameters
    ----------
    dataset:
        Labelled trials (full series, not windows — the analysis wants the
        whole job including its idle phases for the energy column, but the
        efficiency ratio uses only *active* samples).
    active_util_threshold:
        Samples below this utilization (startup, checkpoints) are excluded
        from the efficiency ratio so it reflects compute behaviour, not
        duty cycle.
    dt_s:
        Sampling interval, for the energy integral.

    Returns
    -------
    Reports sorted by ``util_per_watt`` descending (most efficient first).
    """
    if len(dataset) == 0:
        raise ValueError("empty labelled dataset")
    names = architecture_names()
    sums: dict[int, list] = {}
    for trial in dataset:
        util = trial.series[:, _UTIL]
        power = trial.series[:, _POWER]
        active = util >= active_util_threshold
        if not active.any():
            continue
        entry = sums.setdefault(trial.label, [0, 0.0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += float(util[active].mean())
        entry[2] += float(power[active].mean())
        entry[3] += float(power.sum() * dt_s) / 1e3  # kJ over the series

    reports = []
    for label, (n, util_sum, power_sum, energy_sum) in sums.items():
        mean_util = util_sum / n
        mean_power = power_sum / n
        reports.append(EfficiencyReport(
            class_name=names[label],
            n_trials=n,
            mean_util_pct=mean_util,
            mean_power_w=mean_power,
            util_per_watt=mean_util / max(mean_power, 1e-9),
            energy_kj_per_trial=energy_sum / n,
        ))
    reports.sort(key=lambda r: r.util_per_watt, reverse=True)
    return reports
