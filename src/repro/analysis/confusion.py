"""Confusion structure analysis: where do classifiers actually fail?

The 26 classes group into 6 families (Table I); most residual error in the
baselines is *within-family* (e.g. adjacent U-Net widths).  These helpers
quantify that: a family-level confusion matrix and the hardest class
pairs.
"""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import confusion_matrix
from repro.simcluster.architectures import ARCHITECTURES, architecture_names

__all__ = ["family_confusion", "hardest_pairs", "within_family_error_fraction"]

_FAMILIES = ["VGG", "ResNet", "Inception", "U-Net", "NLP", "GNN"]
_FAMILY_OF = np.array(
    [_FAMILIES.index(a.family.value) for a in ARCHITECTURES], dtype=np.int64
)


def family_confusion(y_true, y_pred) -> tuple[np.ndarray, list[str]]:
    """Collapse a 26-class confusion into the 6 Table I families.

    Returns ``(C, family_names)`` with ``C[i, j]`` the count of items whose
    true family is ``i`` predicted into family ``j``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.max() >= len(_FAMILY_OF) or y_pred.max() >= len(_FAMILY_OF):
        raise ValueError("labels exceed the 26 known classes")
    return (
        confusion_matrix(_FAMILY_OF[y_true], _FAMILY_OF[y_pred],
                         n_classes=len(_FAMILIES)),
        list(_FAMILIES),
    )


def within_family_error_fraction(y_true, y_pred) -> float:
    """Fraction of *errors* that stay inside the true class's family.

    High values mean the classifier solves the family problem and stumbles
    only on sibling variants — the expected failure mode on this dataset.
    Returns NaN when there are no errors.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    wrong = y_true != y_pred
    if not wrong.any():
        return float("nan")
    same_family = _FAMILY_OF[y_true[wrong]] == _FAMILY_OF[y_pred[wrong]]
    return float(same_family.mean())


def hardest_pairs(y_true, y_pred, top: int = 5) -> list[dict]:
    """Most-confused (true, predicted) class pairs, descending by count."""
    names = architecture_names()
    C = confusion_matrix(y_true, y_pred, n_classes=len(names))
    off = C.copy()
    np.fill_diagonal(off, 0)
    flat = np.argsort(off, axis=None)[::-1][:top]
    pairs = []
    for idx in flat:
        i, j = np.unravel_index(idx, off.shape)
        if off[i, j] == 0:
            break
        pairs.append({
            "true": names[i],
            "predicted": names[j],
            "count": int(off[i, j]),
            "same_family": bool(_FAMILY_OF[i] == _FAMILY_OF[j]),
        })
    return pairs
