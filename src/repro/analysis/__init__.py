"""Operational analyses the paper motivates.

Section IV-B suggests: "one could inspect the relative efficiency of the
GPU in converting power to utilization for different job types by the
corresponding magnitudes of measurements from the utilization GPU and
power draw sensors, and contrast across different job types.  This would
give further insight on job efficiency on a more granular level."

:mod:`repro.analysis.efficiency` implements exactly that analysis;
:mod:`repro.analysis.confusion` breaks classification errors down by
architecture family (where the hard confusions live).
"""

from repro.analysis.efficiency import EfficiencyReport, job_type_efficiency
from repro.analysis.confusion import (
    family_confusion,
    hardest_pairs,
    within_family_error_fraction,
)

__all__ = [
    "job_type_efficiency",
    "EfficiencyReport",
    "family_confusion",
    "hardest_pairs",
    "within_family_error_fraction",
]
