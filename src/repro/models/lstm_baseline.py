"""The paper's bidirectional LSTM classifier (Section V-A).

Architecture, verbatim from the paper: the input sequence feeds a
bidirectional LSTM (hidden 128, all 7 sensors as the feature vector); the
two directions' outputs are concatenated and passed through a
fully-connected layer projecting down to a feature size equal to the
*length of the sequence*; then dropout (p = 0.5), a leaky ReLU, a second
fully-connected layer to the class count, and a log-softmax.  The stacked
variant inserts a second bidirectional LSTM with dropout 0.5 between the
layers.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BiLSTM,
    Dropout,
    LeakyReLU,
    Linear,
    Module,
    Tensor,
    log_softmax,
)
from repro.utils.rng import spawn_generators

__all__ = ["LSTMClassifier"]


class LSTMClassifier(Module):
    """Bidirectional (optionally stacked) LSTM classifier.

    Parameters
    ----------
    n_sensors:
        Input feature count (7 in the challenge data).
    seq_len:
        Window length; the first FC layer projects to this size, per the
        paper's description.
    n_classes:
        Output classes (26).
    hidden_size:
        LSTM hidden width (paper: 128).
    n_layers:
        1 or 2 stacked bidirectional LSTMs (paper evaluates both).
    dropout:
        Dropout probability after the projection and between stacked
        layers (paper: 0.5).
    """

    def __init__(
        self,
        n_sensors: int = 7,
        seq_len: int = 540,
        n_classes: int = 26,
        hidden_size: int = 128,
        n_layers: int = 1,
        dropout: float = 0.5,
        seed: int = 0,
    ):
        super().__init__()
        if n_layers not in (1, 2):
            raise ValueError(f"n_layers must be 1 or 2, got {n_layers}")
        rngs = spawn_generators(seed, 6)
        self.n_layers = n_layers
        self.hidden_size = hidden_size
        self.lstm1 = BiLSTM(n_sensors, hidden_size, rng=rngs[0])
        if n_layers == 2:
            self.inter_dropout = Dropout(dropout, rng=rngs[1])
            self.lstm2 = BiLSTM(2 * hidden_size, hidden_size, rng=rngs[2])
        self.fc1 = Linear(2 * hidden_size, seq_len, rng=rngs[3])
        self.dropout = Dropout(dropout, rng=rngs[4])
        self.act = LeakyReLU()
        self.fc2 = Linear(seq_len, n_classes, rng=rngs[5])

    def forward(self, x: Tensor) -> Tensor:
        """``(N, T, sensors)`` → ``(N, n_classes)`` log-probabilities."""
        out = self.lstm1(x)
        if self.n_layers == 2:
            out = self.lstm2(self.inter_dropout(out))
            final = self.lstm2.final_states(out)
        else:
            final = self.lstm1.final_states(out)
        h = self.fc1(final)
        h = self.act(self.dropout(h))
        return log_softmax(self.fc2(h), axis=-1)

    def predict(self, X: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Convenience batched argmax prediction on raw arrays."""
        from repro.nn.tensor import no_grad

        self.eval()
        preds = np.empty(X.shape[0], dtype=np.int64)
        with no_grad():
            for start in range(0, X.shape[0], batch_size):
                out = self(Tensor(np.asarray(X[start : start + batch_size],
                                             dtype=np.float32)))
                preds[start:start + out.data.shape[0]] = np.argmax(out.data,
                                                                   axis=1)
        return preds
