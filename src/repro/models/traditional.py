"""Traditional-ML baselines (paper Section IV).

Each factory returns a :class:`repro.ml.preprocessing.Pipeline` that
consumes the *3-D challenge tensor* directly:

* PCA pathway: per-sensor standardize → flatten to R^3780 → PCA(k).
* Covariance pathway: per-sensor standardize → covariance upper triangle
  (R^28).

The paper's grids: SVM sweeps C ∈ {0.1, 1, 10}; RF sweeps trees ∈
{50, 100, 250}; PCA pipelines additionally sweep k ∈ {28, 64, 256, 512};
XGBoost (on covariance features) sweeps γ, α (L1) and λ (L2).
"""

from __future__ import annotations

from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.preprocessing import (
    CovarianceFeatures,
    Flatten3D,
    PCA,
    Pipeline,
    TimeSeriesStandardScaler,
)
from repro.ml.svm import SVC

__all__ = [
    "PAPER_SVM_C",
    "PAPER_RF_TREES",
    "PAPER_PCA_DIMS",
    "PAPER_XGB_GRID",
    "make_svm_pca",
    "make_svm_cov",
    "make_rf_pca",
    "make_rf_cov",
    "make_xgb_cov",
    "traditional_grid",
]

#: Section IV-A hyperparameter values.
PAPER_SVM_C = (0.1, 1.0, 10.0)
PAPER_RF_TREES = (50, 100, 250)
PAPER_PCA_DIMS = (28, 64, 256, 512)

#: Section IV-B grid: minimum split gain, L1 and L2 leaf regularization.
PAPER_XGB_GRID = {
    "clf__gamma": [0.0, 0.1, 1.0],
    "clf__reg_alpha": [0.0, 0.1, 1.0],
    "clf__reg_lambda": [0.1, 1.0, 10.0],
}


def make_svm_pca(C: float = 1.0, n_components: int = 64, **svc_kwargs) -> Pipeline:
    """SVM with PCA reduction ("SVM PCA" row of Table V)."""
    return Pipeline([
        ("scale", TimeSeriesStandardScaler()),
        ("flatten", Flatten3D()),
        ("pca", PCA(n_components=n_components)),
        ("clf", SVC(C=C, **svc_kwargs)),
    ])


def make_svm_cov(C: float = 1.0, **svc_kwargs) -> Pipeline:
    """SVM with covariance reduction ("SVM Cov." row of Table V)."""
    return Pipeline([
        ("scale", TimeSeriesStandardScaler()),
        ("cov", CovarianceFeatures()),
        ("clf", SVC(C=C, **svc_kwargs)),
    ])


def make_rf_pca(
    n_estimators: int = 100, n_components: int = 64, random_state: int = 0, **rf_kwargs
) -> Pipeline:
    """Random forest with PCA reduction ("RF PCA" row of Table V)."""
    return Pipeline([
        ("scale", TimeSeriesStandardScaler()),
        ("flatten", Flatten3D()),
        ("pca", PCA(n_components=n_components)),
        ("clf", RandomForestClassifier(
            n_estimators=n_estimators, random_state=random_state, **rf_kwargs)),
    ])


def make_rf_cov(
    n_estimators: int = 100, random_state: int = 0, **rf_kwargs
) -> Pipeline:
    """Random forest with covariance reduction ("RF Cov." — the paper's
    best traditional model)."""
    return Pipeline([
        ("scale", TimeSeriesStandardScaler()),
        ("cov", CovarianceFeatures()),
        ("clf", RandomForestClassifier(
            n_estimators=n_estimators, random_state=random_state, **rf_kwargs)),
    ])


def make_xgb_cov(
    n_estimators: int = 40,
    gamma: float = 0.0,
    reg_alpha: float = 0.0,
    reg_lambda: float = 1.0,
    max_depth: int = 6,
    random_state: int = 0,
    **xgb_kwargs,
) -> Pipeline:
    """XGBoost on covariance features (Section IV-B: 88.47 % on
    60-random-1 after 40 boosting rounds)."""
    return Pipeline([
        ("scale", TimeSeriesStandardScaler()),
        ("cov", CovarianceFeatures()),
        ("clf", GradientBoostingClassifier(
            n_estimators=n_estimators, gamma=gamma, reg_alpha=reg_alpha,
            reg_lambda=reg_lambda, max_depth=max_depth,
            random_state=random_state, **xgb_kwargs)),
    ])


def traditional_grid(
    model: str,
    *,
    pca_dims: tuple[int, ...] = PAPER_PCA_DIMS,
    svm_C: tuple[float, ...] = PAPER_SVM_C,
    rf_trees: tuple[int, ...] = PAPER_RF_TREES,
) -> tuple[Pipeline, dict]:
    """Pipeline + the paper's grid for one of the four Table V models.

    ``model`` ∈ {"svm_pca", "svm_cov", "rf_pca", "rf_cov"}.  ``pca_dims``
    is exposed so reduced-scale runs can cap dimensions at the sample
    count.
    """
    if model == "svm_pca":
        return make_svm_pca(), {
            "pca__n_components": list(pca_dims), "clf__C": list(svm_C)}
    if model == "svm_cov":
        return make_svm_cov(), {"clf__C": list(svm_C)}
    if model == "rf_pca":
        return make_rf_pca(), {
            "pca__n_components": list(pca_dims),
            "clf__n_estimators": list(rf_trees)}
    if model == "rf_cov":
        return make_rf_cov(), {"clf__n_estimators": list(rf_trees)}
    raise ValueError(
        f"unknown model {model!r}; expected svm_pca/svm_cov/rf_pca/rf_cov"
    )
