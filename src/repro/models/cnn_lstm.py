"""CNN-LSTM baselines (paper Section V-B).

"We feed the input sequence into two 1-dimensional convolutional layers
sandwiching a max pooling layer to reduce the dimensionality of the feature
maps.  This output is then fed into the same bidirectional LSTM architecture
from Section V-A" — with the side benefit of shrinking the LSTM's sequence
~8× and speeding training accordingly.

Four variants are evaluated in Table VI: hidden 128, 256, 512, and a
hidden-512 model with a smaller kernel and stride (longer output sequence
into the LSTM).
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BiLSTM,
    Conv1d,
    Dropout,
    LeakyReLU,
    Linear,
    MaxPool1d,
    Module,
    Tensor,
    log_softmax,
)
from repro.nn.layers.conv import conv_output_length
from repro.utils.rng import spawn_generators

__all__ = ["CNNLSTMClassifier", "CNN_LSTM_PAPER_VARIANTS"]

#: Table VI CNN-LSTM rows: (label, hidden size, kernel, stride).
CNN_LSTM_PAPER_VARIANTS: tuple[tuple[str, int, int, int], ...] = (
    ("CNN-LSTM (h=128)", 128, 7, 2),
    ("CNN-LSTM (h=256)", 256, 7, 2),
    ("CNN-LSTM (h=512)", 512, 7, 2),
    ("CNN-LSTM (h=512, small kernel)", 512, 3, 1),
)


class CNNLSTMClassifier(Module):
    """Conv → pool → conv front end feeding the Section V-A BiLSTM head.

    Parameters
    ----------
    kernel_size, stride:
        Shared by both conv layers.  The default (7, 2) with pool 2 shrinks
        a 540-sample window to ~65 LSTM steps (the ~8× speed-up); the
        "small kernel" variant (3, 1) keeps ~267 steps.
    conv_channels:
        Feature maps of the two conv layers.
    """

    def __init__(
        self,
        n_sensors: int = 7,
        seq_len: int = 540,
        n_classes: int = 26,
        hidden_size: int = 128,
        kernel_size: int = 7,
        stride: int = 2,
        pool_size: int = 2,
        conv_channels: tuple[int, int] = (32, 64),
        dropout: float = 0.5,
        seed: int = 0,
    ):
        super().__init__()
        rngs = spawn_generators(seed, 7)
        c1, c2 = conv_channels
        self.conv1 = Conv1d(n_sensors, c1, kernel_size, stride=stride, rng=rngs[0])
        self.pool = MaxPool1d(pool_size)
        self.conv2 = Conv1d(c1, c2, kernel_size, stride=stride, rng=rngs[1])
        self.conv_act = LeakyReLU()
        self.hidden_size = hidden_size

        # Output sequence length after the conv stack (the LSTM's T').
        t1 = conv_output_length(seq_len, kernel_size, stride)
        t2 = conv_output_length(t1, pool_size, pool_size)
        t3 = conv_output_length(t2, kernel_size, stride)
        self.lstm_seq_len = t3

        self.lstm = BiLSTM(c2, hidden_size, rng=rngs[2])
        self.fc1 = Linear(2 * hidden_size, seq_len, rng=rngs[3])
        self.dropout = Dropout(dropout, rng=rngs[4])
        self.act = LeakyReLU()
        self.fc2 = Linear(seq_len, n_classes, rng=rngs[5])

    def forward(self, x: Tensor) -> Tensor:
        """``(N, T, sensors)`` → ``(N, n_classes)`` log-probabilities."""
        h = self.conv_act(self.conv1(x))
        h = self.pool(h)
        h = self.conv_act(self.conv2(h))
        out = self.lstm(h)
        final = self.lstm.final_states(out)
        z = self.act(self.dropout(self.fc1(final)))
        return log_softmax(self.fc2(z), axis=-1)

    def predict(self, X: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Predict class labels for X."""
        from repro.nn.tensor import no_grad

        self.eval()
        preds = np.empty(X.shape[0], dtype=np.int64)
        with no_grad():
            for start in range(0, X.shape[0], batch_size):
                out = self(Tensor(np.asarray(X[start : start + batch_size],
                                             dtype=np.float32)))
                preds[start:start + out.data.shape[0]] = np.argmax(out.data,
                                                                   axis=1)
        return preds
