"""The paper's baseline models, exactly as configured in Sections IV and V.

* :mod:`repro.models.traditional` — SVM / RF / XGBoost pipelines with the
  PCA and covariance reductions and the paper's hyperparameter grids.
* :mod:`repro.models.lstm_baseline` — the bidirectional LSTM classifier
  (h=128, 1- and 2-layer) of Section V-A.
* :mod:`repro.models.cnn_lstm` — the CNN-LSTM variants of Section V-B.
"""

from repro.models.traditional import (
    PAPER_PCA_DIMS,
    PAPER_RF_TREES,
    PAPER_SVM_C,
    PAPER_XGB_GRID,
    make_rf_cov,
    make_rf_pca,
    make_svm_cov,
    make_svm_pca,
    make_xgb_cov,
    traditional_grid,
)
from repro.models.lstm_baseline import LSTMClassifier
from repro.models.cnn_lstm import CNNLSTMClassifier, CNN_LSTM_PAPER_VARIANTS
from repro.models.convlstm_model import ConvLSTMClassifier

__all__ = [
    "PAPER_SVM_C",
    "PAPER_RF_TREES",
    "PAPER_PCA_DIMS",
    "PAPER_XGB_GRID",
    "make_svm_pca",
    "make_svm_cov",
    "make_rf_pca",
    "make_rf_cov",
    "make_xgb_cov",
    "traditional_grid",
    "LSTMClassifier",
    "CNNLSTMClassifier",
    "CNN_LSTM_PAPER_VARIANTS",
    "ConvLSTMClassifier",
]
