"""ConvLSTM workload classifier (the paper's Section VI future-work model).

Pipeline: segment the 60 s window into coarse steps → :class:`ConvLSTM1d`
scan (convolutional input-to-state and state-to-state transforms) → global
average over the final state's fine axis → the same classification head as
the Section V baselines (projection, dropout, leaky ReLU, log-softmax).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Dropout, LeakyReLU, Linear, Module, Tensor, log_softmax
from repro.nn.layers.convlstm import ConvLSTM1d, segment_sequence
from repro.utils.rng import spawn_generators

__all__ = ["ConvLSTMClassifier"]


class ConvLSTMClassifier(Module):
    """ConvLSTM over segmented telemetry windows.

    Parameters
    ----------
    n_segments:
        Coarse recurrent steps the window is split into (~12 two-second
        segments for a 540-sample window hits the ConvLSTM sweet spot:
        short recurrence, wide receptive field per step).
    hidden_channels:
        ConvLSTM state channels.
    """

    def __init__(
        self,
        n_sensors: int = 7,
        seq_len: int = 540,
        n_classes: int = 26,
        n_segments: int = 12,
        hidden_channels: int = 24,
        kernel_size: int = 5,
        head_width: int = 128,
        dropout: float = 0.5,
        seed: int = 0,
    ):
        super().__init__()
        if seq_len // n_segments < kernel_size:
            raise ValueError(
                f"segments of {seq_len // n_segments} samples are shorter "
                f"than kernel_size={kernel_size}"
            )
        rngs = spawn_generators(seed, 4)
        self.n_segments = n_segments
        self.convlstm = ConvLSTM1d(n_sensors, hidden_channels, kernel_size,
                                   rng=rngs[0])
        self.fc1 = Linear(hidden_channels, head_width, rng=rngs[1])
        self.dropout = Dropout(dropout, rng=rngs[2])
        self.act = LeakyReLU()
        self.fc2 = Linear(head_width, n_classes, rng=rngs[3])

    def forward(self, x: Tensor) -> Tensor:
        """``(N, T, sensors)`` → ``(N, n_classes)`` log-probabilities."""
        segments = segment_sequence(x.data, self.n_segments)
        seg = Tensor(segments.astype(np.float32))
        if x.requires_grad:
            # Route gradients back through the reshape when training
            # end-to-end from a Tensor input (segmenting is a pure view).
            n, t, c = x.shape
            seg_len = t // self.n_segments
            seg = x[:, : self.n_segments * seg_len].reshape(
                n, self.n_segments, seg_len, c
            )
        states = self.convlstm(seg)              # (N, S, L, H)
        final = states[:, -1]                    # (N, L, H)
        pooled = final.mean(axis=1)              # (N, H)
        z = self.act(self.dropout(self.fc1(pooled)))
        return log_softmax(self.fc2(z), axis=-1)

    def predict(self, X: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Predict class labels for X."""
        from repro.nn.tensor import no_grad

        self.eval()
        preds = np.empty(X.shape[0], dtype=np.int64)
        with no_grad():
            for start in range(0, X.shape[0], batch_size):
                out = self(Tensor(np.asarray(X[start : start + batch_size],
                                             dtype=np.float32)))
                preds[start:start + out.data.shape[0]] = np.argmax(out.data,
                                                                   axis=1)
        return preds
