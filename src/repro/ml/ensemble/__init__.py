"""Ensemble methods: the paper's Random Forest baseline."""

from repro.ml.ensemble.forest import RandomForestClassifier

__all__ = ["RandomForestClassifier"]
