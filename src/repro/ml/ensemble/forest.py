"""Bootstrap-aggregated random forest.

The paper's best traditional baseline ("RF Cov.", Table V): scikit-learn's
``RandomForestClassifier`` with the number of trees swept over
{50, 100, 250}.  Ours matches the algorithm: bootstrap resampling per tree,
√p feature subsampling per node, probability averaging across trees, and an
out-of-bag accuracy estimate.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.tree.flat import FlatForest
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_2d, check_labels

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Random forest with probability-vote aggregation.

    Parameters
    ----------
    n_estimators:
        Tree count (the paper's RF hyperparameter).
    max_features:
        Per-node feature subsample; ``"sqrt"`` is the forest default.
    oob_score:
        When True, compute ``oob_score_`` — accuracy of out-of-bag votes —
        a free validation estimate that the ablation benches report.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit to training data; returns self."""
        X = check_2d(X)
        y = check_labels(y, n_samples=X.shape[0])
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        n = X.shape[0]
        self.classes_ = np.unique(y)
        k = self.classes_.size
        rngs = spawn_generators(self.random_state, self.n_estimators)

        self.estimators_: list[DecisionTreeClassifier] = []
        oob_proba = np.zeros((n, k))
        oob_counts = np.zeros(n)
        for rng in rngs:
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng,
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
            if self.oob_score and self.bootstrap:
                in_bag = np.zeros(n, dtype=bool)
                in_bag[sample] = True
                rows = np.flatnonzero(~in_bag)
                if rows.size:
                    # Accumulate straight into the OOB buffer — no per-tree
                    # zeros, and no class remap when the bootstrap saw all
                    # classes (the common case).
                    proba = tree.predict_proba(X[rows])
                    if tree.classes_.size == k:
                        oob_proba[rows] += proba
                    else:
                        cols = np.searchsorted(self.classes_, tree.classes_)
                        oob_proba[rows[:, None], cols[None, :]] += proba
                    oob_counts[rows] += 1

        if self.oob_score and self.bootstrap:
            seen = oob_counts > 0
            if seen.any():
                pred = self.classes_[np.argmax(oob_proba[seen], axis=1)]
                self.oob_score_ = float(np.mean(pred == y[seen]))
            else:
                self.oob_score_ = float("nan")
        self.n_features_in_ = X.shape[1]
        self._flat_ = None          # rebuilt lazily on first predict
        return self

    def __getstate__(self):
        # The flat node cache is derived state and roughly doubles the
        # pickled payload; rebuild it lazily after unpickling instead.
        state = self.__dict__.copy()
        state.pop("_flat_", None)
        return state

    def _flat(self) -> FlatForest:
        """Flattened node arrays over all trees (built once per fit)."""
        flat = getattr(self, "_flat_", None)
        if flat is None:
            flat = FlatForest.from_trees(self.estimators_, classes=self.classes_)
            self._flat_ = flat
        return flat

    def _expand_proba(
        self, tree: DecisionTreeClassifier, X: np.ndarray, k: int
    ) -> np.ndarray:
        """Tree probabilities lifted onto the forest's full class set
        (a bootstrap sample can miss rare classes)."""
        proba = np.zeros((X.shape[0], k))
        cols = np.searchsorted(self.classes_, tree.classes_)
        proba[:, cols] = tree.predict_proba(X)
        return proba

    def _predict_proba_slow(self, X) -> np.ndarray:
        """Legacy per-tree prediction loop.

        Kept as the reference path: ``repro perf-bench`` gates the
        vectorized path on bit-identity against this implementation.
        """
        self._check_fitted("estimators_")
        X = check_2d(X)
        k = self.classes_.size
        acc = np.zeros((X.shape[0], k))
        for tree in self.estimators_:
            acc += self._expand_proba(tree, X, k)
        return acc / len(self.estimators_)

    def predict_proba(self, X, n_jobs: int | None = 1) -> np.ndarray:
        """Per-class probability estimates for X.

        All trees are traversed jointly over the flattened node arrays
        (optionally tree-parallel via ``n_jobs``); per-tree distributions
        are then accumulated in the legacy tree order, so the result is
        bit-identical to :meth:`_predict_proba_slow` at any ``n_jobs``.
        """
        self._check_fitted("estimators_")
        X = check_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; forest fitted on "
                f"{self.n_features_in_}"
            )
        flat = self._flat()
        leaves = flat.leaf_indices(X, n_jobs=n_jobs)
        acc = np.zeros((X.shape[0], self.classes_.size))
        value = flat.value_
        for t in range(flat.n_trees):
            acc += value[leaves[t]]
        acc /= flat.n_trees
        return acc

    def predict(self, X, n_jobs: int | None = 1) -> np.ndarray:
        """Predict class labels for X."""
        return self.classes_[np.argmax(self.predict_proba(X, n_jobs=n_jobs), axis=1)]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Split-frequency importance: how often each feature splits a node,
        averaged over trees (cheap proxy; boosting has gain-based)."""
        self._check_fitted("estimators_")
        imp = np.zeros(self.n_features_in_)
        for tree in self.estimators_:
            used = tree.feature_[tree.feature_ >= 0]
            if used.size:
                imp += np.bincount(used, minlength=self.n_features_in_)
        total = imp.sum()
        return imp / total if total > 0 else imp
