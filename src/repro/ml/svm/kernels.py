"""Kernel functions, all computed as full Gram matrices in one BLAS call.

Pairwise squared distances for the RBF kernel use the
``|x|² + |z|² - 2x·z`` expansion — a single GEMM instead of an O(n²p)
Python loop (see the vectorization guide).
"""

from __future__ import annotations

import numpy as np

__all__ = ["kernel_matrix", "resolve_gamma", "KERNELS"]

KERNELS = ("linear", "rbf", "poly")


def resolve_gamma(gamma: float | str, X: np.ndarray) -> float:
    """Resolve ``gamma`` like scikit-learn: 'scale' → 1/(p·Var[X]), 'auto' → 1/p."""
    if isinstance(gamma, str):
        p = X.shape[1]
        if gamma == "scale":
            var = X.var()
            return 1.0 / (p * var) if var > 0 else 1.0 / p
        if gamma == "auto":
            return 1.0 / p
        raise ValueError(f"gamma must be 'scale', 'auto' or a float, got {gamma!r}")
    gamma = float(gamma)
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    return gamma


def _sq_dists(X: np.ndarray, Z: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, clipped at 0 for roundoff."""
    xx = np.einsum("ij,ij->i", X, X)
    zz = np.einsum("ij,ij->i", Z, Z)
    d2 = xx[:, None] + zz[None, :] - 2.0 * (X @ Z.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def kernel_matrix(
    X: np.ndarray,
    Z: np.ndarray,
    kernel: str = "rbf",
    *,
    gamma: float = 1.0,
    degree: int = 3,
    coef0: float = 0.0,
) -> np.ndarray:
    """Gram matrix ``K[i, j] = k(X[i], Z[j])``.

    Parameters
    ----------
    kernel:
        ``linear``: ``x·z``; ``rbf``: ``exp(-γ|x-z|²)``;
        ``poly``: ``(γ x·z + coef0)^degree``.
    """
    X = np.asarray(X, dtype=np.float64)
    Z = np.asarray(Z, dtype=np.float64)
    if X.ndim != 2 or Z.ndim != 2:
        raise ValueError(f"kernel inputs must be 2-D, got {X.shape} and {Z.shape}")
    if X.shape[1] != Z.shape[1]:
        raise ValueError(f"feature mismatch: {X.shape[1]} vs {Z.shape[1]}")
    if kernel == "linear":
        return X @ Z.T
    if kernel == "rbf":
        return np.exp(-gamma * _sq_dists(X, Z))
    if kernel == "poly":
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        return (gamma * (X @ Z.T) + coef0) ** degree
    raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
