"""Support-vector classifiers: binary and one-vs-one multiclass.

:class:`BinarySVC` wraps the SMO solver with kernel bookkeeping and
support-vector compression; :class:`SVC` trains one binary machine per
class pair and predicts by voting (ties broken by summed decision values),
matching scikit-learn's ``SVC`` decision scheme the paper used.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin
from repro.ml.svm.kernels import kernel_matrix, resolve_gamma
from repro.ml.svm.smo import smo_solve
from repro.utils.validation import check_2d, check_labels

__all__ = ["BinarySVC", "SVC"]


class BinarySVC(BaseEstimator, ClassifierMixin):
    """Soft-margin kernel SVM for labels in {-1, +1}."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        degree: int = 3,
        coef0: float = 0.0,
        tol: float = 1e-3,
        max_iter: int = 20_000,
    ):
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tol = tol
        self.max_iter = max_iter

    def _gram(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return kernel_matrix(
            X, Z, self.kernel, gamma=self.gamma_, degree=self.degree, coef0=self.coef0
        )

    def fit(self, X, y) -> "BinarySVC":
        """Fit to training data; returns self."""
        X = check_2d(X)
        y = np.asarray(y, dtype=np.float64)
        if not np.all(np.isin(y, (-1, 1))):
            raise ValueError("BinarySVC expects labels in {-1, +1}")
        self.gamma_ = resolve_gamma(self.gamma, X)
        K = self._gram(X, X)
        result = smo_solve(K, y, self.C, tol=self.tol, max_iter=self.max_iter)
        # Keep only support vectors: alpha > 0 within numerical slack.
        sv = result.alpha > 1e-10 * self.C
        if not np.any(sv):
            # Degenerate separable-with-zero-margin case: keep everything.
            sv = np.ones_like(sv)
        self.support_vectors_ = X[sv]
        self.dual_coef_ = (result.alpha * y)[sv]
        self.intercept_ = result.bias
        self.n_iter_ = result.n_iter
        self.converged_ = result.converged
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed decision scores for X."""
        self._check_fitted("support_vectors_", "dual_coef_")
        X = check_2d(X)
        K = self._gram(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        """Predict class labels for X."""
        return np.where(self.decision_function(X) >= 0, 1, -1).astype(np.int64)


class SVC(BaseEstimator, ClassifierMixin):
    """One-vs-one multiclass SVC (the paper's Table V "SVM" model).

    Hyperparameters mirror scikit-learn's ``SVC``; the paper sweeps
    ``C ∈ {0.1, 1.0, 10.0}`` with the default RBF kernel.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        degree: int = 3,
        coef0: float = 0.0,
        tol: float = 1e-3,
        max_iter: int = 20_000,
    ):
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tol = tol
        self.max_iter = max_iter

    def fit(self, X, y) -> "SVC":
        """Fit to training data; returns self."""
        X = check_2d(X)
        y = check_labels(y, n_samples=X.shape[0])
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        self.machines_: list[tuple[int, int, BinarySVC]] = []
        for a_pos, a in enumerate(self.classes_):
            for b in self.classes_[a_pos + 1 :]:
                mask = (y == a) | (y == b)
                yy = np.where(y[mask] == a, 1.0, -1.0)
                machine = BinarySVC(
                    C=self.C, kernel=self.kernel, gamma=self.gamma,
                    degree=self.degree, coef0=self.coef0, tol=self.tol,
                    max_iter=self.max_iter,
                )
                machine.fit(X[mask], yy)
                self.machines_.append((int(a), int(b), machine))
        self.n_features_in_ = X.shape[1]
        return self

    def _votes_and_scores(self, X) -> tuple[np.ndarray, np.ndarray]:
        self._check_fitted("machines_", "classes_")
        X = check_2d(X)
        n = X.shape[0]
        k = self.classes_.size
        index_of = {int(c): i for i, c in enumerate(self.classes_)}
        votes = np.zeros((n, k))
        scores = np.zeros((n, k))
        for a, b, machine in self.machines_:
            d = machine.decision_function(X)
            ia, ib = index_of[a], index_of[b]
            a_wins = d >= 0
            votes[a_wins, ia] += 1
            votes[~a_wins, ib] += 1
            scores[:, ia] += d
            scores[:, ib] -= d
        return votes, scores

    def decision_function(self, X) -> np.ndarray:
        """Per-class vote counts (ties visible to the caller)."""
        votes, _ = self._votes_and_scores(X)
        return votes

    def predict(self, X) -> np.ndarray:
        """Predict class labels for X."""
        votes, scores = self._votes_and_scores(X)
        # Break vote ties with the aggregated signed decision values.
        shifted = scores - scores.min(axis=1, keepdims=True) + 1.0
        ranking = votes + shifted / (shifted.max(axis=1, keepdims=True) + 1.0)
        return self.classes_[np.argmax(ranking, axis=1)]
