"""Kernel support-vector classification trained with SMO.

The paper's SVM baseline uses scikit-learn's ``SVC`` (RBF kernel, C swept
over {0.1, 1, 10}).  This subpackage reimplements it: a binary soft-margin
SVM solved by Sequential Minimal Optimization with maximal-violating-pair
working-set selection, lifted to multiclass by one-vs-one voting (the same
scheme ``SVC`` uses).
"""

from repro.ml.svm.kernels import KERNELS, kernel_matrix, resolve_gamma
from repro.ml.svm.ovr import OneVsRestSVC
from repro.ml.svm.smo import SMOResult, smo_solve
from repro.ml.svm.svc import SVC, BinarySVC

__all__ = [
    "OneVsRestSVC",
    "KERNELS",
    "kernel_matrix",
    "resolve_gamma",
    "smo_solve",
    "SMOResult",
    "BinarySVC",
    "SVC",
]
