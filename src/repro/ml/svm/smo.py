"""Sequential Minimal Optimization for the binary soft-margin dual.

Solves::

    min_α  0.5 Σ_ij α_i α_j y_i y_j K_ij − Σ_i α_i
    s.t.   0 ≤ α_i ≤ C,   Σ_i α_i y_i = 0

using maximal-violating-pair working-set selection (LIBSVM's WSS1): with
``F_t = Σ_s α_s y_s K_ts`` the KKT violation gap is
``max_{I_up}(y_t − F_t) − min_{I_low}(y_t − F_t)``, and the pair achieving
the extrema is updated analytically each iteration.  Per-iteration cost is
O(n) on a precomputed Gram matrix; convergence is declared when the gap
falls below ``tol``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SMOResult", "smo_solve"]


@dataclass
class SMOResult:
    """Solution of one binary SVM dual."""

    alpha: np.ndarray     # dual coefficients, 0 <= alpha <= C
    bias: float           # intercept b
    n_iter: int
    converged: bool
    gap: float            # final KKT violation gap


def smo_solve(
    K: np.ndarray,
    y: np.ndarray,
    C: float,
    *,
    tol: float = 1e-3,
    max_iter: int = 20_000,
) -> SMOResult:
    """Solve the binary dual on a precomputed Gram matrix.

    Parameters
    ----------
    K:
        ``(n, n)`` symmetric PSD Gram matrix.
    y:
        Labels in {-1, +1}.
    C:
        Box constraint (regularization); larger C fits harder.
    tol:
        KKT gap tolerance.
    max_iter:
        Iteration cap; the solver reports non-convergence rather than
        looping forever on degenerate problems.
    """
    n = y.shape[0]
    if K.shape != (n, n):
        raise ValueError(f"K must be ({n}, {n}), got {K.shape}")
    if not np.all(np.isin(y, (-1, 1))):
        raise ValueError("y must contain only -1 and +1")
    if C <= 0:
        raise ValueError(f"C must be positive, got {C}")
    if not (np.any(y == 1) and np.any(y == -1)):
        raise ValueError("need both classes present")

    y = y.astype(np.float64)
    alpha = np.zeros(n)
    F = np.zeros(n)  # F_t = sum_s alpha_s y_s K_ts
    eps_box = 1e-12 * C

    gap = np.inf
    it = 0
    for it in range(1, max_iter + 1):
        at_lo = alpha <= eps_box
        at_hi = alpha >= C - eps_box
        # I_up: can increase alpha*y; I_low: can decrease.
        i_up = ((y > 0) & ~at_hi) | ((y < 0) & ~at_lo)
        i_low = ((y > 0) & ~at_lo) | ((y < 0) & ~at_hi)
        score = y - F
        up_scores = np.where(i_up, score, -np.inf)
        low_scores = np.where(i_low, score, np.inf)
        i = int(np.argmax(up_scores))
        j = int(np.argmin(low_scores))
        m, M = up_scores[i], low_scores[j]
        gap = m - M
        if gap <= tol:
            it -= 1  # this iteration made no update
            break

        # Analytic two-variable update (Platt), working on (i, j).
        eta = K[i, i] + K[j, j] - 2.0 * K[i, j]
        eta = max(eta, 1e-12)
        # delta on alpha_j in the direction of decreasing objective.
        E_i = F[i] - y[i]
        E_j = F[j] - y[j]
        a_j_new = alpha[j] + y[j] * (E_i - E_j) / eta
        # Box the pair: y_i a_i + y_j a_j is conserved.
        if y[i] != y[j]:
            L = max(0.0, alpha[j] - alpha[i])
            H = min(C, C + alpha[j] - alpha[i])
        else:
            L = max(0.0, alpha[i] + alpha[j] - C)
            H = min(C, alpha[i] + alpha[j])
        a_j_new = min(max(a_j_new, L), H)
        d_j = a_j_new - alpha[j]
        if abs(d_j) < 1e-14:
            # Numerically stuck pair: nudge tolerance outward to exit.
            break
        d_i = -y[i] * y[j] * d_j
        alpha[i] += d_i
        alpha[j] += d_j
        F += (d_i * y[i]) * K[:, i] + (d_j * y[j]) * K[:, j]

    # Bias from the midpoint of the violating interval (LIBSVM convention).
    at_lo = alpha <= eps_box
    at_hi = alpha >= C - eps_box
    free = ~at_lo & ~at_hi
    score = y - F
    if np.any(free):
        bias = float(score[free].mean())
    else:
        i_up = ((y > 0) & ~at_hi) | ((y < 0) & ~at_lo)
        i_low = ((y > 0) & ~at_lo) | ((y < 0) & ~at_hi)
        hi = score[i_up].max() if np.any(i_up) else 0.0
        lo = score[i_low].min() if np.any(i_low) else 0.0
        bias = float((hi + lo) / 2.0)

    return SMOResult(
        alpha=alpha,
        bias=bias,
        n_iter=it,
        converged=bool(gap <= tol),
        gap=float(gap),
    )
