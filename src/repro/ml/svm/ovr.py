"""One-vs-rest multiclass SVC.

:class:`repro.ml.svm.SVC` uses one-vs-one voting (scikit-learn's scheme,
hence the paper's).  OvR is the common alternative — one binary machine
per class against everything else — trading k(k−1)/2 small problems for k
large ones.  Exposed for completeness and for the class-imbalance
experiments (OvR sees the full imbalance, OvO does not).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin
from repro.ml.svm.svc import BinarySVC
from repro.utils.validation import check_2d, check_labels

__all__ = ["OneVsRestSVC"]


class OneVsRestSVC(BaseEstimator, ClassifierMixin):
    """One binary SVM per class; predict the class with the largest margin."""

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        degree: int = 3,
        coef0: float = 0.0,
        tol: float = 1e-3,
        max_iter: int = 20_000,
    ):
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tol = tol
        self.max_iter = max_iter

    def fit(self, X, y) -> "OneVsRestSVC":
        """Fit to training data; returns self."""
        X = check_2d(X)
        y = check_labels(y, n_samples=X.shape[0])
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        self.machines_: list[BinarySVC] = []
        for cls in self.classes_:
            yy = np.where(y == cls, 1.0, -1.0)
            machine = BinarySVC(
                C=self.C, kernel=self.kernel, gamma=self.gamma,
                degree=self.degree, coef0=self.coef0, tol=self.tol,
                max_iter=self.max_iter,
            )
            machine.fit(X, yy)
            self.machines_.append(machine)
        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X) -> np.ndarray:
        """Per-class signed margins, shape ``(n, n_classes)``."""
        self._check_fitted("machines_")
        X = check_2d(X)
        return np.column_stack([m.decision_function(X) for m in self.machines_])

    def predict(self, X) -> np.ndarray:
        """Predict class labels for X."""
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]
