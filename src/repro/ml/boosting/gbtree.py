"""Regression tree on gradient/Hessian statistics (one boosting round).

Split gain follows Chen & Guestrin eq. (7)::

    gain = 1/2 [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ

and leaf weights use the L1-thresholded Newton step::

    w = −sign(G) · max(|G| − α, 0) / (H + λ)

Like the CART splitter, all split positions of a feature are scored at once
from prefix sums of (g, h).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["BoostingTree"]


def _leaf_weight(G: float, H: float, reg_alpha: float, reg_lambda: float) -> float:
    """Newton leaf weight with soft-thresholded L1."""
    mag = max(abs(G) - reg_alpha, 0.0)
    return -np.sign(G) * mag / (H + reg_lambda)


def _score(G: float, H: float, reg_alpha: float, reg_lambda: float) -> float:
    """Optimal structure score contribution of one leaf (≥ 0)."""
    mag = max(abs(G) - reg_alpha, 0.0)
    return mag * mag / (H + reg_lambda)


class BoostingTree:
    """One regression tree fitted to (gradient, Hessian) targets.

    Not a public estimator — :class:`GradientBoostingClassifier` drives it.
    ``split_gains_`` accumulates realized gain per feature for the
    importance analysis.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_child_weight: float = 1.0,
        gamma: float = 0.0,
        reg_alpha: float = 0.0,
        reg_lambda: float = 1.0,
        colsample: float = 1.0,
        random_state: int | np.random.Generator | None = None,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if not 0.0 < colsample <= 1.0:
            raise ValueError(f"colsample must be in (0, 1], got {colsample}")
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.gamma = gamma
        self.reg_alpha = reg_alpha
        self.reg_lambda = reg_lambda
        self.colsample = colsample
        self.random_state = random_state

    def _best_split_feature(
        self, x: np.ndarray, g: np.ndarray, h: np.ndarray
    ) -> tuple[float, float] | None:
        """Best (gain, threshold) on one feature, or None."""
        order = np.argsort(x, kind="stable")
        xs = x[order]
        Gl = np.cumsum(g[order])
        Hl = np.cumsum(h[order])
        G, H = Gl[-1], Hl[-1]
        n = xs.shape[0]
        valid = np.empty(n, dtype=bool)
        valid[:-1] = xs[1:] > xs[:-1]
        valid[-1] = False
        Hr = H - Hl
        valid &= (Hl >= self.min_child_weight) & (Hr >= self.min_child_weight)
        if not valid.any():
            return None
        a, lam = self.reg_alpha, self.reg_lambda
        magL = np.maximum(np.abs(Gl) - a, 0.0)
        magR = np.maximum(np.abs(G - Gl) - a, 0.0)
        magP = max(abs(G) - a, 0.0)
        gain = 0.5 * (
            magL**2 / (Hl + lam) + magR**2 / (Hr + lam) - magP**2 / (H + lam)
        ) - self.gamma
        gain[~valid] = -np.inf
        best = int(np.argmax(gain))
        if gain[best] <= 0.0:
            return None
        return float(gain[best]), 0.5 * (xs[best] + xs[best + 1])

    def fit(self, X: np.ndarray, g: np.ndarray, h: np.ndarray) -> "BoostingTree":
        """Fit to training data; returns self."""
        n, p = X.shape
        rng = as_generator(self.random_state)
        m = max(1, int(round(self.colsample * p)))

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        weight: list[float] = []
        self.split_gains_ = np.zeros(p)

        def new_node() -> int:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            weight.append(0.0)
            return len(feature) - 1

        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]
        while stack:
            node, idx, depth = stack.pop()
            G = float(g[idx].sum())
            H = float(h[idx].sum())
            weight[node] = _leaf_weight(G, H, self.reg_alpha, self.reg_lambda)
            if depth >= self.max_depth or idx.size < 2:
                continue
            cand = np.arange(p) if m == p else rng.choice(p, size=m, replace=False)
            best_gain, best_feat, best_thr = 0.0, -1, 0.0
            Xn, gn, hn = X[idx], g[idx], h[idx]
            for f in cand:
                res = self._best_split_feature(Xn[:, f], gn, hn)
                if res is not None and res[0] > best_gain:
                    best_gain, best_feat, best_thr = res[0], int(f), res[1]
            if best_feat < 0:
                continue
            self.split_gains_[best_feat] += best_gain
            go_left = Xn[:, best_feat] <= best_thr
            feature[node] = best_feat
            threshold[node] = best_thr
            l_node, r_node = new_node(), new_node()
            left[node], right[node] = l_node, r_node
            stack.append((l_node, idx[go_left], depth + 1))
            stack.append((r_node, idx[~go_left], depth + 1))

        self.feature_ = np.array(feature, dtype=np.int64)
        self.threshold_ = np.array(threshold, dtype=np.float64)
        self.children_left_ = np.array(left, dtype=np.int64)
        self.children_right_ = np.array(right, dtype=np.int64)
        self.weight_ = np.array(weight, dtype=np.float64)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf weight for every row (vectorized level walk)."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feat = self.feature_[node]
            internal = feat >= 0
            if not internal.any():
                return self.weight_[node]
            rows = np.flatnonzero(internal)
            f = feat[rows]
            thr = self.threshold_[node[rows]]
            goes_left = X[rows, f] <= thr
            node[rows] = np.where(
                goes_left,
                self.children_left_[node[rows]],
                self.children_right_[node[rows]],
            )
