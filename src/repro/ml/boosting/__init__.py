"""Second-order gradient tree boosting (XGBoost-equivalent).

Implements the Newton-boosting objective of Chen & Guestrin with the three
regularizers the paper grid-searches in Section IV-B: ``gamma`` (minimum
split-gain), ``reg_alpha`` (L1 on leaf weights) and ``reg_lambda`` (L2 on
leaf weights), plus gain-based feature importance for the sensor-covariance
analysis.
"""

from repro.ml.boosting.losses import softmax_cross_entropy_grad_hess, softmax_proba
from repro.ml.boosting.gbtree import BoostingTree
from repro.ml.boosting.xgb import GradientBoostingClassifier

__all__ = [
    "softmax_proba",
    "softmax_cross_entropy_grad_hess",
    "BoostingTree",
    "GradientBoostingClassifier",
]
