"""Multi-class softmax objective: probabilities, gradients, Hessians.

XGBoost's ``multi:softprob`` objective boosts K trees per round, one per
class, against the per-class gradient/diagonal-Hessian of the softmax
cross-entropy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_proba", "softmax_cross_entropy_grad_hess", "log_loss"]


def softmax_proba(margins: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a ``(n, k)`` margin matrix (stable)."""
    margins = np.asarray(margins, dtype=np.float64)
    if margins.ndim != 2:
        raise ValueError(f"margins must be 2-D, got shape {margins.shape}")
    z = margins - margins.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy_grad_hess(
    margins: np.ndarray, y: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample, per-class gradient and diagonal Hessian.

    For softmax cross-entropy with one-hot targets::

        g_ic = p_ic − 1[y_i = c]
        h_ic = p_ic (1 − p_ic)     (diagonal approximation, as in XGBoost)

    Hessians are floored at a small epsilon to keep leaf weights bounded.
    """
    p = softmax_proba(margins)
    n, k = p.shape
    y = np.asarray(y)
    if y.shape != (n,):
        raise ValueError(f"y must have shape ({n},), got {y.shape}")
    if y.min() < 0 or y.max() >= k:
        raise ValueError(f"labels out of range [0, {k})")
    grad = p.copy()
    grad[np.arange(n), y] -= 1.0
    hess = np.maximum(p * (1.0 - p), 1e-16)
    return grad, hess


def log_loss(margins: np.ndarray, y: np.ndarray) -> float:
    """Mean softmax cross-entropy (training-curve metric)."""
    p = softmax_proba(margins)
    n = p.shape[0]
    return float(-np.mean(np.log(np.maximum(p[np.arange(n), y], 1e-300))))
