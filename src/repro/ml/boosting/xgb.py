"""Multi-class Newton gradient boosting (the paper's "XGBoost" baseline).

One :class:`BoostingTree` per class per round against the softmax
objective, shrunk by ``learning_rate``.  Supports the Section IV-B grid
(``gamma``, ``reg_alpha``, ``reg_lambda``), an evaluation set for
round-by-round train/test curves (the plateau analysis), and gain-based
``feature_importances_`` (the covariance-ranking analysis).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin
from repro.ml.boosting.gbtree import BoostingTree
from repro.ml.boosting.losses import log_loss, softmax_cross_entropy_grad_hess, softmax_proba
from repro.ml.tree.flat import FlatForest
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_2d, check_labels

__all__ = ["GradientBoostingClassifier"]


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """XGBoost-style classifier.

    Parameters mirror the XGBoost names the paper sweeps:

    * ``gamma`` — minimum loss reduction to split a leaf,
    * ``reg_alpha`` / ``reg_lambda`` — L1 / L2 leaf-weight regularization,
    * ``n_estimators`` — boosting rounds (paper: plateau near 40).

    After ``fit`` with an ``eval_set``, ``evals_result_`` holds per-round
    train/eval accuracy and log-loss, which the benchmark uses to show the
    overfitting plateau.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.3,
        max_depth: int = 6,
        gamma: float = 0.0,
        reg_alpha: float = 0.0,
        reg_lambda: float = 1.0,
        min_child_weight: float = 1.0,
        colsample: float = 1.0,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.gamma = gamma
        self.reg_alpha = reg_alpha
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.colsample = colsample
        self.random_state = random_state

    def fit(
        self,
        X,
        y,
        eval_set: tuple | None = None,
        early_stopping_rounds: int | None = None,
    ) -> "GradientBoostingClassifier":
        """Fit to training data; returns self.

        With ``eval_set`` and ``early_stopping_rounds``, boosting stops when
        evaluation accuracy has not improved for that many rounds (the
        paper's plateau finding, turned into a stopping rule); the model
        keeps only the rounds up to the best one (``best_iteration_``).
        """
        if early_stopping_rounds is not None:
            if eval_set is None:
                raise ValueError("early stopping requires an eval_set")
            if early_stopping_rounds < 1:
                raise ValueError(
                    f"early_stopping_rounds must be >= 1, got "
                    f"{early_stopping_rounds}"
                )
        X = check_2d(X)
        y = check_labels(y, n_samples=X.shape[0])
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {self.learning_rate}")
        self.classes_ = np.unique(y)
        k = self.classes_.size
        y_idx = np.searchsorted(self.classes_, y)
        n = X.shape[0]
        margins = np.zeros((n, k))

        eval_margins = None
        if eval_set is not None:
            X_eval, y_eval = eval_set
            X_eval = check_2d(X_eval, name="X_eval")
            y_eval = check_labels(y_eval, name="y_eval", n_samples=X_eval.shape[0])
            y_eval_idx = np.searchsorted(self.classes_, y_eval)
            eval_margins = np.zeros((X_eval.shape[0], k))
            self.evals_result_ = {
                "train_accuracy": [], "train_logloss": [],
                "eval_accuracy": [], "eval_logloss": [],
            }

        rngs = spawn_generators(self.random_state, self.n_estimators * k)
        self.trees_: list[list[BoostingTree]] = []
        best_eval = -np.inf
        best_round = 0
        for rnd in range(self.n_estimators):
            grad, hess = softmax_cross_entropy_grad_hess(margins, y_idx)
            round_trees: list[BoostingTree] = []
            for c in range(k):
                tree = BoostingTree(
                    max_depth=self.max_depth,
                    min_child_weight=self.min_child_weight,
                    gamma=self.gamma,
                    reg_alpha=self.reg_alpha,
                    reg_lambda=self.reg_lambda,
                    colsample=self.colsample,
                    random_state=rngs[rnd * k + c],
                )
                tree.fit(X, grad[:, c], hess[:, c])
                margins[:, c] += self.learning_rate * tree.predict(X)
                if eval_margins is not None:
                    eval_margins[:, c] += self.learning_rate * tree.predict(X_eval)
                round_trees.append(tree)
            self.trees_.append(round_trees)
            if eval_margins is not None:
                eval_acc = float(np.mean(np.argmax(eval_margins, axis=1)
                                         == y_eval_idx))
                self.evals_result_["train_accuracy"].append(
                    float(np.mean(np.argmax(margins, axis=1) == y_idx)))
                self.evals_result_["train_logloss"].append(log_loss(margins, y_idx))
                self.evals_result_["eval_accuracy"].append(eval_acc)
                self.evals_result_["eval_logloss"].append(
                    log_loss(eval_margins, y_eval_idx))
                if eval_acc > best_eval:
                    best_eval = eval_acc
                    best_round = rnd
                elif (early_stopping_rounds is not None
                        and rnd - best_round >= early_stopping_rounds):
                    break

        if early_stopping_rounds is not None:
            # Keep only the rounds up to the best evaluation score.
            self.trees_ = self.trees_[: best_round + 1]
            self.best_iteration_ = best_round
        self.n_features_in_ = X.shape[1]
        self._flat_ = None          # rebuilt lazily on first predict
        return self

    def __getstate__(self):
        # Derived flat-node cache; rebuild lazily after unpickling.
        state = self.__dict__.copy()
        state.pop("_flat_", None)
        return state

    def _flat(self) -> FlatForest:
        """Flattened node arrays over all rounds' trees, round-major:
        tree index ``rnd * k + c`` is round ``rnd``, class ``c``."""
        flat = getattr(self, "_flat_", None)
        if flat is None:
            flat = FlatForest.from_trees(
                [tree for round_trees in self.trees_ for tree in round_trees]
            )
            self._flat_ = flat
        return flat

    def _check_predict_input(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        X = check_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model fitted on {self.n_features_in_}"
            )
        return X

    def _margins_slow(self, X: np.ndarray, n_rounds: int | None = None) -> np.ndarray:
        """Legacy per-tree margin loop (reference for the perf-bench
        bit-identity gate)."""
        X = self._check_predict_input(X)
        k = self.classes_.size
        rounds = self.trees_ if n_rounds is None else self.trees_[:n_rounds]
        margins = np.zeros((X.shape[0], k))
        for round_trees in rounds:
            for c, tree in enumerate(round_trees):
                margins[:, c] += self.learning_rate * tree.predict(X)
        return margins

    def _margins(
        self,
        X: np.ndarray,
        n_rounds: int | None = None,
        n_jobs: int | None = 1,
    ) -> np.ndarray:
        X = self._check_predict_input(X)
        k = self.classes_.size
        rounds = len(self.trees_) if n_rounds is None else min(n_rounds, len(self.trees_))
        flat = self._flat()
        leaves = flat.leaf_indices(X, n_jobs=n_jobs)
        value = flat.value_
        lr = self.learning_rate
        margins = np.zeros((X.shape[0], k))
        # Accumulate in the legacy (round, class) order: bit-identical to
        # the per-tree loop at any n_jobs.
        for rnd in range(rounds):
            for c in range(len(self.trees_[rnd])):
                margins[:, c] += lr * value[leaves[rnd * k + c]]
        return margins

    def predict_proba(
        self, X, n_rounds: int | None = None, n_jobs: int | None = 1
    ) -> np.ndarray:
        """Per-class probability estimates for X."""
        return softmax_proba(self._margins(X, n_rounds, n_jobs=n_jobs))

    def predict(
        self, X, n_rounds: int | None = None, n_jobs: int | None = 1
    ) -> np.ndarray:
        """Predict class labels for X."""
        return self.classes_[
            np.argmax(self._margins(X, n_rounds, n_jobs=n_jobs), axis=1)
        ]

    def staged_accuracy(self, X, y, n_jobs: int | None = 1) -> np.ndarray:
        """Test accuracy after each boosting round (plateau curves).

        All trees are traversed jointly once; the per-round loop only
        accumulates leaf weights and scores.
        """
        self._check_fitted("trees_")
        X = check_2d(X)
        y = check_labels(y, n_samples=X.shape[0])
        y_idx = np.searchsorted(self.classes_, y)
        k = self.classes_.size
        flat = self._flat()
        leaves = flat.leaf_indices(X, n_jobs=n_jobs)
        value = flat.value_
        lr = self.learning_rate
        margins = np.zeros((X.shape[0], k))
        out = np.empty(len(self.trees_))
        for r, round_trees in enumerate(self.trees_):
            for c in range(len(round_trees)):
                margins[:, c] += lr * value[leaves[r * k + c]]
            out[r] = float(np.mean(np.argmax(margins, axis=1) == y_idx))
        return out

    @property
    def feature_importances_(self) -> np.ndarray:
        """Gain-based importance, normalized to sum to 1 (XGBoost 'gain')."""
        self._check_fitted("trees_")
        imp = np.zeros(self.n_features_in_)
        for round_trees in self.trees_:
            for tree in round_trees:
                imp += tree.split_gains_
        total = imp.sum()
        return imp / total if total > 0 else imp
