"""From-scratch classical machine-learning stack.

The offline environment has no scikit-learn or XGBoost, so this package
implements — on NumPy only — every estimator and utility the paper's
baselines need:

* :mod:`repro.ml.preprocessing` — StandardScaler, PCA, the covariance
  upper-triangle reducer, flattening, Pipeline.
* :mod:`repro.ml.svm` — kernel SVC trained with SMO (one-vs-rest).
* :mod:`repro.ml.tree` / :mod:`repro.ml.ensemble` — CART decision trees and
  a bootstrap random forest.
* :mod:`repro.ml.boosting` — second-order (Newton) gradient tree boosting
  with γ/α/λ regularization and gain-based feature importance
  (XGBoost-equivalent for the paper's Section IV-B).
* :mod:`repro.ml.model_selection` — stratified k-fold, parameter grids,
  grid-search cross-validation.
* :mod:`repro.ml.metrics` — accuracy, confusion matrix, per-class report.

The estimator API follows scikit-learn conventions (``fit`` / ``predict`` /
``get_params`` / ``set_params`` / ``clone``) so the paper's experiment
descriptions translate one-to-one.
"""

from repro.ml.base import BaseEstimator, ClassifierMixin, TransformerMixin, clone

__all__ = ["BaseEstimator", "ClassifierMixin", "TransformerMixin", "clone"]
