"""Flattened multi-tree node arrays for joint vectorized inference.

A fitted :class:`~repro.ml.tree.DecisionTreeClassifier` already walks all
query rows level-wise through its flat node arrays — but an ensemble still
loops over trees in Python, paying per-tree validation, per-tree leaf
walks, and per-tree output allocation.  :class:`FlatForest` concatenates
the node arrays of *all* trees into one address space (child pointers
rebased to absolute indices) and advances a joint ``n_trees × chunk``
frontier level-wise: the Python-loop count drops from
``n_trees × depth`` to ``depth`` per row chunk.  Leaves are *absorbing*
(their transition entries point back at themselves), so a level step is a
fixed handful of gathers with no per-level frontier compaction; rows are
processed in L2-sized chunks because the X gather dominates at fleet-scale
query counts.

Leaf *payloads* stay per-node: classification trees store their class
distribution rows pre-lifted onto the ensemble's full class set (so the
per-tree ``searchsorted`` remap at predict time disappears), regression
(boosting) trees store their scalar leaf weight.  Accumulation across
trees is left to the caller, which adds per-tree contributions in the
same order as the legacy loop — keeping ensemble predictions bit-identical
to the per-tree path (pinned by the parity suite and the
``repro perf-bench`` gate).

``leaf_indices`` optionally fans the traversal out over trees with
:func:`repro.parallel.parallel_map`.  Workers return integer leaf indices
only; the (order-sensitive) float accumulation always happens serially in
the parent, so ``n_jobs > 1`` changes wall-clock, never bits.
"""

from __future__ import annotations

import numpy as np

from repro.parallel import effective_n_jobs, parallel_map

__all__ = ["FlatForest"]


class FlatForest:
    """Concatenated node arrays of many fitted trees.

    Parameters
    ----------
    feature, threshold, children_left, children_right:
        Node arrays over all trees, children rebased to absolute node
        indices (``-1`` marks a leaf, matching the per-tree convention).
    roots:
        Absolute root index per tree, shape ``(n_trees,)``.
    value:
        Optional per-node payload: ``(n_nodes, k)`` class distributions
        (classification) or ``(n_nodes,)`` leaf weights (regression).
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        children_left: np.ndarray,
        children_right: np.ndarray,
        roots: np.ndarray,
        value: np.ndarray | None = None,
    ):
        self.feature_ = feature
        self.threshold_ = threshold
        self.children_left_ = children_left
        self.children_right_ = children_right
        self.roots_ = roots
        self.value_ = value
        # Absorbing transition arrays: a leaf's "children" point back at
        # the leaf itself, so the level loop needs no per-level frontier
        # compaction — finished entries just spin in place.  Leaf feature
        # is clamped to 0 for the X gather; the compared value is unused
        # because both branches lead back to the leaf.
        idx = np.arange(feature.shape[0])
        self._left_next_ = np.where(children_left >= 0, children_left, idx)
        self._right_next_ = np.where(children_right >= 0, children_right, idx)
        self._feature_safe_ = np.maximum(feature, 0)
        # Per-tree depth via node-level BFS: the level loop for a tree
        # only needs its own depth, and boosting ensembles mix near-stumps
        # with full trees — walking every tree to the global max would
        # triple the gather volume.
        n_trees = roots.shape[0]
        depth = np.zeros(n_trees, dtype=np.int64)
        for i in range(n_trees):
            frontier = roots[i:i + 1]
            d = 0
            while True:
                inner = frontier[feature[frontier] >= 0]
                if inner.size == 0:
                    break
                frontier = np.concatenate(
                    [children_left[inner], children_right[inner]]
                )
                d += 1
            depth[i] = d
        self.depth_ = depth
        self.max_depth_ = int(depth.max()) if n_trees else 0

    # ------------------------------------------------------------------
    @classmethod
    def from_trees(cls, trees, classes: np.ndarray | None = None) -> "FlatForest":
        """Flatten fitted trees into one node address space.

        ``trees`` may be classification trees (``value_`` + ``classes_``)
        or boosting regression trees (``weight_``).  For classification,
        pass the ensemble's full ``classes`` array: each tree's per-node
        distributions are scattered onto those columns once here, instead
        of once per predict call.
        """
        sizes = np.array([t.feature_.shape[0] for t in trees], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total = int(offsets[-1])

        feature = np.empty(total, dtype=np.int64)
        threshold = np.empty(total, dtype=np.float64)
        left = np.empty(total, dtype=np.int64)
        right = np.empty(total, dtype=np.int64)
        if classes is not None:
            value: np.ndarray | None = np.zeros((total, classes.size))
        elif hasattr(trees[0], "weight_"):
            value = np.empty(total, dtype=np.float64)
        else:
            value = None

        for t, (tree, lo) in enumerate(zip(trees, offsets[:-1])):
            hi = lo + sizes[t]
            feature[lo:hi] = tree.feature_
            threshold[lo:hi] = tree.threshold_
            # Rebase children; keep -1 leaf sentinels.
            left[lo:hi] = np.where(tree.children_left_ >= 0,
                                   tree.children_left_ + lo, -1)
            right[lo:hi] = np.where(tree.children_right_ >= 0,
                                    tree.children_right_ + lo, -1)
            if classes is not None:
                cols = np.searchsorted(classes, tree.classes_)
                value[lo:hi, cols] = tree.value_
            elif value is not None:
                value[lo:hi] = tree.weight_

        return cls(feature, threshold, left, right,
                   offsets[:-1].copy(), value)

    @property
    def n_trees(self) -> int:
        """Number of flattened trees."""
        return self.roots_.shape[0]

    # ------------------------------------------------------------------
    def leaf_indices(self, X: np.ndarray, n_jobs: int | None = 1) -> np.ndarray:
        """Absolute leaf node index per (tree, row): shape ``(n_trees, n)``.

        Per row chunk the joint frontier advances one level per iteration —
        a handful of NumPy gathers per *tree depth*, not per tree.  With
        ``n_jobs > 1`` the traversal is sharded tree-wise across processes;
        the returned indices are identical either way.
        """
        jobs = effective_n_jobs(n_jobs)
        if jobs > 1 and self.n_trees > 1:
            shards = np.array_split(np.arange(self.n_trees), min(jobs, self.n_trees))
            parts = parallel_map(
                _LeafShardWorker(self, X), [s for s in shards if s.size],
                n_jobs=jobs, chunksize=1,
            )
            return np.concatenate(parts, axis=0)
        return self._leaf_indices_serial(np.arange(self.n_trees), X)

    # Row-chunk size: keeps the X gather working set (chunk × features
    # float64) L2-resident, which measures ~2x faster than one giant
    # frontier at fleet-scale query counts.
    _CHUNK = 2048

    def _leaf_indices_serial(self, tree_idx: np.ndarray, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        t = tree_idx.shape[0]
        depths = self.depth_[tree_idx]
        threshold, fsafe = self.threshold_, self._feature_safe_
        lnext, rnext = self._left_next_, self._right_next_
        out = np.empty((t, n), dtype=np.int64)
        # Group trees by depth so each group's level loop runs exactly its
        # own depth (no absorbed spinning past shallow trees' leaves).
        for d in np.unique(depths):
            sel = np.flatnonzero(depths == d)
            roots = self.roots_[tree_idx[sel]]
            g = sel.shape[0]
            for s in range(0, n, self._CHUNK):
                e = min(s + self._CHUNK, n)
                m = e - s
                Xc = X[s:e]
                # Tree-major frontier: entry i*m + j walks the i-th tree
                # of the group, chunk row j.  No compaction — leaves are
                # absorbing.
                nodes = np.repeat(roots, m)
                rows = np.tile(np.arange(m), g)
                for _ in range(d):
                    xv = Xc[rows, fsafe[nodes]]
                    goes_left = xv <= threshold[nodes]
                    nodes = np.where(goes_left, lnext[nodes], rnext[nodes])
                out[sel, s:e] = nodes.reshape(g, m)
        return out


class _LeafShardWorker:
    """Picklable tree-shard traversal (closures can't cross processes)."""

    def __init__(self, flat: FlatForest, X: np.ndarray):
        self.flat = flat
        self.X = X

    def __call__(self, tree_idx: np.ndarray) -> np.ndarray:
        return self.flat._leaf_indices_serial(tree_idx, self.X)
