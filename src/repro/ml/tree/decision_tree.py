"""CART classification tree with a fully vectorized split search.

Per node, per candidate feature: sort the node's samples by feature value,
build cumulative one-hot class counts, and score *every* split position in
one shot (Gini impurity from the prefix/suffix count matrices).  The only
Python-level loops are over features at a node and over nodes — both small
— so fitting stays NumPy-bound (see the vectorization guide).

The fitted tree is stored in flat arrays (``feature_``, ``threshold_``,
``children_left_`` …), and prediction advances all query rows level-by-level
through those arrays — no per-sample recursion.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin
from repro.utils.rng import as_generator
from repro.utils.validation import check_2d, check_labels

__all__ = ["DecisionTreeClassifier", "best_split_gini"]

_NO_SPLIT = (-1, 0.0, -np.inf)


def best_split_gini(
    x: np.ndarray,
    y_onehot: np.ndarray,
    min_samples_leaf: int,
) -> tuple[float, float] | None:
    """Best threshold on one feature by Gini gain.

    Parameters
    ----------
    x:
        Feature values at the node, shape ``(n,)``.
    y_onehot:
        One-hot labels at the node, shape ``(n, k)``.
    min_samples_leaf:
        Minimum samples each side must keep.

    Returns
    -------
    ``(threshold, weighted_gini)`` of the best valid split, or ``None`` if
    no valid split exists (constant feature or leaf-size limits).
    """
    n = x.shape[0]
    order = np.argsort(x, kind="stable")
    xs = x[order]
    counts_left = np.cumsum(y_onehot[order], axis=0)  # (n, k), position i = left size i+1
    total = counts_left[-1]

    # Split after position i (left = first i+1 samples).  Valid positions:
    # value changes AND both sides satisfy the leaf minimum.
    left_sizes = np.arange(1, n + 1)
    valid = np.empty(n, dtype=bool)
    valid[:-1] = xs[1:] > xs[:-1]
    valid[-1] = False
    valid &= (left_sizes >= min_samples_leaf) & ((n - left_sizes) >= min_samples_leaf)
    if not valid.any():
        return None

    nl = left_sizes[:, None].astype(np.float64)
    nr = (n - left_sizes)[:, None].astype(np.float64)
    counts_right = total[None, :] - counts_left
    with np.errstate(divide="ignore", invalid="ignore"):
        gini_l = 1.0 - np.sum((counts_left / nl) ** 2, axis=1)
        gini_r = 1.0 - np.sum(
            np.where(nr > 0, counts_right / nr, 0.0) ** 2, axis=1
        )
    weighted = (left_sizes * gini_l + (n - left_sizes) * gini_r) / n
    weighted[~valid] = np.inf
    best = int(np.argmin(weighted))
    threshold = 0.5 * (xs[best] + xs[best + 1])
    return float(threshold), float(weighted[best])


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """Gini-impurity CART classifier.

    Parameters
    ----------
    max_depth:
        Depth cap (``None`` = grow until pure / size limits).
    min_samples_split, min_samples_leaf:
        Standard CART pre-pruning controls.
    max_features:
        ``None`` (all), ``"sqrt"``, or an int — candidate features per node.
        Random forests pass ``"sqrt"``.
    random_state:
        Seeds the per-node feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def _n_candidate_features(self, p: int) -> int:
        if self.max_features is None:
            return p
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(p)))
        k = int(self.max_features)
        if not 1 <= k <= p:
            raise ValueError(f"max_features={k} out of range [1, {p}]")
        return k

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Fit to training data; returns self."""
        X = check_2d(X)
        y = check_labels(y, n_samples=X.shape[0])
        if self.min_samples_leaf < 1 or self.min_samples_split < 2:
            raise ValueError("min_samples_leaf >= 1 and min_samples_split >= 2 required")
        self.classes_ = np.unique(y)
        k = self.classes_.size
        y_idx = np.searchsorted(self.classes_, y)
        onehot = np.eye(k, dtype=np.float64)[y_idx]
        rng = as_generator(self.random_state)
        p = X.shape[1]
        m = self._n_candidate_features(p)
        max_depth = self.max_depth if self.max_depth is not None else np.inf

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[np.ndarray] = []

        def new_node() -> int:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            value.append(None)  # type: ignore[arg-type]
            return len(feature) - 1

        # Iterative depth-first growth (explicit stack; no recursion limit).
        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(X.shape[0]), 0)]
        while stack:
            node, idx, depth = stack.pop()
            counts = onehot[idx].sum(axis=0)
            value[node] = counts / counts.sum()
            n_node = idx.size
            if (
                depth >= max_depth
                or n_node < self.min_samples_split
                or np.max(counts) == n_node  # pure
            ):
                continue
            cand = (
                np.arange(p)
                if m == p
                else rng.choice(p, size=m, replace=False)
            )
            best_feat, best_thr, best_score = -1, 0.0, np.inf
            Xn = X[idx]
            yn = onehot[idx]
            for f in cand:
                res = best_split_gini(Xn[:, f], yn, self.min_samples_leaf)
                if res is not None and res[1] < best_score:
                    best_feat, best_thr, best_score = int(f), res[0], res[1]
            if best_feat < 0:
                continue
            go_left = Xn[:, best_feat] <= best_thr
            feature[node] = best_feat
            threshold[node] = best_thr
            l_node, r_node = new_node(), new_node()
            left[node], right[node] = l_node, r_node
            stack.append((l_node, idx[go_left], depth + 1))
            stack.append((r_node, idx[~go_left], depth + 1))

        self.feature_ = np.array(feature, dtype=np.int64)
        self.threshold_ = np.array(threshold, dtype=np.float64)
        self.children_left_ = np.array(left, dtype=np.int64)
        self.children_right_ = np.array(right, dtype=np.int64)
        self.value_ = np.vstack(value)
        self.n_features_in_ = p
        self.n_nodes_ = len(feature)
        return self

    # ------------------------------------------------------------------
    def _leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Advance all rows to their leaf node (vectorized level walk)."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feat = self.feature_[node]
            internal = feat >= 0
            if not internal.any():
                return node
            rows = np.flatnonzero(internal)
            f = feat[rows]
            thr = self.threshold_[node[rows]]
            goes_left = X[rows, f] <= thr
            node[rows] = np.where(
                goes_left,
                self.children_left_[node[rows]],
                self.children_right_[node[rows]],
            )

    def predict_proba(self, X) -> np.ndarray:
        """Per-class probability estimates for X."""
        self._check_fitted("value_")
        X = check_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; tree fitted on {self.n_features_in_}"
            )
        return self.value_[self._leaf_indices(X)]

    def predict(self, X) -> np.ndarray:
        """Predict class labels for X."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    @property
    def depth_(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted("feature_")
        depth = np.zeros(self.n_nodes_, dtype=np.int64)
        for node in range(self.n_nodes_):
            for child in (self.children_left_[node], self.children_right_[node]):
                if child >= 0:
                    depth[child] = depth[node] + 1
        return int(depth.max())
