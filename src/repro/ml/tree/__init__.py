"""CART decision trees (the base learner for the random forest)."""

from repro.ml.tree.decision_tree import DecisionTreeClassifier

__all__ = ["DecisionTreeClassifier"]
