"""CART decision trees (the base learner for the random forest)."""

from repro.ml.tree.decision_tree import DecisionTreeClassifier
from repro.ml.tree.flat import FlatForest

__all__ = ["DecisionTreeClassifier", "FlatForest"]
