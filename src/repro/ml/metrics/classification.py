"""Multi-class classification metrics (NumPy implementations)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_consistent_length, check_labels

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "classification_report",
    "top_k_accuracy",
]


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly correct predictions — the WCC evaluation metric."""
    y_true = check_labels(y_true, name="y_true")
    y_pred = check_labels(y_pred, name="y_pred", n_samples=y_true.shape[0])
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, n_classes: int | None = None) -> np.ndarray:
    """``C[i, j]`` = count of class-``i`` items predicted as class ``j``."""
    y_true = check_labels(y_true, name="y_true")
    y_pred = check_labels(y_pred, name="y_pred", n_samples=y_true.shape[0])
    k = n_classes if n_classes is not None else int(max(y_true.max(), y_pred.max())) + 1
    if y_true.max() >= k or y_pred.max() >= k:
        raise ValueError(f"labels exceed n_classes={k}")
    if y_true.min() < 0 or y_pred.min() < 0:
        raise ValueError("labels must be non-negative")
    flat = y_true * k + y_pred
    return np.bincount(flat, minlength=k * k).reshape(k, k)


def precision_recall_f1(
    y_true, y_pred, n_classes: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall and F1 (zero where undefined)."""
    C = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(C).astype(np.float64)
    pred_pos = C.sum(axis=0).astype(np.float64)
    true_pos = C.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_pos > 0, tp / pred_pos, 0.0)
        recall = np.where(true_pos > 0, tp / true_pos, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return precision, recall, f1


def f1_score(y_true, y_pred, average: str = "macro") -> float:
    """Macro- or micro-averaged F1."""
    if average == "micro":
        return accuracy_score(y_true, y_pred)  # micro-F1 == accuracy multi-class
    if average != "macro":
        raise ValueError(f"average must be 'macro' or 'micro', got {average!r}")
    _, _, f1 = precision_recall_f1(y_true, y_pred)
    # Average only over classes present in y_true.
    y_true_arr = check_labels(y_true, name="y_true")
    present = np.unique(y_true_arr)
    return float(f1[present].mean())


def top_k_accuracy(y_true, scores, k: int = 5) -> float:
    """Fraction of samples whose true class is in the top-``k`` scores.

    ``scores`` is ``(n_samples, n_classes)`` (probabilities or logits).
    """
    y_true = check_labels(y_true, name="y_true")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    check_consistent_length(y_true, scores, names=("y_true", "scores"))
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k={k} out of range for {scores.shape[1]} classes")
    topk = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(topk == y_true[:, None], axis=1)))


def classification_report(
    y_true, y_pred, class_names: list[str] | None = None
) -> str:
    """Formatted per-class precision/recall/F1/support report."""
    y_true = check_labels(y_true, name="y_true")
    y_pred = check_labels(y_pred, name="y_pred", n_samples=y_true.shape[0])
    k = int(max(y_true.max(), y_pred.max())) + 1
    if class_names is not None and len(class_names) < k:
        raise ValueError(f"need >= {k} class names, got {len(class_names)}")
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, k)
    support = np.bincount(y_true, minlength=k)
    names = class_names if class_names is not None else [str(i) for i in range(k)]
    width = max(12, max(len(str(n)) for n in names[:k]) + 2)
    lines = [f"{'class':<{width}} {'prec':>6} {'recall':>6} {'f1':>6} {'support':>8}"]
    for i in range(k):
        if support[i] == 0 and precision[i] == 0:
            continue
        lines.append(
            f"{names[i]:<{width}} {precision[i]:>6.3f} {recall[i]:>6.3f} "
            f"{f1[i]:>6.3f} {support[i]:>8d}"
        )
    lines.append("")
    lines.append(
        f"{'accuracy':<{width}} {accuracy_score(y_true, y_pred):>6.3f}"
        f"{'':>14} {support.sum():>8d}"
    )
    return "\n".join(lines)
