"""Classification metrics: the challenge scores on test accuracy."""

from repro.ml.metrics.classification import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    top_k_accuracy,
)

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "classification_report",
    "top_k_accuracy",
]
