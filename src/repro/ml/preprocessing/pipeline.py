"""Sequential transformer → estimator pipeline.

Enough of scikit-learn's ``Pipeline`` semantics for the paper's workflows:
ordered named steps, ``step__param`` routing in ``set_params`` (so grid
search can sweep ``pca__n_components`` and ``svc__C`` together), and
``fit`` / ``predict`` / ``score`` delegation to the final estimator.
"""

from __future__ import annotations

from typing import Any

from repro.ml.base import BaseEstimator, ClassifierMixin, TransformerMixin

__all__ = ["Pipeline"]


class Pipeline(BaseEstimator, ClassifierMixin):
    """Chain of ``(name, transformer)`` steps ending in any estimator."""

    def __init__(self, steps: list[tuple[str, Any]]):
        if not steps:
            raise ValueError("Pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names in {names}")
        for name, est in steps[:-1]:
            if not (hasattr(est, "fit") and hasattr(est, "transform")):
                raise TypeError(
                    f"intermediate step {name!r} must be a transformer "
                    f"(has fit/transform), got {type(est).__name__}"
                )
        if not hasattr(steps[-1][1], "fit"):
            raise TypeError("final step must have a fit method")
        self.steps = steps

    # -- parameter routing -------------------------------------------------
    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """Hyperparameters, optionally expanded through nested steps."""
        params: dict[str, Any] = {"steps": self.steps}
        if deep:
            for name, est in self.steps:
                params[name] = est
                if isinstance(est, BaseEstimator):
                    for sub, val in est.get_params(deep=True).items():
                        params[f"{name}__{sub}"] = val
        return params

    def set_params(self, **params) -> "Pipeline":
        """Set (possibly step-routed) hyperparameters."""
        step_map = dict(self.steps)
        for key, value in params.items():
            if key == "steps":
                self.steps = value
                step_map = dict(self.steps)
                continue
            head, sep, tail = key.partition("__")
            if head not in step_map:
                raise ValueError(f"no step named {head!r} in {list(step_map)}")
            if not sep:
                step_map[head] = value
                self.steps = [(n, step_map[n]) for n, _ in self.steps]
            else:
                step_map[head].set_params(**{tail: value})
        return self

    # -- fitting / inference ------------------------------------------------
    def _transform_through(self, X, *, upto: int):
        for _name, est in self.steps[:upto]:
            X = est.transform(X)
        return X

    def fit(self, X, y=None) -> "Pipeline":
        """Fit to training data; returns self."""
        for _name, est in self.steps[:-1]:
            if isinstance(est, TransformerMixin) or hasattr(est, "fit_transform"):
                X = est.fit_transform(X, y)
            else:
                est.fit(X, y)
                X = est.transform(X)
        self.steps[-1][1].fit(X, y)
        self.fitted_ = True
        return self

    def transform(self, X):
        """Apply all steps' transforms (final step must be a transformer)."""
        self._check_fitted("fitted_")
        X = self._transform_through(X, upto=len(self.steps) - 1)
        return self.steps[-1][1].transform(X)

    def predict(self, X):
        """Predict class labels for X."""
        self._check_fitted("fitted_")
        X = self._transform_through(X, upto=len(self.steps) - 1)
        return self.steps[-1][1].predict(X)

    def predict_proba(self, X):
        """Per-class probability estimates for X."""
        self._check_fitted("fitted_")
        X = self._transform_through(X, upto=len(self.steps) - 1)
        return self.steps[-1][1].predict_proba(X)

    @property
    def named_steps(self) -> dict[str, Any]:
        """Steps as a name -> estimator mapping."""
        return dict(self.steps)

    def __getitem__(self, name: str):
        return self.named_steps[name]
