"""The paper's covariance dimensionality reduction (Section IV-A).

Given one standardized trial ``M ∈ R^{540×7}``, compute the sensor Gram
matrix ``MᵀM ∈ R^{7×7}`` and keep its upper triangle — 28 unique
variance/covariance values — as the feature vector.  This maps the 3-D
challenge tensor ``R^{n×540×7}`` to a 2-D design matrix ``R^{n×28}``.

Feature naming follows Table III sensor order, so feature
``cov(utilization_gpu_pct, power_draw_W)`` in the XGBoost importance
analysis is directly addressable.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.simcluster.sensors import GPU_SENSORS
from repro.utils.validation import check_3d

__all__ = ["upper_triangle_covariance", "covariance_feature_names", "CovarianceFeatures"]


def upper_triangle_covariance(X: np.ndarray, *, normalize: bool = True) -> np.ndarray:
    """Vectorized per-trial sensor covariance, upper triangle only.

    Parameters
    ----------
    X:
        ``(n_trials, n_timesteps, n_sensors)`` tensor (standardize first, as
        the paper does).
    normalize:
        Divide the Gram matrix by ``n_timesteps`` so values are per-sample
        (co)variances rather than raw inner products; scale-invariant models
        are unaffected, but it keeps features O(1).

    Returns
    -------
    ``(n_trials, s(s+1)/2)`` matrix; for 7 sensors, 28 columns.
    """
    X = check_3d(X)
    n, t, s = X.shape
    # One batched GEMM for all trials: (n, s, t) @ (n, t, s) -> (n, s, s).
    gram = np.einsum("nts,ntu->nsu", X, X, optimize=True)
    if normalize:
        gram = gram / t
    iu = np.triu_indices(s)
    return gram[:, iu[0], iu[1]]


def covariance_feature_names(sensor_names: list[str] | None = None) -> list[str]:
    """Names of the 28 covariance features, in feature-column order.

    ``var(x)`` for diagonal entries, ``cov(x, y)`` off-diagonal; order
    matches :func:`upper_triangle_covariance` (row-major upper triangle).
    """
    names = sensor_names if sensor_names is not None else [s.name for s in GPU_SENSORS]
    s = len(names)
    iu = np.triu_indices(s)
    out = []
    for i, j in zip(*iu):
        if i == j:
            out.append(f"var({names[i]})")
        else:
            out.append(f"cov({names[i]}, {names[j]})")
    return out


class CovarianceFeatures(BaseEstimator, TransformerMixin):
    """Transformer wrapper around :func:`upper_triangle_covariance`.

    Stateless (nothing is learned in ``fit``), but keeping the estimator
    interface lets it slot into :class:`repro.ml.preprocessing.Pipeline`
    and grid searches exactly where the paper puts it.
    """

    def __init__(self, normalize: bool = True):
        self.normalize = normalize

    def fit(self, X, y=None) -> "CovarianceFeatures":
        """Fit to training data; returns self."""
        X = check_3d(X)
        self.n_sensors_in_ = X.shape[2]
        self.feature_names_ = covariance_feature_names(
            [s.name for s in GPU_SENSORS]
            if X.shape[2] == len(GPU_SENSORS)
            else [f"sensor{i}" for i in range(X.shape[2])]
        )
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the fitted transformation to X."""
        self._check_fitted("n_sensors_in_")
        X = check_3d(X)
        if X.shape[2] != self.n_sensors_in_:
            raise ValueError(
                f"X has {X.shape[2]} sensors; fitted on {self.n_sensors_in_}"
            )
        return upper_triangle_covariance(X, normalize=self.normalize)
