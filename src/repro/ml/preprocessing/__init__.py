"""Preprocessing: the paper's two dimensionality reductions plus plumbing.

Section IV-A pipeline order (which we preserve): standardize *first*, then
apply either PCA (on flattened 540×7 = 3780-dim trials) or the covariance
upper-triangle reduction to R^28.
"""

from repro.ml.preprocessing.scaler import StandardScaler, TimeSeriesStandardScaler
from repro.ml.preprocessing.pca import PCA
from repro.ml.preprocessing.covariance import (
    CovarianceFeatures,
    covariance_feature_names,
    upper_triangle_covariance,
)
from repro.ml.preprocessing.feature_selection import SelectByImportance
from repro.ml.preprocessing.flatten import Flatten3D
from repro.ml.preprocessing.pipeline import Pipeline

__all__ = [
    "SelectByImportance",
    "StandardScaler",
    "TimeSeriesStandardScaler",
    "PCA",
    "CovarianceFeatures",
    "covariance_feature_names",
    "upper_triangle_covariance",
    "Flatten3D",
    "Pipeline",
]
