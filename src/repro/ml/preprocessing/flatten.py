"""Flatten 3-D trial tensors for the PCA pathway.

"As each trial in the datasets from Table IV have 540 samples across 7
sensors, before performing PCA each trial was reshaped to have the
dimensions 3,780."
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.utils.validation import check_3d

__all__ = ["Flatten3D"]


class Flatten3D(BaseEstimator, TransformerMixin):
    """Reshape ``(n, t, s)`` → ``(n, t*s)`` (a view when layout permits)."""

    def __init__(self):
        pass

    def fit(self, X, y=None) -> "Flatten3D":
        """Fit to training data; returns self."""
        X = check_3d(X)
        self.window_shape_ = X.shape[1:]
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the fitted transformation to X."""
        self._check_fitted("window_shape_")
        X = check_3d(X)
        if X.shape[1:] != self.window_shape_:
            raise ValueError(
                f"window shape {X.shape[1:]} differs from fitted {self.window_shape_}"
            )
        return X.reshape(X.shape[0], -1)
