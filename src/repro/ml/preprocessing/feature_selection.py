"""Importance-guided feature selection (challenge Section III-C).

"Determining feature importance may allow the exclusion of particular
features without affecting classification accuracy."
:class:`SelectByImportance` fits a fast gradient-boosting ranker on the
training fold, keeps the ``k`` features with the highest gain importance,
and exposes the selection as a pipeline transformer — so it can sit
between the covariance reducer and the final classifier in a grid search
sweeping ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.utils.validation import check_2d, check_labels

__all__ = ["SelectByImportance"]


class SelectByImportance(BaseEstimator, TransformerMixin):
    """Keep the top-``k`` features by boosting gain importance.

    Parameters
    ----------
    k:
        Features to keep (clipped to the input dimensionality).
    n_estimators / max_depth:
        Size of the internal ranking ensemble — kept small; ranking needs
        far less capacity than classification.
    """

    def __init__(
        self,
        k: int = 16,
        n_estimators: int = 10,
        max_depth: int = 4,
        random_state: int = 0,
    ):
        self.k = k
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state

    def fit(self, X, y) -> "SelectByImportance":
        """Fit to training data; returns self."""
        from repro.ml.boosting import GradientBoostingClassifier

        X = check_2d(X)
        y = check_labels(y, n_samples=X.shape[0])
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        ranker = GradientBoostingClassifier(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            random_state=self.random_state,
        )
        ranker.fit(X, y)
        importances = ranker.feature_importances_
        k = min(self.k, X.shape[1])
        order = np.argsort(-importances, kind="stable")
        self.support_ = np.sort(order[:k])
        self.importances_ = importances
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the fitted transformation to X."""
        self._check_fitted("support_")
        X = check_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; selector fitted on "
                f"{self.n_features_in_}"
            )
        return X[:, self.support_]

    def selected_names(self, names: list[str]) -> list[str]:
        """Map the selection onto feature names (e.g. the 28 covariance
        feature names)."""
        self._check_fitted("support_")
        if len(names) != self.n_features_in_:
            raise ValueError(
                f"need {self.n_features_in_} names, got {len(names)}"
            )
        return [names[i] for i in self.support_]
