"""Principal component analysis via thin SVD.

The paper's first reduction: flatten each ``540 × 7`` trial to 3,780
features and project onto the top 28/64/256/512 principal components.  Per
the optimization guide, we use the *thin* SVD (``full_matrices=False``) —
the full decomposition of a ``n × 3780`` matrix is orders of magnitude
slower for no benefit.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.utils.validation import check_2d

__all__ = ["PCA"]


class PCA(BaseEstimator, TransformerMixin):
    """Project onto the top ``n_components`` principal directions.

    Signs of components are fixed (largest-magnitude loading positive) so
    results are deterministic across LAPACK builds.
    """

    def __init__(self, n_components: int = 2):
        self.n_components = n_components

    def fit(self, X, y=None) -> "PCA":
        """Fit to training data; returns self."""
        X = check_2d(X)
        n, p = X.shape
        k = int(self.n_components)
        if not 1 <= k <= min(n, p):
            raise ValueError(
                f"n_components={k} must be in [1, min(n_samples={n}, n_features={p})]"
            )
        self.mean_ = X.mean(axis=0)
        Xc = X - self.mean_
        # Thin SVD: Xc = U S Vt with Vt (min(n,p), p).
        _U, S, Vt = linalg.svd(Xc, full_matrices=False)
        comps = Vt[:k]
        # Deterministic sign convention.
        signs = np.sign(comps[np.arange(k), np.argmax(np.abs(comps), axis=1)])
        signs[signs == 0] = 1.0
        comps = comps * signs[:, None]
        self.components_ = comps
        var = (S**2) / max(n - 1, 1)
        self.explained_variance_ = var[:k]
        total = var.sum()
        self.explained_variance_ratio_ = (
            var[:k] / total if total > 0 else np.zeros(k)
        )
        self.n_features_in_ = p
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the fitted transformation to X."""
        self._check_fitted("components_", "mean_")
        X = check_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; PCA fitted on {self.n_features_in_}"
            )
        return (X - self.mean_) @ self.components_.T

    def inverse_transform(self, X) -> np.ndarray:
        """Map transformed data back to the original space."""
        self._check_fitted("components_", "mean_")
        X = check_2d(X)
        return X @ self.components_ + self.mean_
