"""Standardization (zero mean, unit variance per feature).

Two variants: the classic 2-D :class:`StandardScaler`, and
:class:`TimeSeriesStandardScaler`, which standardizes each *sensor* of a
3-D ``(trials, timesteps, sensors)`` tensor across all trials and timesteps
— matching the paper's use of scikit-learn's ``StandardScaler`` on the
challenge tensors "before either covariance or PCA dimensionality
reduction" (Section IV-A) and before RNN training (Section V).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.utils.validation import check_2d, check_3d

__all__ = ["StandardScaler", "TimeSeriesStandardScaler"]


class StandardScaler(BaseEstimator, TransformerMixin):
    """Per-feature standardization of a 2-D design matrix."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        """Fit to training data; returns self."""
        X = check_2d(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            # Constant features scale by 1 (stay constant) rather than blow up.
            self.scale_ = np.where(std > 0, std, 1.0)
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the fitted transformation to X."""
        self._check_fitted("mean_", "scale_")
        X = check_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; scaler fitted on {self.n_features_in_}"
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        """Map transformed data back to the original space."""
        self._check_fitted("mean_", "scale_")
        X = check_2d(X)
        return X * self.scale_ + self.mean_


class TimeSeriesStandardScaler(BaseEstimator, TransformerMixin):
    """Per-sensor standardization of ``(trials, timesteps, sensors)`` data.

    Statistics pool over trials *and* timesteps, so a sensor's scale is
    consistent across the whole dataset (power in watts and utilization in
    percent end up comparable), while the temporal shape of each trial is
    preserved.
    """

    def __init__(self):
        pass

    def fit(self, X, y=None) -> "TimeSeriesStandardScaler":
        """Fit to training data; returns self."""
        X = check_3d(X)
        self.mean_ = X.mean(axis=(0, 1))
        std = X.std(axis=(0, 1))
        self.scale_ = np.where(std > 0, std, 1.0)
        self.n_sensors_in_ = X.shape[2]
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the fitted transformation to X."""
        self._check_fitted("mean_", "scale_")
        X = check_3d(X)
        if X.shape[2] != self.n_sensors_in_:
            raise ValueError(
                f"X has {X.shape[2]} sensors; scaler fitted on {self.n_sensors_in_}"
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        """Map transformed data back to the original space."""
        self._check_fitted("mean_", "scale_")
        X = check_3d(X)
        return X * self.scale_ + self.mean_
