"""Estimator base classes and :func:`clone` (scikit-learn conventions).

Hyperparameters are exactly the keyword arguments of ``__init__`` and are
stored under the same attribute names; fitted state uses a trailing
underscore (``coef_``) so :func:`clone` can produce an unfitted copy by
re-invoking the constructor.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

__all__ = ["BaseEstimator", "ClassifierMixin", "TransformerMixin", "clone"]


class BaseEstimator:
    """Parameter introspection shared by every estimator in :mod:`repro.ml`."""

    @classmethod
    def _param_names(cls) -> list[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        sig = inspect.signature(init)
        names = [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        return sorted(names)

    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """Return hyperparameters; with ``deep``, expand nested estimators
        as ``<name>__<subparam>`` entries."""
        params: dict[str, Any] = {}
        for name in self._param_names():
            value = getattr(self, name)
            params[name] = value
            if deep and isinstance(value, BaseEstimator):
                for sub, sub_val in value.get_params(deep=True).items():
                    params[f"{name}__{sub}"] = sub_val
        return params

    def set_params(self, **params) -> "BaseEstimator":
        """Set hyperparameters, supporting ``nested__param`` syntax."""
        valid = set(self._param_names())
        nested: dict[str, dict[str, Any]] = {}
        for key, value in params.items():
            if "__" in key:
                head, _, tail = key.partition("__")
                if head not in valid:
                    raise ValueError(
                        f"invalid parameter {head!r} for {type(self).__name__}"
                    )
                nested.setdefault(head, {})[tail] = value
            else:
                if key not in valid:
                    raise ValueError(
                        f"invalid parameter {key!r} for {type(self).__name__}; "
                        f"valid: {sorted(valid)}"
                    )
                setattr(self, key, value)
        for head, sub_params in nested.items():
            sub_est = getattr(self, head)
            if not isinstance(sub_est, BaseEstimator):
                raise ValueError(f"parameter {head!r} is not an estimator")
            sub_est.set_params(**sub_params)
        return self

    def _check_fitted(self, *attrs: str) -> None:
        missing = [a for a in attrs if not hasattr(self, a)]
        if missing:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted (missing {missing}); "
                "call fit first"
            )

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params(deep=False).items())
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Adds ``score`` = test accuracy, the challenge's evaluation metric."""

    def score(self, X, y) -> float:
        """Mean accuracy of predictions on (X, y)."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))


class TransformerMixin:
    """Adds ``fit_transform`` sugar."""

    def fit_transform(self, X, y=None):
        """Fit to X, then transform it (convenience)."""
        return self.fit(X, y).transform(X)


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Unfitted copy with identical hyperparameters (deep-copied values)."""
    if not isinstance(estimator, BaseEstimator):
        raise TypeError(f"cannot clone {type(estimator).__name__}")
    params = {}
    for name, value in estimator.get_params(deep=False).items():
        if isinstance(value, BaseEstimator):
            params[name] = clone(value)
        elif isinstance(value, list) and all(
            isinstance(v, tuple) and len(v) == 2 and isinstance(v[1], BaseEstimator)
            for v in value
        ):
            # Pipeline-style [(name, estimator), ...] lists.
            params[name] = [(n, clone(e)) for n, e in value]
        else:
            params[name] = copy.deepcopy(value)
    return type(estimator)(**params)
