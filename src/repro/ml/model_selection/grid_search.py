"""Exhaustive grid search with cross-validation.

Serial by default; pass ``n_jobs > 1`` to fan candidate × fold evaluations
out over a process pool (:mod:`repro.parallel`).  Results are identical
either way because every evaluation is a pure function of (estimator
params, fold indices).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, clone
from repro.ml.metrics import accuracy_score
from repro.ml.model_selection.kfold import StratifiedKFold

__all__ = ["ParameterGrid", "GridSearchCV", "cross_val_score"]


class ParameterGrid:
    """Iterate the cartesian product of a ``{param: [values]}`` grid.

    Also accepts a *list* of grids (union of products), as scikit-learn
    does, which the benchmarks use to sweep PCA and covariance pipelines in
    one search.
    """

    def __init__(self, grid: dict[str, Sequence] | list[dict[str, Sequence]]):
        self.grid = [grid] if isinstance(grid, dict) else list(grid)
        for g in self.grid:
            for key, values in g.items():
                if isinstance(values, str) or not isinstance(values, Iterable):
                    raise TypeError(
                        f"grid values for {key!r} must be a non-string sequence"
                    )

    def __iter__(self):
        for g in self.grid:
            if not g:
                yield {}
                continue
            keys = sorted(g)
            for combo in itertools.product(*(g[k] for k in keys)):
                yield dict(zip(keys, combo))

    def __len__(self) -> int:
        total = 0
        for g in self.grid:
            n = 1
            for values in g.values():
                n *= len(values)
            total += n
        return total


def _fit_score_one(
    estimator: BaseEstimator,
    params: dict[str, Any],
    X,
    y,
    train_idx: np.ndarray,
    val_idx: np.ndarray,
) -> float:
    est = clone(estimator).set_params(**params)
    est.fit(X[train_idx], y[train_idx])
    return accuracy_score(y[val_idx], est.predict(X[val_idx]))


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    *,
    cv: int | StratifiedKFold = 5,
    params: dict[str, Any] | None = None,
    n_jobs: int = 1,
) -> np.ndarray:
    """Per-fold validation accuracies of one estimator configuration.

    ``n_jobs > 1`` fans the folds out over a process pool
    (:mod:`repro.parallel`); scores are identical either way because each
    fold is a pure function of (params, fold indices).
    """
    splitter = StratifiedKFold(cv) if isinstance(cv, int) else cv
    params = params or {}
    X = np.asarray(X)
    y = np.asarray(y)
    folds = list(splitter.split(X, y))
    if n_jobs > 1:
        from repro.parallel import parallel_map

        scores = parallel_map(
            _GridTask(estimator, X, y),
            [(0, fi, params, tr, va) for fi, (tr, va) in enumerate(folds)],
            n_jobs=n_jobs,
        )
        return np.array(scores)
    return np.array(
        [_fit_score_one(estimator, params, X, y, tr, va)
         for tr, va in folds]
    )


class GridSearchCV(BaseEstimator, ClassifierMixin):
    """Grid search selecting the parameter combination with the highest
    mean cross-validated accuracy, then refitting on all data.

    Attributes after ``fit``
    ------------------------
    best_params_, best_score_, best_estimator_:
        Winning configuration, its mean CV accuracy, and the refit model.
    cv_results_:
        ``{"params": [...], "mean_score": array, "std_score": array,
        "fold_scores": array (n_candidates, n_folds)}``.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: dict | list[dict],
        cv: int = 5,
        n_jobs: int = 1,
        refit: bool = True,
        random_state: int = 0,
        verbose: bool = False,
    ):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.n_jobs = n_jobs
        self.refit = refit
        self.random_state = random_state
        self.verbose = verbose

    def fit(self, X, y) -> "GridSearchCV":
        """Fit to training data; returns self."""
        X = np.asarray(X)
        y = np.asarray(y)
        candidates = list(ParameterGrid(self.param_grid))
        if not candidates:
            raise ValueError("empty parameter grid")
        splitter = StratifiedKFold(self.cv, random_state=self.random_state)
        folds = list(splitter.split(X, y))

        tasks = [
            (ci, fi, params, tr, va)
            for ci, params in enumerate(candidates)
            for fi, (tr, va) in enumerate(folds)
        ]
        scores = np.zeros((len(candidates), len(folds)))

        if self.n_jobs > 1:
            from repro.parallel import parallel_map

            results = parallel_map(
                _GridTask(self.estimator, X, y),
                [(ci, fi, params, tr, va) for ci, fi, params, tr, va in tasks],
                n_jobs=self.n_jobs,
            )
            for (ci, fi, params, *_), score in zip(tasks, results):
                scores[ci, fi] = score
                if self.verbose:
                    print(f"[grid] cand {ci} fold {fi}: {scores[ci, fi]:.4f} {params}")
        else:
            for ci, fi, params, tr, va in tasks:
                scores[ci, fi] = _fit_score_one(self.estimator, params, X, y, tr, va)
                if self.verbose:
                    print(f"[grid] cand {ci} fold {fi}: {scores[ci, fi]:.4f} {params}")

        mean = scores.mean(axis=1)
        best = int(np.argmax(mean))
        self.cv_results_ = {
            "params": candidates,
            "mean_score": mean,
            "std_score": scores.std(axis=1),
            "fold_scores": scores,
        }
        self.best_index_ = best
        self.best_params_ = candidates[best]
        self.best_score_ = float(mean[best])
        if self.refit:
            self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
            self.best_estimator_.fit(X, y)
        return self

    def predict(self, X):
        """Predict class labels for X."""
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X):
        """Per-class probability estimates for X."""
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict_proba(X)


class _GridTask:
    """Picklable callable for process-pool grid evaluation."""

    def __init__(self, estimator: BaseEstimator, X: np.ndarray, y: np.ndarray):
        self.estimator = estimator
        self.X = X
        self.y = y

    def __call__(self, task) -> float:
        _ci, _fi, params, tr, va = task
        return _fit_score_one(self.estimator, params, self.X, self.y, tr, va)
