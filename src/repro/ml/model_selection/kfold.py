"""K-fold cross-validation splitters."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_labels

__all__ = ["KFold", "StratifiedKFold"]


class KFold:
    """Plain k-fold: contiguous folds of a (possibly shuffled) index range."""

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: int | np.random.Generator | None = 0,
    ):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None):
        """Yield ``(train_idx, val_idx)`` pairs."""
        n = len(X)
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            as_generator(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            val = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield np.sort(train), np.sort(val)
            start += size


class StratifiedKFold:
    """K-fold preserving per-class proportions in every fold.

    Classes with fewer members than ``n_splits`` are round-robined so each
    appears in at most one validation fold — no fold ever sees a class in
    validation that is absent from its training side unless the class has a
    single member.
    """

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: int | np.random.Generator | None = 0,
    ):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y):
        """Yield (train_indices, val_indices) pairs."""
        y = check_labels(y, name="y", n_samples=len(X))
        rng = as_generator(self.random_state)
        n = y.shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        fold_of = np.empty(n, dtype=np.int64)
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            if self.shuffle:
                rng.shuffle(members)
            # Deal members round-robin across folds.
            fold_of[members] = np.arange(members.size) % self.n_splits
        for fold in range(self.n_splits):
            val = np.flatnonzero(fold_of == fold)
            if val.size == 0:
                raise ValueError(
                    f"fold {fold} is empty; reduce n_splits={self.n_splits}"
                )
            train = np.flatnonzero(fold_of != fold)
            yield train, val
