"""Model selection: k-fold cross-validation and grid search.

The paper selects SVM/RF models by "performing a 10-fold grid search over a
variety of hyperparameters" and XGBoost by 5-fold cross-validation; these
utilities implement that protocol.
"""

from repro.ml.model_selection.kfold import KFold, StratifiedKFold
from repro.ml.model_selection.grid_search import (
    GridSearchCV,
    ParameterGrid,
    cross_val_score,
)

__all__ = [
    "KFold",
    "StratifiedKFold",
    "ParameterGrid",
    "GridSearchCV",
    "cross_val_score",
]
