"""Dataset summary tables (paper Tables I, IV and VII–IX)."""

from __future__ import annotations

from repro.data.dataset import ChallengeDataset, LabelledDataset
from repro.simcluster.architectures import ARCHITECTURES

__all__ = ["architecture_job_counts", "family_totals", "challenge_suite_table",
           "format_table"]


def architecture_job_counts(dataset: LabelledDataset) -> dict[str, dict]:
    """Per-class job and trial counts (Tables VII–IX analogue).

    Jobs are distinct scheduler jobs; trials are GPU series (label repeated
    per GPU, so trials >= jobs).
    """
    per_class: dict[str, dict] = {
        spec.name: {"family": spec.family.value, "jobs": set(), "trials": 0,
                    "paper_jobs": spec.paper_job_count}
        for spec in ARCHITECTURES
    }
    for trial in dataset:
        entry = per_class[trial.model_name]
        entry["jobs"].add(trial.job_id)
        entry["trials"] += 1
    for entry in per_class.values():
        entry["jobs"] = len(entry["jobs"])
    return per_class


def family_totals(dataset: LabelledDataset) -> dict[str, int]:
    """Job totals per family (Table I analogue)."""
    counts = architecture_job_counts(dataset)
    totals: dict[str, int] = {}
    for entry in counts.values():
        totals[entry["family"]] = totals.get(entry["family"], 0) + entry["jobs"]
    return totals


def challenge_suite_table(suite: dict[str, ChallengeDataset]) -> list[dict]:
    """Table IV analogue: one row per challenge dataset."""
    return [ds.summary_row() for ds in suite.values()]


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render a list of dicts as an aligned text table (for bench output)."""
    if not rows:
        return "(empty)"
    columns = columns or list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns) for r in rows
    ]
    return "\n".join([header, sep, *body])
