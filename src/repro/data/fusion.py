"""Multi-rate CPU + GPU feature fusion (challenge Section III-C).

One of the challenge's stated difficulties is that "the CPU and GPU time
series are sampled at different rates, they will have different lengths for
the same trial".  This module implements the straightforward resolution the
paper hints at: summarize each job's slow CPU series into fixed-length
statistics and concatenate them with the GPU window's covariance features.

The fused design matrix lets the extension benchmark quantify how much the
CPU side adds on top of GPU-only classification.
"""

from __future__ import annotations

import numpy as np

from repro.simcluster.cluster import SimulatedJob
from repro.simcluster.cpu_model import CpuSeries
from repro.simcluster.sensors import CPU_METRICS

__all__ = ["cpu_feature_names", "cpu_summary_features", "build_fused_dataset"]

#: Cumulative Table II counters summarized by *rate*, others by level stats.
_CUMULATIVE = {"CPUTime", "Pages", "ReadMB", "WriteMB"}


def cpu_feature_names() -> list[str]:
    """Names of the per-job CPU summary features, in column order."""
    names: list[str] = []
    for metric in CPU_METRICS:
        if metric.name in _CUMULATIVE:
            names.append(f"rate({metric.name})")
        else:
            names.extend([f"mean({metric.name})", f"std({metric.name})",
                          f"max({metric.name})"])
    return names


def cpu_summary_features(series: CpuSeries) -> np.ndarray:
    """Fixed-length summary of one job's CPU telemetry.

    Cumulative counters are reduced to average rates (their informative
    content); instantaneous metrics to mean/std/max.  The vector length is
    rate-independent, which is exactly what makes fusion with the
    differently-sampled GPU windows well-posed.
    """
    data = series.data
    if data.shape[1] != len(CPU_METRICS):
        raise ValueError(
            f"expected {len(CPU_METRICS)} CPU metrics, got {data.shape[1]}"
        )
    duration = max(series.n_samples * series.dt_s, 1e-9)
    feats: list[float] = []
    for j, metric in enumerate(CPU_METRICS):
        col = data[:, j]
        if metric.name in _CUMULATIVE:
            feats.append(float((col[-1] - col[0]) / duration))
        else:
            feats.extend([float(col.mean()), float(col.std()),
                          float(col.max())])
    return np.array(feats, dtype=np.float64)


def build_fused_dataset(
    jobs: list[SimulatedJob],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-trial (GPU series, CPU summary, label, job id) arrays.

    Returns
    -------
    gpu_index:
        ``(n_trials,)`` index into ``jobs`` — callers window the GPU series
        themselves (lengths vary).
    cpu_features:
        ``(n_trials, k)`` job-level CPU summaries, repeated across a job's
        GPU trials (the CPU series is per job, not per GPU).
    labels, job_ids:
        Per-trial class labels and grouping keys.
    """
    rows: list[int] = []
    cpu_rows: list[np.ndarray] = []
    labels: list[int] = []
    job_ids: list[int] = []
    for j, job in enumerate(jobs):
        if job.cpu_series is None:
            raise ValueError(
                f"job {job.record.job_id} has no CPU series; enable "
                "generate_cpu in SimulationConfig"
            )
        cpu_vec = cpu_summary_features(job.cpu_series)
        for _gs in job.gpu_series:
            rows.append(j)
            cpu_rows.append(cpu_vec)
            labels.append(job.record.class_label)
            job_ids.append(job.record.job_id)
    return (
        np.array(rows, dtype=np.int64),
        np.vstack(cpu_rows),
        np.array(labels, dtype=np.int64),
        np.array(job_ids, dtype=np.int64),
    )
