"""60-second window extraction.

The seven challenge datasets differ only in *where* the window is cut from
each trial: the first 540 samples (``START``), the centered 540 samples
(``MIDDLE``), or 540 samples at a uniformly random offset (``RANDOM`` — five
independent draws give the five random datasets).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["WindowMode", "window_offsets", "extract_window"]


class WindowMode(enum.Enum):
    """Where the 60-second window is cut from a trial."""

    START = "start"
    MIDDLE = "middle"
    RANDOM = "random"

    @classmethod
    def parse(cls, value: "WindowMode | str") -> "WindowMode":
        """Coerce a string or enum member to a WindowMode."""
        if isinstance(value, WindowMode):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(
                f"unknown window mode {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None


def window_offsets(
    lengths: np.ndarray,
    window: int,
    mode: WindowMode | str,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Vectorized start offsets for cutting a ``window``-sample slice.

    Parameters
    ----------
    lengths:
        Per-trial series lengths; every entry must be >= ``window``.
    window:
        Window length in samples (540 for the release datasets).
    mode:
        Where to cut.  ``RANDOM`` requires ``rng``.

    Returns
    -------
    Integer offsets, one per trial, with ``offset + window <= length``.
    """
    mode = WindowMode.parse(mode)
    lengths = np.asarray(lengths, dtype=np.int64)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if np.any(lengths < window):
        bad = int(np.sum(lengths < window))
        raise ValueError(
            f"{bad} trial(s) shorter than window={window}; filter with "
            "LabelledDataset.eligible first"
        )
    slack = lengths - window
    if mode is WindowMode.START:
        return np.zeros_like(lengths)
    if mode is WindowMode.MIDDLE:
        return slack // 2
    if rng is None:
        raise ValueError("RANDOM window mode requires an rng")
    # rng.integers is exclusive on the high end; slack itself is valid.
    return rng.integers(0, slack + 1)


def extract_window(
    series: np.ndarray, offset: int, window: int, *, job_id: int | None = None
) -> np.ndarray:
    """Cut one window (returns a view — no copy, per the NumPy guide).

    ``job_id`` is provenance for the error message only: a bad offset on
    a 17k-trial release should say *which* trial was too short.
    """
    n = series.shape[0]
    if offset < 0 or offset + window > n:
        who = f"job {job_id}'s series" if job_id is not None else "series"
        raise ValueError(
            f"window [{offset}, {offset + window}) out of bounds for "
            f"{who} of length {n}"
        )
    return series[offset : offset + window]
