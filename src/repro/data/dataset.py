"""Dataset containers.

Two levels, matching the paper's pipeline:

* :class:`LabelledDataset` — the *raw* labelled release: variable-length
  GPU series (one per GPU of every job) with integer labels and job
  provenance.  Lengths differ per trial (one of the challenge's stated
  difficulties).
* :class:`ChallengeDataset` — one of the seven fixed-window datasets:
  dense ``(trials, 540, 7)`` train/test tensors plus label and model-name
  vectors, exactly the npz layout of the release.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simcluster.architectures import architecture_names
from repro.simcluster.sensors import N_GPU_SENSORS
from repro.utils.validation import check_consistent_length

__all__ = ["LabelledTrial", "LabelledDataset", "ChallengeDataset"]


@dataclass
class LabelledTrial:
    """One labelled GPU time series (a *trial* in the paper's terminology).

    Multi-GPU jobs contribute several trials with the same ``job_id`` and
    label — "the labelling is repeated for a single job with multiple nodes
    and multiple GPUs".
    """

    series: np.ndarray          # (n_samples, 7) float array, variable length
    label: int                  # class index in [0, 26)
    model_name: str             # architecture name, e.g. "VGG16"
    job_id: int                 # scheduler job id (grouping key for splits)
    gpu_index: int = 0          # GPU within the job

    def __post_init__(self):
        # float32 series (the telemetry store's native dtype) pass through
        # untouched so memmap-backed trials stay zero-copy; everything else
        # keeps the historical float64 coercion.
        series = self.series
        keep = isinstance(series, np.ndarray) and series.dtype == np.float32
        self.series = np.asarray(series, dtype=np.float32 if keep else np.float64)
        if self.series.ndim != 2 or self.series.shape[1] != N_GPU_SENSORS:
            raise ValueError(
                f"trial series must be (n, {N_GPU_SENSORS}), got {self.series.shape}"
            )
        if self.label < 0:
            raise ValueError(f"negative label {self.label}")

    @property
    def n_samples(self) -> int:
        """Number of time samples in the series."""
        return self.series.shape[0]


@dataclass
class LabelledDataset:
    """The raw labelled release: variable-length trials."""

    trials: list[LabelledTrial] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self):
        return iter(self.trials)

    def labels(self) -> np.ndarray:
        """Per-trial integer class labels."""
        return np.array([t.label for t in self.trials], dtype=np.int64)

    def job_ids(self) -> np.ndarray:
        """Per-trial scheduler job ids (split grouping keys)."""
        return np.array([t.job_id for t in self.trials], dtype=np.int64)

    def lengths(self) -> np.ndarray:
        """Per-trial series lengths in samples."""
        return np.array([t.n_samples for t in self.trials], dtype=np.int64)

    def n_jobs(self) -> int:
        """Number of distinct jobs contributing trials."""
        return len(set(t.job_id for t in self.trials))

    def eligible(self, min_samples: int) -> "LabelledDataset":
        """Trials long enough to cut a ``min_samples`` window from.

        Mirrors the release rule: datasets were "sampled from all trials in
        the labelled dataset that ran at least for (approximately) one
        minute".
        """
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        return LabelledDataset([t for t in self.trials if t.n_samples >= min_samples])

    def class_counts(self) -> dict[str, int]:
        """Trial count per class name (ordered by class index)."""
        names = architecture_names()
        counts = np.bincount(self.labels(), minlength=len(names))
        return {name: int(c) for name, c in zip(names, counts)}


@dataclass
class ChallengeDataset:
    """One fixed-window challenge dataset in the release layout."""

    name: str                   # e.g. "60-random-1"
    X_train: np.ndarray         # (n_train, samples, sensors)
    y_train: np.ndarray         # (n_train,)
    model_train: np.ndarray     # (n_train,) unicode names
    X_test: np.ndarray
    y_test: np.ndarray
    model_test: np.ndarray

    def __post_init__(self):
        self.X_train = np.asarray(self.X_train)
        self.X_test = np.asarray(self.X_test)
        self.y_train = np.asarray(self.y_train, dtype=np.int64)
        self.y_test = np.asarray(self.y_test, dtype=np.int64)
        self.model_train = np.asarray(self.model_train)
        self.model_test = np.asarray(self.model_test)
        if self.X_train.ndim != 3 or self.X_test.ndim != 3:
            raise ValueError("X arrays must be 3-D (trials, samples, sensors)")
        if self.X_train.shape[1:] != self.X_test.shape[1:]:
            raise ValueError("train/test window shapes differ")
        check_consistent_length(self.X_train, self.y_train, self.model_train,
                                names=("X_train", "y_train", "model_train"))
        check_consistent_length(self.X_test, self.y_test, self.model_test,
                                names=("X_test", "y_test", "model_test"))

    @property
    def n_train(self) -> int:
        """Number of training trials."""
        return self.X_train.shape[0]

    @property
    def n_test(self) -> int:
        """Number of test trials."""
        return self.X_test.shape[0]

    @property
    def n_samples(self) -> int:
        """Timesteps per window (540 in the release)."""
        return self.X_train.shape[1]

    @property
    def n_sensors(self) -> int:
        """Sensors per sample (7 for the GPU datasets)."""
        return self.X_train.shape[2]

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels."""
        return int(max(self.y_train.max(), self.y_test.max())) + 1

    def summary_row(self) -> dict:
        """Table IV row: training trials, testing trials, samples, sensors."""
        return {
            "dataset": self.name,
            "training_trials": self.n_train,
            "testing_trials": self.n_test,
            "samples": self.n_samples,
            "sensors": self.n_sensors,
        }

    def as_npz_dict(self) -> dict[str, np.ndarray]:
        """The six release arrays keyed by npz name."""
        return {
            "X_train": self.X_train,
            "y_train": self.y_train,
            "model_train": self.model_train,
            "X_test": self.X_test,
            "y_test": self.y_test,
            "model_test": self.model_test,
        }
