"""Full-trace (start-to-finish) workload features.

The paper closes with: "we are excited by the prospect of training models
on the entire dataset of workloads from start-to-finish ... the ability for
them to learn the structures and patterns of a full workload will help in
classifying snapshots of data from live workloads".

This module provides the covariance-feature analogue for *whole*
variable-length series — the covariance trick is length-invariant, so the
same R^28 representation extends from fixed 60-second windows to full
traces without any alignment machinery.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LabelledDataset

__all__ = ["full_trace_covariance", "full_trace_features"]


def full_trace_covariance(
    series: np.ndarray,
    mean: np.ndarray,
    scale: np.ndarray,
) -> np.ndarray:
    """Upper-triangle sensor covariance of one variable-length series.

    ``mean`` / ``scale`` are the dataset-level per-sensor standardization
    statistics (computed once over all trials, as the paper's
    ``StandardScaler`` does) so features remain comparable across trials of
    different lengths.
    """
    z = (np.asarray(series, dtype=np.float64) - mean) / scale
    t, s = z.shape
    gram = (z.T @ z) / t
    iu = np.triu_indices(s)
    return gram[iu]


def full_trace_features(
    dataset: LabelledDataset,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Covariance features over every trial's *entire* series.

    Returns ``(X, y, job_ids)`` with ``X`` of shape ``(n_trials, 28)``.
    Standardization statistics pool all samples of all trials (weighted by
    length), mirroring the windowed pipeline's scaler semantics.
    """
    if len(dataset) == 0:
        raise ValueError("empty labelled dataset")
    n_sensors = dataset.trials[0].series.shape[1]
    # Pooled mean/std over all samples of all trials, computed in one pass.
    total = np.zeros(n_sensors)
    total_sq = np.zeros(n_sensors)
    count = 0
    for trial in dataset:
        total += trial.series.sum(axis=0)
        total_sq += (trial.series.astype(np.float64) ** 2).sum(axis=0)
        count += trial.n_samples
    mean = total / count
    var = np.maximum(total_sq / count - mean**2, 0.0)
    scale = np.where(var > 0, np.sqrt(var), 1.0)

    X = np.vstack([
        full_trace_covariance(trial.series, mean, scale) for trial in dataset
    ])
    return X, dataset.labels(), dataset.job_ids()
