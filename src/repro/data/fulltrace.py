"""Full-trace (start-to-finish) workload features.

The paper closes with: "we are excited by the prospect of training models
on the entire dataset of workloads from start-to-finish ... the ability for
them to learn the structures and patterns of a full workload will help in
classifying snapshots of data from live workloads".

This module provides the covariance-feature analogue for *whole*
variable-length series — the covariance trick is length-invariant, so the
same R^28 representation extends from fixed 60-second windows to full
traces without any alignment machinery.

Everything here is **single-pass and bounded-memory**: series are
consumed in ``chunk_rows``-sized blocks standardized into one reused
scratch buffer, so a multi-hour trace never materializes a full
standardized copy.  For series that fit one chunk (every release-scale
trial) the result is bit-identical to the dense formulation, which is
kept as ``_full_trace_covariance_dense`` and pinned by the parity suite.
:class:`TraceMoments` accumulates the raw ``(count, sum, outer-product)``
sufficient statistics instead — mergeable across chunks and processes —
and is what the telemetry store's compaction downsampler persists so
covariance features survive after raw rows are folded into time buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import LabelledDataset

__all__ = [
    "TraceMoments",
    "full_trace_covariance",
    "full_trace_features",
]

#: Rows standardized per chunk; bounds scratch at ~1 MiB for 7 sensors.
DEFAULT_CHUNK_ROWS = 16384


@dataclass
class TraceMoments:
    """Raw second moments of a series: ``count``, ``sum``, gram matrix.

    One pass of :meth:`update` calls over row chunks accumulates
    everything needed to reconstruct the standardized covariance features
    later — for *any* standardization statistics — via
    :meth:`standardized_covariance`.  Instances merge associatively, so
    per-segment moments combine into per-trial ones.
    """

    n_sensors: int
    count: int = 0
    sum: np.ndarray = field(default=None)
    gram: np.ndarray = field(default=None)

    def __post_init__(self):
        if self.sum is None:
            self.sum = np.zeros(self.n_sensors)
        if self.gram is None:
            self.gram = np.zeros((self.n_sensors, self.n_sensors))

    def update(self, chunk: np.ndarray) -> "TraceMoments":
        """Fold one ``(m, n_sensors)`` row block into the moments."""
        chunk = np.asarray(chunk)
        if chunk.ndim != 2 or chunk.shape[1] != self.n_sensors:
            raise ValueError(
                f"chunk must be (m, {self.n_sensors}), got {chunk.shape}"
            )
        c = chunk.astype(np.float64, copy=False)
        self.count += chunk.shape[0]
        self.sum += c.sum(axis=0)
        self.gram += c.T @ c
        return self

    def merge(self, other: "TraceMoments") -> "TraceMoments":
        """Combine with moments accumulated elsewhere (associative)."""
        if other.n_sensors != self.n_sensors:
            raise ValueError("cannot merge moments with different sensor counts")
        self.count += other.count
        self.sum += other.sum
        self.gram += other.gram
        return self

    def standardized_covariance(
        self, mean: np.ndarray, scale: np.ndarray
    ) -> np.ndarray:
        """Upper-triangle covariance features under ``(mean, scale)``.

        Uses the shift identity ``zᵀz = D⁻¹(G − μsᵀ − sμᵀ + tμμᵀ)D⁻¹``
        (``G`` the raw gram, ``s`` the raw sum, ``D = diag(scale)``), so
        no pass over the original rows is needed.
        """
        if self.count == 0:
            raise ValueError("no rows accumulated")
        mean = np.asarray(mean, dtype=np.float64)
        scale = np.asarray(scale, dtype=np.float64)
        centered = (
            self.gram
            - np.outer(mean, self.sum)
            - np.outer(self.sum, mean)
            + self.count * np.outer(mean, mean)
        )
        gram = centered / np.outer(scale, scale)
        iu = np.triu_indices(self.n_sensors)
        return gram[iu] / self.count


def _full_trace_covariance_dense(
    series: np.ndarray, mean: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Reference implementation: materializes the full standardized copy."""
    z = (np.asarray(series, dtype=np.float64) - mean) / scale
    t, s = z.shape
    gram = (z.T @ z) / t
    iu = np.triu_indices(s)
    return gram[iu]


def full_trace_covariance(
    series: np.ndarray,
    mean: np.ndarray,
    scale: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Upper-triangle sensor covariance of one variable-length series.

    ``mean`` / ``scale`` are the dataset-level per-sensor standardization
    statistics (computed once over all trials, as the paper's
    ``StandardScaler`` does) so features remain comparable across trials of
    different lengths.

    The series is consumed in ``chunk_rows`` blocks standardized into one
    reused scratch buffer — memory stays bounded for arbitrarily long
    traces.  Series up to ``chunk_rows`` rows (every release-scale trial)
    produce bits identical to the dense reference.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    series = np.asarray(series)
    t, s = series.shape
    gram = np.zeros((s, s))
    scratch = np.empty((min(chunk_rows, max(t, 1)), s), dtype=np.float64)
    for start in range(0, t, chunk_rows):
        chunk = series[start : start + chunk_rows]
        z = scratch[: chunk.shape[0]]
        np.subtract(chunk, mean, out=z)
        np.divide(z, scale, out=z)
        gram += z.T @ z
    iu = np.triu_indices(s)
    return gram[iu] / t


def full_trace_features(
    dataset: LabelledDataset,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Covariance features over every trial's *entire* series.

    Returns ``(X, y, job_ids)`` with ``X`` of shape ``(n_trials, 28)``.
    Standardization statistics pool all samples of all trials (weighted by
    length), mirroring the windowed pipeline's scaler semantics.  Both
    passes stream in ``chunk_rows`` blocks; no full-trial standardized or
    squared copy is ever materialized.
    """
    if len(dataset) == 0:
        raise ValueError("empty labelled dataset")
    n_sensors = dataset.trials[0].series.shape[1]
    # Pooled mean/std over all samples of all trials, in one chunked pass.
    total = np.zeros(n_sensors)
    total_sq = np.zeros(n_sensors)
    count = 0
    sq_scratch = np.empty((chunk_rows, n_sensors), dtype=np.float64)
    for trial in dataset:
        series = trial.series
        for start in range(0, series.shape[0], chunk_rows):
            chunk = series[start : start + chunk_rows]
            total += chunk.sum(axis=0, dtype=np.float64)
            sq = sq_scratch[: chunk.shape[0]]
            np.multiply(chunk, chunk, out=sq)
            total_sq += sq.sum(axis=0)
        count += trial.n_samples
    mean = total / count
    var = np.maximum(total_sq / count - mean**2, 0.0)
    scale = np.where(var > 0, np.sqrt(var), 1.0)

    X = np.vstack([
        full_trace_covariance(trial.series, mean, scale, chunk_rows)
        for trial in dataset
    ])
    return X, dataset.labels(), dataset.job_ids()
