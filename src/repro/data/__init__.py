"""Dataset pipeline: labelled series → the seven challenge datasets.

Mirrors Section III-A of the paper: every GPU time series of every labelled
job becomes one *trial*; trials at least ~one minute long are eligible; a
60-second window (540 samples × 7 sensors) is cut from the start, middle,
or a random offset of each trial; and each windowed dataset is split 80/20
into train and test, stored npz-style as
``X_train, y_train, model_train, X_test, y_test, model_test``.
"""

from repro.data.dataset import ChallengeDataset, LabelledDataset, LabelledTrial
from repro.data.labelled import build_labelled_dataset
from repro.data.windows import WindowMode, extract_window, window_offsets
from repro.data.splits import train_test_split_by_group, stratified_split_indices
from repro.data.challenge import (
    CHALLENGE_DATASET_NAMES,
    WINDOW_SAMPLES,
    build_challenge_dataset,
    build_challenge_suite,
    load_challenge_suite,
    save_challenge_suite,
)
from repro.data.stats import architecture_job_counts, challenge_suite_table, family_totals
from repro.data.augment import jitter_augment, multi_window_resample, oversample_minority
from repro.data.fulltrace import TraceMoments, full_trace_covariance, full_trace_features
from repro.data.fusion import build_fused_dataset, cpu_feature_names, cpu_summary_features

__all__ = [
    "LabelledTrial",
    "LabelledDataset",
    "ChallengeDataset",
    "build_labelled_dataset",
    "WindowMode",
    "extract_window",
    "window_offsets",
    "train_test_split_by_group",
    "stratified_split_indices",
    "CHALLENGE_DATASET_NAMES",
    "WINDOW_SAMPLES",
    "build_challenge_dataset",
    "build_challenge_suite",
    "save_challenge_suite",
    "load_challenge_suite",
    "architecture_job_counts",
    "challenge_suite_table",
    "family_totals",
    "multi_window_resample",
    "jitter_augment",
    "oversample_minority",
    "TraceMoments",
    "full_trace_covariance",
    "full_trace_features",
    "build_fused_dataset",
    "cpu_feature_names",
    "cpu_summary_features",
]
