"""Build the raw labelled dataset from a cluster simulation."""

from __future__ import annotations

from repro.data.dataset import LabelledDataset, LabelledTrial
from repro.simcluster.cluster import ClusterSimulator, SimulatedJob, SimulationConfig

__all__ = ["build_labelled_dataset", "trials_from_jobs"]


def trials_from_jobs(jobs: list[SimulatedJob]) -> LabelledDataset:
    """Flatten simulated jobs into labelled trials (one per GPU series)."""
    trials: list[LabelledTrial] = []
    for job in jobs:
        for gs in job.gpu_series:
            trials.append(
                LabelledTrial(
                    series=gs.data,
                    label=job.record.class_label,
                    model_name=job.record.architecture,
                    job_id=job.record.job_id,
                    gpu_index=gs.gpu_index,
                )
            )
    return LabelledDataset(trials)


def build_labelled_dataset(
    config: SimulationConfig | None = None,
    n_jobs: int | None = 1,
) -> LabelledDataset:
    """Run the cluster simulator and return the labelled release.

    This is the synthetic stand-in for downloading the ~2 GB labelled
    portion of the MIT Supercloud Dataset.  ``n_jobs > 1`` generates
    jobs in parallel processes; the release is bit-identical to serial
    generation for a fixed config seed.
    """
    simulator = ClusterSimulator(config)
    jobs, _log = simulator.generate(n_jobs=n_jobs)
    return trials_from_jobs(jobs)
