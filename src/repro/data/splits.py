"""Train/test splitting.

The release uses an 80/20 split of trials.  Because multi-GPU jobs repeat
one label across several near-identical series, we split at the *job* level
by default (all of a job's GPU series land on the same side), which prevents
train→test leakage of job-specific noise realizations.  A trial-level split
is available for strict parity with releases that split per series.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["stratified_split_indices", "train_test_split_by_group"]


def stratified_split_indices(
    labels: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator | int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stratified shuffle split over items with the given labels.

    Every class contributes ``round(test_fraction * class_count)`` items to
    the test side, with at least one item on each side when the class has
    two or more items.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_generator(rng)
    labels = np.asarray(labels)
    train_idx: list[np.ndarray] = []
    test_idx: list[np.ndarray] = []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        n = members.size
        n_test = int(round(test_fraction * n))
        if n >= 2:
            n_test = min(max(n_test, 1), n - 1)
        test_idx.append(members[:n_test])
        train_idx.append(members[n_test:])
    train = np.sort(np.concatenate(train_idx))
    test = np.sort(np.concatenate(test_idx))
    return train, test


def train_test_split_by_group(
    labels: np.ndarray,
    groups: np.ndarray,
    test_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stratified split where all items of one group stay together.

    Parameters
    ----------
    labels:
        Per-item class labels.
    groups:
        Per-item group keys (job ids).  Groups are assumed label-pure
        (a job has one architecture); mixed groups raise.

    Returns
    -------
    (train_item_indices, test_item_indices)
    """
    labels = np.asarray(labels)
    groups = np.asarray(groups)
    if labels.shape != groups.shape:
        raise ValueError(
            f"labels and groups must align, got {labels.shape} vs {groups.shape}"
        )
    uniq_groups, first_pos = np.unique(groups, return_index=True)
    group_labels = labels[first_pos]
    # Verify label purity per group.
    for g, gl in zip(uniq_groups, group_labels):
        member_labels = labels[groups == g]
        if not np.all(member_labels == gl):
            raise ValueError(f"group {g} mixes labels {set(member_labels.tolist())}")

    g_train, g_test = stratified_split_indices(group_labels, test_fraction, rng)
    train_groups = set(uniq_groups[g_train].tolist())
    is_train = np.fromiter((g in train_groups for g in groups), dtype=bool,
                           count=groups.size)
    return np.flatnonzero(is_train), np.flatnonzero(~is_train)
