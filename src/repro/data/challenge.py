"""Assembly of the seven Workload Classification Challenge datasets.

``60-start-1`` and ``60-middle-1`` cut deterministic windows; the five
``60-random-*`` datasets draw independent random offsets.  All seven share
the *same* train/test partition of trials (the release splits once, then
windows), so per-dataset accuracy differences in Table V reflect window
position, not split luck.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.dataset import ChallengeDataset, LabelledDataset
from repro.data.splits import train_test_split_by_group
from repro.data.windows import WindowMode, extract_window, window_offsets
from repro.utils.arrayio import load_npz_dataset, save_npz_dataset
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "WINDOW_SAMPLES",
    "CHALLENGE_DATASET_NAMES",
    "build_challenge_dataset",
    "build_challenge_suite",
    "save_challenge_suite",
    "load_challenge_suite",
]

#: Samples per 60-second window at the GPU telemetry rate (Table IV).
WINDOW_SAMPLES = 540

#: The seven released datasets, in Table IV order.
CHALLENGE_DATASET_NAMES: tuple[str, ...] = (
    "60-start-1",
    "60-middle-1",
    "60-random-1",
    "60-random-2",
    "60-random-3",
    "60-random-4",
    "60-random-5",
)


def _mode_for(name: str) -> WindowMode:
    if name not in CHALLENGE_DATASET_NAMES:
        raise ValueError(
            f"unknown challenge dataset {name!r}; expected one of "
            f"{CHALLENGE_DATASET_NAMES}"
        )
    return WindowMode.parse(name.split("-")[1])


def _window_stack(
    dataset: LabelledDataset,
    indices: np.ndarray,
    mode: WindowMode,
    window: int,
    rng: np.random.Generator | None,
    dtype,
) -> np.ndarray:
    """Cut one window per selected trial and stack to (n, window, sensors)."""
    lengths = dataset.lengths()[indices]
    offsets = window_offsets(lengths, window, mode, rng)
    n_sensors = dataset.trials[0].series.shape[1]
    out = np.empty((indices.size, window, n_sensors), dtype=dtype)
    for row, (idx, off) in enumerate(zip(indices, offsets)):
        trial = dataset.trials[int(idx)]
        out[row] = extract_window(trial.series, int(off), window,
                                  job_id=trial.job_id)
    return out


def build_challenge_dataset(
    dataset: LabelledDataset,
    name: str,
    *,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    window: int = WINDOW_SAMPLES,
    rng: np.random.Generator | None = None,
    dtype=np.float32,
) -> ChallengeDataset:
    """Build one of the seven datasets from pre-split eligible trials."""
    mode = _mode_for(name)
    if mode is WindowMode.RANDOM and rng is None:
        raise ValueError(f"dataset {name} needs an rng for random offsets")
    labels = dataset.labels()
    names = np.array([t.model_name for t in dataset.trials])
    return ChallengeDataset(
        name=name,
        X_train=_window_stack(dataset, train_idx, mode, window, rng, dtype),
        y_train=labels[train_idx],
        model_train=names[train_idx],
        X_test=_window_stack(dataset, test_idx, mode, window, rng, dtype),
        y_test=labels[test_idx],
        model_test=names[test_idx],
    )


def build_challenge_suite(
    dataset: LabelledDataset,
    *,
    window: int = WINDOW_SAMPLES,
    test_fraction: float = 0.2,
    seed: int = 0,
    names: tuple[str, ...] = CHALLENGE_DATASET_NAMES,
    dtype=np.float32,
) -> dict[str, ChallengeDataset]:
    """Build all requested challenge datasets from a labelled release.

    Trials shorter than ``window`` are dropped first (the "ran at least one
    minute" rule); the 80/20 split is computed once at job granularity and
    shared across all seven datasets.
    """
    eligible = dataset.eligible(window)
    if len(eligible) == 0:
        raise ValueError(f"no trials have >= {window} samples")
    seeds = SeedSequenceFactory(seed)
    train_idx, test_idx = train_test_split_by_group(
        eligible.labels(), eligible.job_ids(), test_fraction,
        seeds.stream("trial-split"),
    )
    suite: dict[str, ChallengeDataset] = {}
    for name in names:
        rng = seeds.stream(f"windows-{name}")
        suite[name] = build_challenge_dataset(
            eligible, name, train_idx=train_idx, test_idx=test_idx,
            window=window, rng=rng, dtype=dtype,
        )
    return suite


def save_challenge_suite(
    suite: dict[str, ChallengeDataset], directory: str | Path
) -> list[Path]:
    """Persist a suite as one npz per dataset (release file layout)."""
    directory = Path(directory)
    paths = []
    for name, ds in suite.items():
        paths.append(save_npz_dataset(directory / f"{name}.npz", **ds.as_npz_dict()))
    return paths


def load_challenge_suite(
    directory: str | Path, names: tuple[str, ...] = CHALLENGE_DATASET_NAMES
) -> dict[str, ChallengeDataset]:
    """Load a previously saved suite."""
    directory = Path(directory)
    suite = {}
    for name in names:
        arrays = load_npz_dataset(directory / f"{name}.npz")
        suite[name] = ChallengeDataset(name=name, **arrays)
    return suite
