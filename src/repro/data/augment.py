"""Resampling and augmentation (challenge Section III-C).

"Given the number of samples in the labelled dataset, a neural network is
likely to overfit.  Can this be dealt with using regularization or
resampling techniques?"  This module implements the resampling side:

* :func:`multi_window_resample` — draw several random 60-second windows
  per training trial instead of one (the natural data multiplier for this
  dataset, since each trial is much longer than a window);
* :func:`jitter_augment` — sensor-noise and time-shift perturbations of
  existing windows;
* :func:`oversample_minority` — class rebalancing by replication (the GNN
  classes have ~30 jobs vs U-Net's ~1400).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LabelledDataset
from repro.data.windows import WindowMode, extract_window, window_offsets
from repro.utils.rng import as_generator

__all__ = ["multi_window_resample", "jitter_augment", "oversample_minority"]


def multi_window_resample(
    dataset: LabelledDataset,
    indices: np.ndarray,
    *,
    windows_per_trial: int = 3,
    window: int = 540,
    rng: np.random.Generator | int | None = None,
    dtype=np.float32,
) -> tuple[np.ndarray, np.ndarray]:
    """Cut several independent random windows from each selected trial.

    Returns ``(X, y)`` with ``X`` of shape
    ``(len(indices) * windows_per_trial, window, sensors)``.  Windows from
    one trial stay correlated, so keep trials of one job on one side of the
    train/test split (as the pipeline already does) to avoid leakage.
    """
    if windows_per_trial < 1:
        raise ValueError(f"windows_per_trial must be >= 1, got {windows_per_trial}")
    rng = as_generator(rng)
    indices = np.asarray(indices)
    lengths = dataset.lengths()[indices]
    labels = dataset.labels()[indices]
    n_sensors = dataset.trials[0].series.shape[1]
    X = np.empty((indices.size * windows_per_trial, window, n_sensors),
                 dtype=dtype)
    y = np.repeat(labels, windows_per_trial)
    row = 0
    for idx, length in zip(indices, lengths):
        offsets = window_offsets(
            np.full(windows_per_trial, length), window, WindowMode.RANDOM, rng
        )
        for off in offsets:
            trial = dataset.trials[int(idx)]
            X[row] = extract_window(trial.series, int(off), window,
                                    job_id=trial.job_id)
            row += 1
    return X, y


def jitter_augment(
    X: np.ndarray,
    y: np.ndarray,
    *,
    copies: int = 1,
    noise_std: float = 0.02,
    max_shift: int = 20,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Append noisy, time-shifted copies of each window.

    ``noise_std`` is relative to each sensor's per-batch std; shifts roll
    the window circularly by up to ``max_shift`` samples (cheap surrogate
    for re-cutting at a nearby offset).
    """
    if copies < 0:
        raise ValueError(f"copies must be >= 0, got {copies}")
    rng = as_generator(rng)
    X = np.asarray(X)
    y = np.asarray(y)
    if copies == 0:
        return X, y
    scale = X.std(axis=(0, 1), keepdims=True) * noise_std
    parts_X = [X]
    parts_y = [y]
    for _ in range(copies):
        noisy = X + rng.normal(0.0, 1.0, size=X.shape).astype(X.dtype) * scale
        if max_shift > 0:
            shifts = rng.integers(-max_shift, max_shift + 1, size=X.shape[0])
            noisy = np.stack([
                np.roll(win, int(s), axis=0) for win, s in zip(noisy, shifts)
            ])
        parts_X.append(noisy.astype(X.dtype))
        parts_y.append(y)
    return np.concatenate(parts_X), np.concatenate(parts_y)


def oversample_minority(
    X: np.ndarray,
    y: np.ndarray,
    *,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Replicate minority-class rows until all classes match the majority.

    Returns shuffled arrays; replication is with replacement.
    """
    rng = as_generator(rng)
    X = np.asarray(X)
    y = np.asarray(y)
    classes, counts = np.unique(y, return_counts=True)
    target = counts.max()
    keep = [np.arange(y.size)]
    for cls, count in zip(classes, counts):
        if count < target:
            members = np.flatnonzero(y == cls)
            keep.append(rng.choice(members, size=target - count, replace=True))
    order = np.concatenate(keep)
    rng.shuffle(order)
    return X[order], y[order]
