"""Consistent-hash ring: per-job session affinity with minimal churn.

Streaming classification is stateful — a job's sliding window and vote
history live on exactly one worker — so the fleet needs *stable* routing:
the same ``job_id`` must land on the same worker tick after tick, and a
worker joining or leaving must move as few sessions as possible (every
moved session pays a history-replay rebuild).

:class:`HashRing` is the classic construction: each worker is hashed to
``vnodes`` pseudo-random positions on a 32-bit circle (CRC32, the same
cheap deterministic hash the canary cohorts use), a key is owned by the
first virtual node at or clockwise of its own position, and resizing
obeys two exact invariants the hypothesis suite pins:

* **adding** worker W only moves keys *onto* W — every other key keeps
  its owner;
* **removing** worker W only moves W's own keys — they scatter to the
  survivors, everyone else is untouched.

Expected churn on a resize is ~``1/n`` of the keyspace; virtual nodes
keep per-worker load within a constant factor of fair share.
"""

from __future__ import annotations

import bisect
import zlib

__all__ = ["HashRing"]

_HASH_SPACE = 1 << 32


class HashRing:
    """CRC32 consistent-hash ring over named workers.

    Parameters
    ----------
    workers:
        Initial worker ids (any strings; order does not matter).
    vnodes:
        Virtual nodes per worker.  More vnodes → better balance and
        finer-grained churn; ≥64 keeps per-worker key share within a
        small constant of fair (pinned by tests at 3x).
    salt:
        Namespace mixed into every hash, so independent rings (e.g.
        routing vs. canary cohorts) decorrelate.
    """

    def __init__(self, workers=(), *, vnodes: int = 128, salt: str = "repro-fleet"):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self.salt = str(salt)
        self._workers: set[str] = set()
        #: Sorted ``(position, worker_id, vnode_index)`` triples; ties on
        #: position break deterministically by worker id then index.
        self._points: list[tuple[int, str, int]] = []
        for worker in workers:
            self.add(worker)

    # ------------------------------------------------------------------
    def _key_position(self, key) -> int:
        return zlib.crc32(f"{self.salt}|key|{key}".encode()) % _HASH_SPACE

    def _vnode_position(self, worker: str, index: int) -> int:
        return zlib.crc32(
            f"{self.salt}|vnode|{worker}|{index}".encode()
        ) % _HASH_SPACE

    # ------------------------------------------------------------------
    def add(self, worker: str) -> None:
        """Place ``worker``'s virtual nodes on the ring."""
        worker = str(worker)
        if worker in self._workers:
            raise ValueError(f"worker {worker!r} already on the ring")
        self._workers.add(worker)
        for i in range(self.vnodes):
            bisect.insort(self._points, (self._vnode_position(worker, i), worker, i))

    def remove(self, worker: str) -> None:
        """Remove ``worker``'s virtual nodes (its keys scatter to survivors)."""
        worker = str(worker)
        if worker not in self._workers:
            raise KeyError(f"worker {worker!r} not on the ring")
        self._workers.discard(worker)
        self._points = [p for p in self._points if p[1] != worker]

    def owner(self, key) -> str:
        """The worker owning ``key``: first vnode clockwise of its hash."""
        if not self._points:
            raise LookupError("hash ring has no workers")
        pos = self._key_position(key)
        idx = bisect.bisect_left(self._points, (pos, "", -1))
        if idx == len(self._points):        # wrap past 2^32
            idx = 0
        return self._points[idx][1]

    def owners(self, keys) -> dict:
        """Batch :meth:`owner` lookup: ``{key: worker_id}``."""
        return {key: self.owner(key) for key in keys}

    # ------------------------------------------------------------------
    @property
    def workers(self) -> list[str]:
        """Current worker ids, sorted."""
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker) -> bool:
        return str(worker) in self._workers

    def spans(self) -> dict[str, float]:
        """Fraction of the hash space each worker owns (sums to 1.0)."""
        if not self._points:
            return {}
        out = {worker: 0 for worker in self._workers}
        prev = self._points[-1][0] - _HASH_SPACE  # wrap-around arc
        for pos, worker, _ in self._points:
            out[worker] += pos - prev
            prev = pos
        return {worker: arc / _HASH_SPACE for worker, arc in out.items()}

    @staticmethod
    def churn(before: dict, after: dict) -> float:
        """Fraction of keys whose owner differs between two assignments.

        Both arguments are ``{key: worker_id}`` maps over the *same* key
        set (as produced by :meth:`owners`); the resize gates in
        ``repro fleet-bench`` bound this against the ~``1/n`` ideal.
        """
        if set(before) != set(after):
            raise ValueError("churn() needs assignments over the same keys")
        if not before:
            return 0.0
        moved = sum(1 for key, owner in before.items() if after[key] != owner)
        return moved / len(before)
