"""Session recovery: rebuild a dead worker's state from stored history.

When a worker dies, three kinds of per-job state die with it: buffered
ingress chunks, sliding-window ring contents, and the majority-vote
deque.  None of it needs replication — the telemetry itself is durable
(in :class:`~repro.store.TelemetryStore`, or re-derivable from the
deterministic load generator), and window classification is a pure
function of it.  So failover is *replay*: slice the job's first
``delivered`` rows back out of history (a zero-copy memmap view when the
source is the store), push them through a fresh session on the new
owner, re-predict every due window, and re-emit only the predictions the
dead worker never got out.

The parity claim (gated by ``repro fleet-bench``): the union of
emissions before the crash and after recovery is bit-identical, per job,
to an unfailed twin — same ``sample_index``, ``label``,
``smoothed_label``, and ``confidence`` for every window.

One honest limitation: replay trusts the router's delivered-row count,
so a job that had chunks *shed* under overload on the dead worker is
rebuilt with more history than its session ever saw.  Telemetry loss
breaks bit-parity by definition; the bench's parity scenarios therefore
run below saturation and assert zero sheds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.server import Emission

__all__ = ["FailoverEvent", "SessionRebuilder", "store_history"]


@dataclass(frozen=True)
class FailoverEvent:
    """One entry of the router's failover/scale timeline."""

    at_s: float                 # shared-clock time of the event
    kind: str                   # "failover" | "scale-up" | "scale-down"
    worker_id: str              # the worker that died / joined / left
    n_jobs: int                 # sessions moved by this event
    n_recovered: int            # emissions re-produced by history replay


class SessionRebuilder:
    """Replays per-job history into fresh sessions on surviving workers.

    Parameters
    ----------
    history:
        ``history(job_id) -> (n_rows, n_sensors)`` array of the job's
        *full* stream so far, in delivery order; the rebuilder slices the
        delivered prefix.  Typical providers: ``gen.job_stream`` (the
        deterministic load generator) or :func:`store_history` over a
        telemetry store.  ``None`` disables replay — failover still
        reroutes jobs, but their sessions restart cold (window refills
        before the next emission).
    """

    def __init__(self, history=None):
        self.history = history

    @property
    def can_rebuild(self) -> bool:
        """Whether history replay is available (vs. cold restarts)."""
        return self.history is not None

    def rebuild(
        self,
        job_id,
        delivered_rows: int,
        worker,
        *,
        emit_after_index: int = -1,
        trace=None,
    ) -> list[Emission]:
        """Adopt ``job_id`` onto ``worker``; returns recovered emissions.

        ``delivered_rows`` is the router's count of rows ever routed for
        the job; ``emit_after_index`` the last ``sample_index`` the fleet
        actually emitted — everything past it was lost in flight and is
        re-emitted by the rebuild.  ``trace`` (a trace context or None)
        is propagated into the adopting worker so the replay records a
        span in the original request's trace; it is only forwarded when
        set, so trace-unaware worker stand-ins keep working.
        """
        if self.history is None or delivered_rows <= 0:
            worker.end_session(job_id)   # at least drop any stale state
            return []
        rows = np.asarray(self.history(job_id))[:delivered_rows]
        if rows.shape[0] < delivered_rows:
            raise ValueError(
                f"history for job {job_id!r} has {rows.shape[0]} rows, "
                f"router delivered {delivered_rows}"
            )
        if trace is None:
            return worker.rebuild_session(
                job_id, rows, emit_after_index=emit_after_index
            )
        return worker.rebuild_session(
            job_id, rows, emit_after_index=emit_after_index, trace=trace
        )


def store_history(store, *, gpu_index: int = 0):
    """A :class:`SessionRebuilder` history provider over a telemetry store.

    Maps ``job_id`` straight to ``store.series(job_id, gpu_index)`` — a
    zero-copy float32 memmap view, so rebuilding even a long session
    costs one window's worth of copying, not a trace's.  Use when fleet
    job ids are store job ids (live ingest); replay-driven fleets pass
    ``gen.job_stream`` instead, which already resolves the generator's
    job→series assignment.
    """
    def history(job_id):
        return store.series(int(job_id), gpu_index)

    return history
