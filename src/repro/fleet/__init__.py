"""repro.fleet — sharded multi-worker serving control plane.

Scales the single-process :mod:`repro.serve` stack out to a
self-healing cluster while keeping every behavior the smaller stack
pinned — deterministic replay, bounded memory, graceful drain — true
fleet-wide:

* :mod:`~repro.fleet.ring` — consistent-hash routing with virtual
  nodes: per-``job_id`` session affinity, exact minimal-churn resizes.
* :mod:`~repro.fleet.worker` — one serving replica (in-process for
  deterministic tests, or a spawned, SIGKILL-able subprocess) with
  bounded per-step capacity and its own metrics registry.
* :mod:`~repro.fleet.health` — heartbeat/lease failure detection on the
  shared clock.
* :mod:`~repro.fleet.failover` — session rebuild by history replay;
  post-recovery emissions are bit-identical to an unfailed twin.
* :mod:`~repro.fleet.router` — the ingress tier: routes chunks, turns
  crashes and drains into failovers/handoffs, aggregates fleet metrics.
* :mod:`~repro.fleet.autoscale` — debounced queue-depth control loop
  growing and shrinking the fleet through the lossless resize paths.
* :mod:`~repro.fleet.bench` — ``repro fleet-bench``: gates routing
  determinism, failover parity, ring churn, and throughput scaling.
"""

from repro.fleet.autoscale import AutoscaleConfig, AutoscaleDecision, Autoscaler
from repro.fleet.failover import FailoverEvent, SessionRebuilder, store_history
from repro.fleet.health import HeartbeatMonitor
from repro.fleet.ring import HashRing
from repro.fleet.router import FleetRouter
from repro.fleet.worker import FleetWorker, SubprocessWorker, WorkerUnavailable

__all__ = [
    "AutoscaleConfig",
    "AutoscaleDecision",
    "Autoscaler",
    "FailoverEvent",
    "FleetRouter",
    "FleetWorker",
    "HashRing",
    "HeartbeatMonitor",
    "SessionRebuilder",
    "SubprocessWorker",
    "WorkerUnavailable",
    "store_history",
]
