"""Heartbeat/lease failure detection for fleet workers.

Large-cluster reliability studies (Kokolis et al., 2024) make worker
death the steady state, not the exception — so the control plane never
*asks* a worker whether it is alive, it watches for the absence of
proof.  Every worker step records a heartbeat; a worker whose last beat
is older than ``lease_s`` on the shared clock has lost its lease and is
declared dead, and the router reassigns its ring span.

Two failure modes are deliberately distinct, and both are injectable
(see :mod:`repro.resilience`):

* ``fleet.worker.crash`` — the worker actually dies (raises, or its
  subprocess is SIGKILLed).  The router notices synchronously on the
  next call into it.
* ``fleet.heartbeat.drop`` — the worker is healthy but its heartbeat is
  lost in transit.  Nothing fails synchronously; only the lease expiry
  catches it, which is exactly what this module is for (and dropping
  fewer consecutive beats than the lease covers must *not* trigger a
  spurious failover — pinned by tests).
"""

from __future__ import annotations

import time

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Tracks per-worker lease expiry on an injectable clock.

    Parameters
    ----------
    lease_s:
        Seconds of heartbeat silence after which a worker is declared
        dead.  On the simulated clock this is ``lease_s / tick_s`` missed
        ticks.
    clock:
        Shared monotonic time source (the fleet's ``SimulatedClock`` in
        tests and benches, ``time.monotonic`` live).
    """

    def __init__(self, *, lease_s: float, clock=time.monotonic):
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        self.lease_s = float(lease_s)
        self.clock = clock
        self._last_beat: dict[str, float] = {}

    def register(self, worker_id: str) -> None:
        """Start tracking ``worker_id``; registration counts as a beat."""
        self._last_beat[str(worker_id)] = self.clock()

    def deregister(self, worker_id: str) -> None:
        """Stop tracking ``worker_id`` (dead or scaled away)."""
        self._last_beat.pop(str(worker_id), None)

    def beat(self, worker_id: str) -> None:
        """Record a heartbeat; unknown workers are auto-registered."""
        self._last_beat[str(worker_id)] = self.clock()

    def last_beat(self, worker_id: str) -> float | None:
        """Clock time of the last beat (None when untracked)."""
        return self._last_beat.get(str(worker_id))

    def expired(self) -> list[str]:
        """Workers whose lease has lapsed, in registration order."""
        now = self.clock()
        return [
            worker_id
            for worker_id, beat in self._last_beat.items()
            if now - beat > self.lease_s
        ]

    @property
    def tracked(self) -> list[str]:
        """Every tracked worker id, sorted."""
        return sorted(self._last_beat)
