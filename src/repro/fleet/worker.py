"""Fleet workers: one serving replica behind the router.

A worker owns one :class:`~repro.serve.server.InferenceServer` plus its
own :class:`~repro.serve.metrics.MetricsRegistry` (the router merges
registries fleet-wide), a bounded per-step serving capacity, and the
``fleet.worker.crash`` / ``fleet.heartbeat.drop`` fault points that let
tests and ``repro fleet-bench`` kill it at an exact tick.

Two interchangeable implementations share the same surface (``submit`` /
``step`` / ``drain`` / ``end_session`` / ``rebuild_session`` /
``metrics_registry``):

* :class:`FleetWorker` — in-process.  Everything happens synchronously on
  the shared clock; the deterministic choice for tests and the bench's
  parity gates.  "Death" is the crash fault point raising — the worker
  marks itself dead and every later call raises
  :class:`WorkerUnavailable`.
* :class:`SubprocessWorker` — the same worker inside a spawned child
  process (the :mod:`repro.parallel` convention: spawn context, never
  fork), driven over a pipe.  Real process isolation, really
  SIGKILL-able: the parent detects a dead child as a broken pipe and
  raises :class:`WorkerUnavailable`, which the router turns into a
  failover.  The parent timestamps every message with the shared clock
  and the child syncs its private clock before acting, so a subprocess
  fleet replays the exact schedule of an in-process one (pinned by the
  crash test suite).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import signal
import time

import numpy as np

from repro.resilience.faults import (
    FaultInjector,
    InjectedFault,
    fault_point,
    install,
)
from repro.serve.loadgen import SimulatedClock
from repro.serve.metrics import MetricsRegistry
from repro.serve.server import Emission, InferenceServer, ServeConfig, SubmitResult

__all__ = ["WorkerUnavailable", "FleetWorker", "SubprocessWorker"]


class WorkerUnavailable(RuntimeError):
    """The worker crashed or its process died; the router must fail over."""


class FleetWorker:
    """In-process serving replica with bounded per-step capacity.

    Parameters
    ----------
    worker_id:
        Stable name; its position on the hash ring.
    model:
        Fitted estimator with ``predict`` over ``(n, window, sensors)``.
    config:
        :class:`~repro.serve.server.ServeConfig` for the wrapped server.
    clock:
        The fleet's shared clock (one instance across router, workers,
        heartbeats, and the load generator).
    capacity_per_step:
        Max ingress chunks served per step (None = unbounded).  A finite
        capacity is the serving cost model: under overload the queue
        grows and sheds instead of a step absorbing any offered load,
        which is what makes queue depth an autoscaling signal and
        per-worker goodput additive across the fleet.
    heartbeat:
        Optional :class:`~repro.fleet.health.HeartbeatMonitor`; every
        step beats it (unless the ``fleet.heartbeat.drop`` fault eats
        the beat in transit).
    tracer:
        Optional :class:`~repro.trace.Tracer` handed to the wrapped
        server; serve-stage spans it emits are stamped with this
        worker's id (set ``worker_id=...`` on the tracer, or share the
        router's sink with a per-worker tracer).
    """

    def __init__(
        self,
        worker_id: str,
        model,
        config: ServeConfig | None = None,
        *,
        clock=time.monotonic,
        capacity_per_step: int | None = None,
        heartbeat=None,
        tracer=None,
    ):
        if capacity_per_step is not None and capacity_per_step < 1:
            raise ValueError(
                f"capacity_per_step must be >= 1 or None, got {capacity_per_step}"
            )
        self.worker_id = str(worker_id)
        self.clock = clock
        self.capacity_per_step = capacity_per_step
        self.metrics = MetricsRegistry()
        self.server = InferenceServer(model, config, clock=clock,
                                      metrics=self.metrics, tracer=tracer)
        self._heartbeat = heartbeat
        self._alive = True

    def rebind_clock(self, clock) -> None:
        """Re-point this worker and everything it owns at ``clock``.

        The router calls this at construction so one shared time source
        drives the worker, its server, and the server's batcher — a
        replica left on ``time.monotonic`` while the fleet replays on a
        simulated clock makes batch deadlines (and thus emission
        schedules) nondeterministic.
        """
        self.clock = clock
        self.server.clock = clock
        self.server.batcher.clock = clock

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """False once the worker has crashed (or been :meth:`kill`-ed)."""
        return self._alive

    def _check_alive(self) -> None:
        if not self._alive:
            raise WorkerUnavailable(f"worker {self.worker_id} is dead")

    def kill(self) -> None:
        """Abrupt death: drop all in-flight state, refuse every later call.

        The in-process analogue of SIGKILL — queued ingress chunks and
        batcher windows are simply gone, exactly what failover recovery
        must compensate for.
        """
        self._alive = False

    def _beat(self) -> None:
        if self._heartbeat is None:
            return
        try:
            fault_point("fleet.heartbeat.drop")
        except InjectedFault:
            return                      # beat lost in transit; worker is fine
        self._heartbeat.beat(self.worker_id)

    # ------------------------------------------------------------------
    def submit(self, job_id, samples, *, trace=None) -> SubmitResult:
        """Enqueue one chunk on the wrapped server."""
        self._check_alive()
        return self.server.submit(job_id, samples, trace=trace)

    def step(self) -> list[Emission]:
        """Serve one tick: up to ``capacity_per_step`` chunks, due batches."""
        self._check_alive()
        try:
            fault_point("fleet.worker.crash")
        except InjectedFault as exc:
            self._alive = False
            raise WorkerUnavailable(
                f"worker {self.worker_id} crashed: {exc}"
            ) from exc
        self._beat()
        return self.server.step(max_chunks=self.capacity_per_step)

    def drain(self) -> list[Emission]:
        """Graceful shutdown of the replica: flush everything queued."""
        self._check_alive()
        return self.server.drain()

    def end_session(self, job_id) -> bool:
        """Discard one job's session state (migrated away or finished)."""
        self._check_alive()
        return self.server.end_session(job_id)

    def rebuild_session(self, job_id, rows, *, emit_after_index: int = -1,
                        trace=None):
        """Failover adoption: replay ``rows`` into a fresh session here."""
        self._check_alive()
        return self.server.rebuild_session(
            job_id, rows, emit_after_index=emit_after_index, trace=trace
        )

    def metrics_registry(self) -> MetricsRegistry:
        """This replica's live metrics registry."""
        return self.metrics

    @property
    def queue_depth(self) -> int:
        """Chunks waiting in this replica's ingress queue."""
        return self.server.queue_depth

    @property
    def n_sessions(self) -> int:
        """Sessions resident on this replica."""
        return self.server.n_sessions

    def close(self) -> None:
        """Release the replica (no-op in-process; symmetry with subprocess)."""
        self._alive = False


# ----------------------------------------------------------------------
# subprocess flavor
def _subprocess_worker_main(conn, payload: bytes) -> None:
    """Child entry point: run a :class:`FleetWorker` behind a pipe.

    The child owns a private :class:`SimulatedClock` synced from the
    timestamp on every request, so parent and child observe the same
    deterministic timeline.  Fault specs shipped in the payload are
    installed here — a ``mode="kill"`` spec SIGKILLs *this* process,
    which the parent sees as a broken pipe.

    When the payload enables tracing, the child runs its own
    :class:`~repro.trace.Tracer` (component = worker id, so its span ids
    can never collide with the parent's) over a private buffer sink;
    every response ships the buffered spans back as the third element of
    the reply tuple, where the parent merges them.  Spans buffered when
    the child is SIGKILLed are lost with it — by design: an
    unacknowledged span is exactly as gone as the work it described.
    """
    spec = pickle.loads(payload)
    if spec["faults"]:
        install(FaultInjector(list(spec["faults"])))
    clock = SimulatedClock()
    sink = None
    tracer = None
    if spec.get("trace") is not None:
        from repro.trace import Tracer, TraceSink

        sink = TraceSink()
        tracer = Tracer(sink, component=spec["worker_id"],
                        worker_id=spec["worker_id"], sample=spec["trace"])
    worker = FleetWorker(
        spec["worker_id"],
        spec["model"],
        spec["config"],
        clock=clock,
        capacity_per_step=spec["capacity_per_step"],
        tracer=tracer,
    )
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        op, now = message[0], message[1]
        if op == "close":
            conn.close()
            return
        clock.advance_to(now)
        try:
            if op == "submit":
                result = worker.submit(message[2], message[3],
                                       trace=message[4])
            elif op == "step":
                result = worker.step()
            elif op == "drain":
                result = worker.drain()
            elif op == "end_session":
                result = worker.end_session(message[2])
            elif op == "rebuild_session":
                result = worker.rebuild_session(
                    message[2], message[3], emit_after_index=message[4],
                    trace=message[5],
                )
            elif op == "metrics":
                result = worker.metrics_registry()
            elif op == "state":
                result = (worker.queue_depth, worker.n_sessions)
            else:
                raise ValueError(f"unknown worker op {op!r}")
        except Exception as exc:  # report, keep serving
            spans = sink.drain() if sink is not None else ()
            conn.send(("err", f"{type(exc).__name__}: {exc}", spans))
        else:
            spans = sink.drain() if sink is not None else ()
            conn.send(("ok", result, spans))


class SubprocessWorker:
    """A :class:`FleetWorker` in a spawned child process, driven by pipe.

    Same surface as :class:`FleetWorker`; every method is one synchronous
    request/response round trip.  A dead child (crash, SIGKILL, OOM)
    surfaces as :class:`WorkerUnavailable` from whatever call touches the
    broken pipe — the router treats that exactly like an in-process
    crash.  ``faults`` ships :class:`~repro.resilience.FaultSpec` s for
    the child to install, so crash tests can SIGKILL it at an exact step.

    ``trace_sink`` (optional) enables tracing in the child: the child
    runs a private tracer (``trace_sample`` sampling) and every pipe
    response carries its freshly recorded spans, which are merged into
    the given sink here in the parent.
    """

    def __init__(
        self,
        worker_id: str,
        model,
        config: ServeConfig | None = None,
        *,
        clock=time.monotonic,
        capacity_per_step: int | None = None,
        heartbeat=None,
        faults=(),
        trace_sink=None,
        trace_sample: float = 1.0,
    ):
        self.worker_id = str(worker_id)
        self.clock = clock
        self.capacity_per_step = capacity_per_step
        self._heartbeat = heartbeat
        self.trace_sink = trace_sink
        self._alive = True
        ctx = mp.get_context("spawn")   # fork is unsafe with threaded BLAS
        self._conn, child_conn = ctx.Pipe()
        payload = pickle.dumps({
            "worker_id": self.worker_id,
            "model": model,
            "config": config,
            "capacity_per_step": capacity_per_step,
            "faults": tuple(faults),
            "trace": float(trace_sample) if trace_sink is not None else None,
        })
        self._proc = ctx.Process(
            target=_subprocess_worker_main,
            args=(child_conn, payload),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """False once the child died or the pipe broke."""
        return self._alive and self._proc.is_alive()

    @property
    def pid(self) -> int:
        """Child process id (SIGKILL target for crash tests)."""
        return self._proc.pid

    def kill(self) -> None:
        """SIGKILL the child — no atexit, no flushing, abrupt death."""
        if self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=10.0)
        self._alive = False

    def close(self) -> None:
        """Graceful shutdown of the child process."""
        if self._alive and self._proc.is_alive():
            try:
                self._conn.send(("close", self.clock()))
            except (BrokenPipeError, OSError):
                pass
        self._alive = False
        self._proc.join(timeout=10.0)
        if self._proc.is_alive():
            self._proc.terminate()

    def rebind_clock(self, clock) -> None:
        """Re-point at ``clock``; the child syncs via message timestamps."""
        self.clock = clock

    def _call(self, op: str, *args):
        if not self._alive:
            raise WorkerUnavailable(f"worker {self.worker_id} is dead")
        try:
            self._conn.send((op, self.clock(), *args))
            status, result, spans = self._conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            self._alive = False
            raise WorkerUnavailable(
                f"worker {self.worker_id} process died mid-{op}"
            ) from exc
        if spans and self.trace_sink is not None:
            # Merge even on "err": spans describe work that did complete
            # in the child before the failure.
            self.trace_sink.extend(spans)
        if status == "err":
            self._alive = False
            raise WorkerUnavailable(
                f"worker {self.worker_id} failed {op}: {result}"
            )
        if self._heartbeat is not None:
            # A successful round trip is proof of life on the shared clock.
            self._heartbeat.beat(self.worker_id)
        return result

    # ------------------------------------------------------------------
    def submit(self, job_id, samples, *, trace=None) -> SubmitResult:
        """Enqueue one chunk in the child replica."""
        return self._call("submit", job_id, samples, trace)

    def step(self) -> list[Emission]:
        """Serve one tick in the child replica."""
        return self._call("step")

    def drain(self) -> list[Emission]:
        """Flush the child replica."""
        return self._call("drain")

    def end_session(self, job_id) -> bool:
        """Discard one job's session state in the child."""
        return self._call("end_session", job_id)

    def rebuild_session(self, job_id, rows, *, emit_after_index: int = -1,
                        trace=None):
        """Failover adoption in the child (rows cross the pipe once)."""
        return self._call(
            "rebuild_session", job_id, np.ascontiguousarray(rows),
            emit_after_index, trace,
        )

    def metrics_registry(self) -> MetricsRegistry:
        """A pickled snapshot of the child's registry (not live)."""
        return self._call("metrics")

    @property
    def queue_depth(self) -> int:
        """Chunks queued in the child replica."""
        return self._call("state")[0]

    @property
    def n_sessions(self) -> int:
        """Sessions resident in the child replica."""
        return self._call("state")[1]
