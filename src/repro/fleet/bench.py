"""The ``repro fleet-bench`` harness: gates the fleet's core promises.

Every claim the fleet tier makes is asserted here, not eyeballed, and a
violated gate turns into a nonzero CLI exit:

1. **Routing determinism** — two fresh replays of the same seeded
   traffic, each with the same worker killed mid-run, produce the same
   emission sequence and the same failover timeline, bit for bit.
2. **Failover parity** — a fleet that loses a worker mid-run emits, per
   job, exactly the predictions of an unfailed twin (same
   ``sample_index`` / ``label`` / ``smoothed_label`` / ``confidence``),
   because the dead worker's sessions are rebuilt by history replay.
   Both runs must be shed-free — lost telemetry breaks bit-parity by
   definition (see :mod:`repro.fleet.failover`).
3. **Ring churn** — adding a worker to an ``n``-worker ring moves keys
   only *onto* it, within ``churn_bound_factor`` of the ideal
   ``1/(n+1)`` fraction; removing it restores the exact prior owners.
4. **Throughput scaling** — with per-worker serving capacity fixed,
   fleet goodput (windows emitted *inside* the replay horizon; the final
   unbounded drain does not count) must scale near-linearly:
   ``goodput(4 workers) >= min_scaling_ratio * goodput(1 worker)``.
   This is a *capacity-model* gate — workers serve at most
   ``capacity_per_step`` chunks per tick on the simulated clock — so it
   measures the control plane, not the host's core count, and holds on a
   1-CPU CI runner.
5. **Autoscaling** — a one-worker fleet under the same saturating load
   must scale itself up (debounced, bounded), emit every delivered
   window exactly once despite the mid-run migrations, and scale back
   down once the load subsides.

The scaling/autoscale scenarios use a trivial threshold model (the cost
model is per-step capacity, not model FLOPs); parity scenarios default
to the real RF+Cov champion over simulated telemetry so "bit-identical
predictions" means the actual model, not a toy.  ``--quick`` swaps the
stub in everywhere and shrinks the replay for CI smoke.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.autoscale import AutoscaleConfig, Autoscaler
from repro.fleet.ring import HashRing
from repro.fleet.router import FleetRouter
from repro.fleet.worker import FleetWorker
from repro.perf.harness import BenchResult
from repro.resilience.faults import FaultSpec, inject
from repro.serve.loadgen import FleetLoadGenerator, SimulatedClock
from repro.serve.server import ServeConfig

__all__ = [
    "FleetBenchConfig",
    "FleetBenchReport",
    "run_fleet_bench",
    "emission_trace",
]


class _ThresholdModel:
    """Deterministic O(1)-per-window model for capacity-model scenarios.

    Classifies each window independently from a fixed threshold on mean
    GPU utilization — batch composition cannot affect any prediction,
    which is what routing determinism and failover parity rely on.
    Module-level so subprocess workers can unpickle it.
    """

    def predict(self, X):
        """Label 1 where the window's mean sensor-0 reading exceeds 50."""
        X = np.asarray(X)
        return (X[:, :, 0].mean(axis=1) > 50.0).astype(np.int64)


def emission_trace(emissions) -> dict:
    """Per-job parity trace: the fields that must survive a failover.

    Maps ``job_id`` to the ordered list of
    ``(sample_index, label, smoothed_label, confidence)`` tuples.
    Latency and cross-job interleaving are excluded on purpose: a
    failover legitimately changes *when* a recovered window emits, never
    *what* it says.
    """
    out: dict = {}
    for emission in emissions:
        p = emission.prediction
        out.setdefault(emission.job_id, []).append(
            (int(p.sample_index), int(p.label),
             int(p.smoothed_label), float(p.confidence))
        )
    return out


@dataclass(frozen=True)
class FleetBenchConfig:
    """Everything one ``repro fleet-bench`` run needs."""

    # offline: simulation + model ("rf" trains the champion; "stub" uses
    # the threshold model over synthetic telemetry — the --quick path)
    seed: int = 2022
    scale: float = 0.02
    trees: int = 30
    model: str = "rf"                   # "rf" | "stub"
    # fleet replay shape
    n_jobs: int = 32
    samples_per_tick: int = 90
    max_samples_per_job: int = 2700     # 5 min at 9 Hz -> 30 chunks/job
    vnodes: int = 128
    # determinism / failover scenarios
    parity_workers: int = 4
    kill_tick: int = 12
    # ring churn scenario
    churn_keys: int = 2000
    churn_sizes: tuple = (2, 4, 8)
    churn_bound_factor: float = 2.0
    # throughput scaling scenario
    worker_counts: tuple = (1, 2, 4, 8)
    capacity_per_step: int = 4
    min_scaling_ratio: float = 3.0
    # autoscale scenario
    autoscale_max_workers: int = 4
    autoscale_high: float = 8.0
    autoscale_low: float = 1.0
    autoscale_for_ticks: int = 2
    autoscale_cooldown: int = 3

    def __post_init__(self):
        if self.model not in ("rf", "stub"):
            raise ValueError(f"model must be 'rf' or 'stub', got {self.model!r}")
        if 4 not in self.worker_counts or 1 not in self.worker_counts:
            raise ValueError(
                "worker_counts must include 1 and 4 (the scaling gate "
                f"compares them), got {self.worker_counts}"
            )

    @classmethod
    def quick(cls, **overrides) -> "FleetBenchConfig":
        """The CI smoke shape: stub model, short streams, one kill."""
        defaults = dict(
            model="stub",
            n_jobs=24,
            max_samples_per_job=1800,   # 20 chunks/job
            kill_tick=6,
            churn_keys=500,
            worker_counts=(1, 2, 4),
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class FleetBenchReport:
    """Outcome of one fleet-bench run; ``ok`` is the CI verdict."""

    config: FleetBenchConfig
    # 1. routing determinism
    deterministic: bool = False
    # 2. failover parity
    parity_ok: bool = False
    shed_free: bool = False
    n_failovers: int = 0
    n_recovered: int = 0
    killed_worker: str = ""
    # 3. ring churn
    churn_ok: bool = False
    churn: dict = field(default_factory=dict)      # "add@n" -> fraction moved
    # 4. throughput scaling
    scaling_ok: bool = False
    goodput: dict = field(default_factory=dict)    # workers -> in-horizon windows
    scaling_ratio: float = float("nan")
    # 5. autoscaling
    autoscale_ok: bool = False
    lossless: bool = False
    n_scale_ups: int = 0
    n_scale_downs: int = 0
    peak_workers: int = 0
    # artifacts
    results: list = field(default_factory=list)    # BenchResult entries
    fit_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every fleet invariant held."""
        return (
            self.deterministic
            and self.parity_ok
            and self.shed_free
            and self.n_failovers >= 1
            and self.n_recovered >= 1    # the kill destroyed in-flight work
            and self.churn_ok
            and self.scaling_ok
            and self.autoscale_ok
            and self.lossless
        )

    def format(self) -> str:
        """Human-readable pass/fail table (the CLI's output)."""
        def mark(flag: bool) -> str:
            return "PASS" if flag else "FAIL"

        churn = ", ".join(
            f"{name} {frac:.3f}" for name, frac in sorted(self.churn.items())
        )
        goodput = ", ".join(
            f"{w}w {n}" for w, n in sorted(self.goodput.items())
        )
        lines = [
            f"[{mark(self.deterministic)}] killed-fleet replay is "
            "deterministic (two fresh runs, identical emissions + timeline)",
            f"[{mark(self.parity_ok)}] post-failover emissions bit-identical "
            f"to unfailed twin ({self.n_failovers} failover(s) of "
            f"{self.killed_worker or '?'}, {self.n_recovered} emission(s) "
            "recovered by replay)",
            f"[{mark(self.shed_free)}] parity runs shed-free "
            "(lost telemetry would void bit-parity)",
            f"[{mark(self.churn_ok)}] ring churn within "
            f"{self.config.churn_bound_factor:g}x of ideal 1/(n+1), "
            f"add-only moves onto the new worker ({churn})",
            f"[{mark(self.scaling_ok)}] goodput scales near-linearly "
            f"({goodput}; 4w/1w = {self.scaling_ratio:.2f}x, "
            f"gate >= {self.config.min_scaling_ratio:g}x)",
            f"[{mark(self.autoscale_ok)}] autoscaler grew the fleet under "
            f"load and shrank it after ({self.n_scale_ups} up / "
            f"{self.n_scale_downs} down, peak {self.peak_workers} workers)",
            f"[{mark(self.lossless)}] autoscaled run emitted every delivered "
            "window exactly once across all migrations",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# offline setup

def _train_model(config: FleetBenchConfig):
    """Simulate a release and fit the RF+Cov champion (the CLI default)."""
    from repro.data import build_challenge_suite
    from repro.data.labelled import build_labelled_dataset
    from repro.models import make_rf_cov
    from repro.simcluster.cluster import SimulationConfig

    sim = SimulationConfig(seed=config.seed, trials_scale=config.scale)
    labelled = build_labelled_dataset(sim)
    suite = build_challenge_suite(labelled, seed=config.seed,
                                  names=("60-random-1",))
    ds = suite["60-random-1"]
    model = make_rf_cov(n_estimators=config.trees, random_state=0)
    model.fit(ds.X_train, ds.y_train)
    window = ds.n_samples
    eligible = labelled.eligible(window)
    series = [t.series for t in eligible.trials]
    labels = [t.label for t in eligible.trials]
    return model, window, series, labels


def _synth_series(config: FleetBenchConfig, n_series: int = 8):
    """Seeded synthetic telemetry for stub-model scenarios (no simulation)."""
    rng = np.random.default_rng(config.seed)
    series = [
        rng.random((config.max_samples_per_job, 7)) * 100.0
        for _ in range(n_series)
    ]
    labels = [i % 2 for i in range(n_series)]
    return series, labels


# ----------------------------------------------------------------------
# fleet factories

def _generator(config: FleetBenchConfig, series, labels,
               clock: SimulatedClock) -> FleetLoadGenerator:
    return FleetLoadGenerator(
        series, labels,
        n_jobs=config.n_jobs,
        samples_per_tick=config.samples_per_tick,
        max_samples_per_job=config.max_samples_per_job,
        seed=config.seed,
        clock=clock,
    )


def _fleet(config: FleetBenchConfig, model, serve_config, gen,
           n_workers: int, *, capacity=None) -> FleetRouter:
    clock = gen.clock
    workers = [
        FleetWorker(f"w{i}", model, serve_config, clock=clock,
                    capacity_per_step=capacity)
        for i in range(n_workers)
    ]
    return FleetRouter(workers, clock=clock, history=gen.job_stream,
                       vnodes=config.vnodes)


# ----------------------------------------------------------------------
# scenarios

def _replay(config: FleetBenchConfig, model, window, series, labels,
            *, kill: bool):
    """One parity-shaped replay; optionally crashes a worker mid-run.

    The crash goes through the ``fleet.worker.crash`` fault point, timed
    to fire at the top of the victim's step on ``kill_tick`` — after that
    tick's chunks were routed to it but *before* it serves them, so the
    kill always destroys in-flight work that only history replay can
    recover.  (Workers step in sorted-id order, one crash point hit each,
    so hit ``tick * n_workers + sorted_index + 1`` is that exact moment.)
    """
    clock = SimulatedClock()
    gen = _generator(config, series, labels, clock)
    serve_config = ServeConfig(window=window, hop=min(90, window))
    router = _fleet(config, model, serve_config, gen, config.parity_workers)
    victim = router.owner_of(0)         # always owns at least one job
    if kill:
        idx = sorted(router.worker_ids).index(victim)
        at_hit = config.kill_tick * config.parity_workers + idx + 1
        ctx = inject(
            FaultSpec("fleet.worker.crash", at_hit=at_hit, mode="raise"))
    else:
        ctx = contextlib.nullcontext()
    with ctx:
        tic = time.perf_counter()
        report = gen.run(router)
        wall = time.perf_counter() - tic
    shed = router.fleet_metrics().counter("ingress.shed").value
    return report, router, victim, shed, wall


def _parity_scenarios(config, model, window, series, labels,
                      report: FleetBenchReport) -> None:
    """Scenarios 1 + 2: determinism of the killed replay, parity vs twin."""
    killed_a, router_a, victim, shed_a, wall = _replay(
        config, model, window, series, labels, kill=True)
    killed_b, router_b, _, _, _ = _replay(
        config, model, window, series, labels, kill=True)
    clean, _, _, shed_clean, _ = _replay(
        config, model, window, series, labels, kill=False)

    def full_sequence(rep):
        return [
            (e.job_id, int(e.prediction.sample_index),
             int(e.prediction.label), int(e.prediction.smoothed_label),
             float(e.prediction.confidence))
            for e in rep.emissions
        ]

    def timeline(router):
        return [
            (ev.at_s, ev.kind, ev.worker_id, ev.n_jobs, ev.n_recovered)
            for ev in router.events
        ]

    report.deterministic = (
        full_sequence(killed_a) == full_sequence(killed_b)
        and timeline(router_a) == timeline(router_b)
    )
    report.parity_ok = emission_trace(killed_a.emissions) == emission_trace(
        clean.emissions)
    report.shed_free = shed_a == 0 and shed_clean == 0
    report.killed_worker = victim
    failovers = [ev for ev in router_a.events if ev.kind == "failover"]
    report.n_failovers = len(failovers)
    report.n_recovered = sum(ev.n_recovered for ev in failovers)
    report.results.append(BenchResult(
        bench="fleet.failover",
        config={
            "workers": config.parity_workers,
            "kill_tick": config.kill_tick,
            "n_jobs": config.n_jobs,
            "model": config.model,
            "recovered": report.n_recovered,
        },
        samples_per_s=(len(killed_a.emissions) / wall) if wall > 0 else 0.0,
        p50_s=wall,
        p95_s=wall,
    ))


def _churn_scenario(config: FleetBenchConfig, report: FleetBenchReport) -> None:
    """Scenario 3: resize churn bounds + exact add/remove invariants."""
    keys = [f"job-{i}" for i in range(config.churn_keys)]
    ok = True
    for n in config.churn_sizes:
        ring = HashRing([f"w{i}" for i in range(n)], vnodes=config.vnodes)
        before = ring.owners(keys)
        ring.add("w-new")
        after = ring.owners(keys)
        churn = HashRing.churn(before, after)
        report.churn[f"add@{n}"] = churn
        moved_onto_new = all(
            after[key] == "w-new"
            for key in keys if after[key] != before[key]
        )
        ok &= moved_onto_new and churn <= config.churn_bound_factor / (n + 1)
        ring.remove("w-new")
        ok &= ring.owners(keys) == before   # exact restoration
    report.churn_ok = ok


def _scaling_serve_config(config: FleetBenchConfig) -> ServeConfig:
    # window == hop == chunk size: every served chunk completes exactly
    # one window, so goodput counts served chunks and the capacity model
    # is exact.  Zero flush deadline keeps emission in the serving tick.
    return ServeConfig(
        window=config.samples_per_tick,
        hop=config.samples_per_tick,
        flush_deadline_s=0.0,
    )


def _scaling_scenario(config, series, labels, report: FleetBenchReport) -> None:
    """Scenario 4: goodput vs worker count under fixed per-worker capacity."""
    serve_config = _scaling_serve_config(config)
    for n_workers in config.worker_counts:
        clock = SimulatedClock()
        gen = _generator(config, series, labels, clock)
        router = _fleet(config, _ThresholdModel(), serve_config, gen,
                        n_workers, capacity=config.capacity_per_step)
        goodput = 0

        def on_tick(tick, emissions):
            nonlocal goodput
            goodput += len(emissions)

        tic = time.perf_counter()
        gen.run(router, on_tick=on_tick)
        wall = time.perf_counter() - tic
        report.goodput[n_workers] = goodput
        report.results.append(BenchResult(
            bench=f"fleet.scaling.w{n_workers}",
            config={
                "workers": n_workers,
                "capacity_per_step": config.capacity_per_step,
                "n_jobs": config.n_jobs,
                "goodput_windows": goodput,
            },
            samples_per_s=(goodput / wall) if wall > 0 else 0.0,
            p50_s=wall,
            p95_s=wall,
        ))
    base = report.goodput.get(1, 0)
    report.scaling_ratio = (
        report.goodput.get(4, 0) / base if base else float("nan")
    )
    report.scaling_ok = (
        base > 0 and report.scaling_ratio >= config.min_scaling_ratio
    )


def _expected_windows(gen: FleetLoadGenerator, window: int) -> list:
    """Every ``(job, sample_index)`` the replay is obliged to emit."""
    expected = []
    for job in range(gen.n_jobs):
        n = gen.job_stream(job).shape[0]
        # sample_index is the samples-consumed count at emission (k*window).
        for k in range(n // window):
            expected.append((job, (k + 1) * window))
    return sorted(expected)


def _autoscale_scenario(config, series, labels,
                        report: FleetBenchReport) -> None:
    """Scenario 5: self-scaling under load, exactly-once across migrations."""
    serve_config = _scaling_serve_config(config)
    clock = SimulatedClock()
    gen = _generator(config, series, labels, clock)

    def spawn(worker_id):
        return FleetWorker(worker_id, _ThresholdModel(), serve_config,
                           clock=clock,
                           capacity_per_step=config.capacity_per_step)

    router = FleetRouter([spawn("w0")], clock=clock, history=gen.job_stream,
                         vnodes=config.vnodes)
    scaler = Autoscaler(router, spawn, config=AutoscaleConfig(
        min_workers=1,
        max_workers=config.autoscale_max_workers,
        high_queue_per_worker=config.autoscale_high,
        low_queue_per_worker=config.autoscale_low,
        for_ticks=config.autoscale_for_ticks,
        cooldown_ticks=config.autoscale_cooldown,
    ))
    peak = 1

    def on_tick(tick, emissions):
        nonlocal peak
        scaler.tick()
        peak = max(peak, router.n_workers)

    load = gen.run(router, end_sessions=False, on_tick=on_tick)
    shed = router.fleet_metrics().counter("ingress.shed").value
    # Load is gone (run() drained); idle ticks must shrink the fleet back.
    for _ in range(4 * (config.autoscale_for_ticks
                        + config.autoscale_cooldown
                        + config.autoscale_max_workers)):
        router.step()
        scaler.tick()
        clock.advance(gen.tick_s)
        if router.n_workers == 1:
            break
    for job in range(gen.n_jobs):
        router.end_session(job)

    report.n_scale_ups = sum(
        1 for d in scaler.decisions if d.action == "scale-up")
    report.n_scale_downs = sum(
        1 for d in scaler.decisions if d.action == "scale-down")
    report.peak_workers = peak
    report.autoscale_ok = (
        report.n_scale_ups >= 1
        and report.n_scale_downs >= 1
        and peak <= config.autoscale_max_workers
        and router.n_workers == 1
    )
    emitted = sorted(
        (e.job_id, int(e.prediction.sample_index)) for e in load.emissions
    )
    report.lossless = (
        shed == 0
        and emitted == _expected_windows(gen, config.samples_per_tick)
    )


# ----------------------------------------------------------------------

def run_fleet_bench(
    config: FleetBenchConfig | None = None,
    *,
    model=None,
    window: int | None = None,
    series=None,
    labels=None,
) -> FleetBenchReport:
    """Run every fleet scenario; see :class:`FleetBenchReport` for verdicts.

    With no model given, ``config.model`` picks the parity model: ``"rf"``
    simulates a release and trains the RF+Cov champion (the CLI default),
    ``"stub"`` uses the threshold model over synthetic telemetry (the
    ``--quick`` path).  Tests inject a prefitted ``model`` plus
    ``window``/``series``/``labels`` to skip the training cost.
    """
    config = config or FleetBenchConfig()
    report = FleetBenchReport(config=config)
    tic = time.perf_counter()
    if model is None:
        if config.model == "rf":
            fit_tic = time.perf_counter()
            model, window, series, labels = _train_model(config)
            report.fit_seconds = time.perf_counter() - fit_tic
        else:
            model = _ThresholdModel()
            window = config.samples_per_tick
            series, labels = _synth_series(config)
    if window is None or series is None:
        raise ValueError(
            "window and series must be provided when a model is injected"
        )
    _parity_scenarios(config, model, window, series, labels, report)
    _churn_scenario(config, report)
    # Capacity-model scenarios always run the stub (the cost model is
    # per-step capacity, not model FLOPs) over the same telemetry.
    _scaling_scenario(config, series, labels, report)
    _autoscale_scenario(config, series, labels, report)
    report.wall_seconds = time.perf_counter() - tic
    return report
