"""The fleet ingress tier: consistent-hash routing, failover, aggregation.

:class:`FleetRouter` presents the same surface as a single
:class:`~repro.serve.server.InferenceServer` (``submit`` / ``step`` /
``drain`` / ``end_session`` — the :class:`~repro.serve.FleetLoadGenerator`
drives it unchanged) but fans the work across N workers:

* **Routing** — each chunk goes to ``ring.owner(job_id)``; session
  affinity falls out of hashing, no routing table to replicate.
* **Failure handling** — a worker that raises
  :class:`~repro.fleet.worker.WorkerUnavailable` (crashed, SIGKILLed
  child) or whose heartbeat lease lapses is removed from the ring; its
  jobs are re-owned by the survivors and their sessions rebuilt from
  history replay (:class:`~repro.fleet.failover.SessionRebuilder`), so
  post-recovery emissions are bit-identical to an unfailed run.
* **Typed rejections** — a worker answering ``DRAINING`` is retired
  (flushed, its sessions migrated) rather than treated as an error; an
  overloaded worker's ``REJECTED`` is surfaced to the caller as ordinary
  backpressure.
* **Aggregation** — :meth:`fleet_metrics` merges every worker's registry
  with the router's own (counters add, gauges sum, histogram
  percentiles over the union of samples), giving the operator one
  fleet-wide view — the signal the autoscaler consumes.

Everything is synchronous and clock-injected; a fleet replay is
deterministic for a fixed seed, which is what lets ``repro fleet-bench``
gate routing determinism and failover parity bit-for-bit.
"""

from __future__ import annotations

import time

import numpy as np

from repro.fleet.failover import FailoverEvent, SessionRebuilder
from repro.fleet.ring import HashRing
from repro.fleet.worker import WorkerUnavailable
from repro.serve.metrics import MetricsRegistry
from repro.serve.server import Emission, SubmitResult

__all__ = ["FleetRouter"]


class FleetRouter:
    """Route job streams across a resizable set of serving workers.

    Parameters
    ----------
    workers:
        Initial worker objects (:class:`~repro.fleet.worker.FleetWorker`
        or :class:`~repro.fleet.worker.SubprocessWorker`); at least one.
        All must share ``clock``.
    clock:
        The fleet's shared time source.  ``None`` (the default) adopts
        the first worker's clock; an explicit clock is *propagated*: any
        worker on a different time source is re-bound
        (``worker.rebind_clock``), and a ``health`` monitor on a
        different source is re-pointed too.  Historically the default
        was ``time.monotonic``, which silently mixed wall time into
        simulated-clock fleets and made lease expiry nondeterministic.
    history:
        Optional ``job_id -> full row array`` provider for failover
        replay (see :class:`~repro.fleet.failover.SessionRebuilder`);
        without it, failed-over sessions restart cold.
    health:
        Optional :class:`~repro.fleet.health.HeartbeatMonitor`.  The
        router checks leases at the top of every :meth:`step` and fails
        over expired workers; workers must be constructed with
        ``heartbeat=health`` so their steps actually beat it.
    vnodes / salt:
        Hash-ring shape (see :class:`~repro.fleet.ring.HashRing`).
    tracer:
        Optional :class:`~repro.trace.Tracer` for the routing tier:
        chunks submitted with a trace context get a ``route`` span per
        attempt, and failovers record ``worker.lost`` /
        ``failover.rebuild`` spans in the affected requests' traces.
    """

    def __init__(
        self,
        workers,
        *,
        clock=None,
        history=None,
        health=None,
        vnodes: int = 128,
        salt: str = "repro-fleet",
        tracer=None,
    ):
        workers = list(workers)
        if not workers:
            raise ValueError("need at least one worker")
        if clock is None:
            clock = getattr(workers[0], "clock", None) or time.monotonic
        self.clock = clock
        self.tracer = tracer
        #: job -> last propagated trace context (failover spans attach here).
        self._trace_ctx: dict[object, object] = {}
        self.health = health
        if health is not None and health.clock is not clock:
            # One fleet, one time base: a monitor left on its own clock
            # (usually the wall default) would expire simulated-clock
            # leases at wall speed.  Registrations below re-baseline the
            # beats on the shared clock.
            health.clock = clock
        self.metrics = MetricsRegistry()
        self.rebuilder = SessionRebuilder(history)
        self._workers: dict[str, object] = {}
        self.ring = HashRing(vnodes=vnodes, salt=salt)
        #: job -> current owning worker id (insertion-ordered: migration
        #: and failover walk jobs in first-seen order, deterministically).
        self._owner: dict[object, str] = {}
        self._delivered: dict[object, int] = {}
        #: job -> highest sample_index the fleet has actually emitted.
        self._last_index: dict[object, int] = {}
        self._buffer: list[Emission] = []
        self.events: list[FailoverEvent] = []
        for worker in workers:
            if worker.worker_id in self._workers:
                raise ValueError(f"duplicate worker id {worker.worker_id!r}")
            self._adopt_clock(worker)
            self._workers[worker.worker_id] = worker
            self.ring.add(worker.worker_id)
            if self.health is not None:
                self.health.register(worker.worker_id)
        self.metrics.gauge("fleet.workers").set(len(self._workers))

    def _adopt_clock(self, worker) -> None:
        """Re-bind ``worker`` onto the router's clock if it differs."""
        rebind = getattr(worker, "rebind_clock", None)
        if rebind is not None and getattr(worker, "clock", None) is not self.clock:
            rebind(self.clock)

    # ------------------------------------------------------------------
    # introspection
    @property
    def n_workers(self) -> int:
        """Live workers behind the router."""
        return len(self._workers)

    @property
    def worker_ids(self) -> list[str]:
        """Live worker ids in join order (newest last)."""
        return list(self._workers)

    def worker(self, worker_id: str):
        """The live worker object for ``worker_id`` (KeyError when gone)."""
        return self._workers[worker_id]

    @property
    def queue_depth(self) -> int:
        """Total chunks queued across live workers."""
        total = 0
        for worker in self._workers.values():
            try:
                total += worker.queue_depth
            except WorkerUnavailable:
                continue
        return total

    @property
    def n_sessions(self) -> int:
        """Total sessions resident across live workers."""
        total = 0
        for worker in self._workers.values():
            try:
                total += worker.n_sessions
            except WorkerUnavailable:
                continue
        return total

    def owner_of(self, job_id) -> str:
        """The worker id currently owning ``job_id``'s session."""
        worker_id = self._owner.get(job_id)
        if worker_id is None or worker_id not in self._workers:
            worker_id = self.ring.owner(job_id)
            self._owner[job_id] = worker_id
        return worker_id

    def fleet_metrics(self) -> MetricsRegistry:
        """Fleet-wide registry: the router's own + every worker's, merged."""
        merged = MetricsRegistry().merge(self.metrics)
        for worker_id in sorted(self._workers):
            try:
                merged.merge(self._workers[worker_id].metrics_registry())
            except WorkerUnavailable:
                continue
        return merged

    # ------------------------------------------------------------------
    # ingress
    def submit(self, job_id, samples, *, trace=None) -> SubmitResult:
        """Route one chunk to the owning worker, failing over on death.

        A dead owner triggers an immediate failover (ring removal +
        session rebuild) and the chunk retries on the new owner — the
        caller never sees the crash.  ``REJECTED`` (overload) is returned
        as-is: backpressure is the caller's signal, not a routing error.

        ``trace`` (a trace context or None) is propagated to the owning
        worker; each routing attempt records a ``route`` span under it —
        a failed attempt (dead owner) gets its own failed span before
        the retry's — and the context is remembered per job so later
        failover spans can link back to the request that was in flight.
        """
        samples = np.atleast_2d(np.asarray(samples))
        tracer = self.tracer if trace is not None else None
        if tracer is not None:
            self._trace_ctx[job_id] = trace
        for _ in range(len(self._workers) + 1):
            worker_id = self.owner_of(job_id)
            worker = self._workers[worker_id]
            if tracer is not None:
                route_ctx = tracer.child(trace)
                start = self.clock()
                tic = time.perf_counter()
                try:
                    result = worker.submit(job_id, samples, trace=route_ctx)
                except WorkerUnavailable:
                    tracer.emit(
                        route_ctx, "route", start_s=start, end_s=self.clock(),
                        wall_s=time.perf_counter() - tic,
                        worker_id=worker_id, status="failed",
                        annotations={"error": "worker-unavailable"},
                    )
                    self._on_worker_death(worker_id)
                    continue
                tracer.emit(
                    route_ctx, "route", start_s=start, end_s=self.clock(),
                    wall_s=time.perf_counter() - tic,
                    worker_id=worker_id,
                    status="ok" if result else str(result.value),
                )
            else:
                try:
                    result = worker.submit(job_id, samples)
                except WorkerUnavailable:
                    self._on_worker_death(worker_id)
                    continue
            if result is SubmitResult.DRAINING:
                self.metrics.counter("fleet.rerouted.draining").inc()
                self._handoff(worker_id, kind="drain")
                continue
            if result:
                self.metrics.counter("fleet.chunks.routed").inc()
                self._delivered[job_id] = (
                    self._delivered.get(job_id, 0) + samples.shape[0]
                )
            else:
                self.metrics.counter("fleet.chunks.rejected").inc()
            return result
        raise WorkerUnavailable("no live worker accepted the chunk")

    # ------------------------------------------------------------------
    # processing
    def step(self) -> list[Emission]:
        """One fleet tick: lease checks, then every worker steps.

        Workers step in sorted-id order (determinism); any crash observed
        mid-step fails over inline, and emissions recovered by the
        resulting rebuilds are appended to this tick's output.
        """
        out = self._take_buffer()
        if self.health is not None:
            for worker_id in self.health.expired():
                if worker_id in self._workers:
                    self.metrics.counter("fleet.lease_expired").inc()
                    self._on_worker_death(worker_id)
        for worker_id in sorted(self._workers):
            worker = self._workers.get(worker_id)
            if worker is None:          # removed by an earlier failover
                continue
            try:
                emissions = worker.step()
            except WorkerUnavailable:
                self._on_worker_death(worker_id)
                continue
            self._note(emissions)
            out.extend(emissions)
        out.extend(self._take_buffer())
        return out

    def drain(self) -> list[Emission]:
        """Flush every worker (graceful fleet shutdown)."""
        out = self._take_buffer()
        for worker_id in sorted(self._workers):
            try:
                emissions = self._workers[worker_id].drain()
            except WorkerUnavailable:
                self._on_worker_death(worker_id)
                continue
            self._note(emissions)
            out.extend(emissions)
        out.extend(self._take_buffer())
        return out

    def end_session(self, job_id) -> bool:
        """Forget ``job_id`` fleet-wide (stream finished)."""
        worker_id = self._owner.pop(job_id, None)
        self._delivered.pop(job_id, None)
        self._last_index.pop(job_id, None)
        self._trace_ctx.pop(job_id, None)
        if worker_id is not None and worker_id in self._workers:
            try:
                return self._workers[worker_id].end_session(job_id)
            except WorkerUnavailable:
                self._on_worker_death(worker_id)
        return False

    # ------------------------------------------------------------------
    # membership
    def add_worker(self, worker) -> list:
        """Join a worker; migrate exactly the jobs its vnodes claim.

        Consistent hashing guarantees every migrated job moves *to* the
        new worker; each migration ends the session on its old (live)
        owner and rebuilds it on the new one from history replay, so the
        resize is emission-lossless.  Returns the migrated job ids.
        """
        worker_id = worker.worker_id
        if worker_id in self._workers:
            raise ValueError(f"worker {worker_id!r} already routed")
        self._adopt_clock(worker)
        self._workers[worker_id] = worker
        self.ring.add(worker_id)
        if self.health is not None:
            self.health.register(worker_id)
        self.metrics.counter("fleet.scale.up").inc()
        self.metrics.gauge("fleet.workers").set(len(self._workers))
        moved = [
            job for job, owner in self._owner.items()
            if self.ring.owner(job) != owner
        ]
        recovered = 0
        for job in moved:
            source = self._workers.get(self._owner[job])
            recovered += len(self._migrate(job, source=source))
        self.events.append(FailoverEvent(
            at_s=self.clock(), kind="scale-up", worker_id=worker_id,
            n_jobs=len(moved), n_recovered=recovered,
        ))
        return moved

    def remove_worker(self, worker_id: str):
        """Gracefully retire a worker: flush, migrate, close.

        The leaving replica drains first (its queued work emits here,
        attributed normally), then every session it owned is rebuilt on
        the survivors.  Returns the removed worker object.
        """
        if worker_id not in self._workers:
            raise KeyError(f"worker {worker_id!r} not routed")
        if len(self._workers) == 1:
            raise ValueError("cannot remove the last worker")
        worker = self._handoff(worker_id, kind="scale-down")
        worker.close()
        return worker

    # ------------------------------------------------------------------
    # internals
    def _take_buffer(self) -> list[Emission]:
        out, self._buffer = self._buffer, []
        return out

    def _note(self, emissions) -> None:
        for emission in emissions:
            index = emission.prediction.sample_index
            if index > self._last_index.get(emission.job_id, -1):
                self._last_index[emission.job_id] = index

    def _jobs_owned_by(self, worker_id: str) -> list:
        return [job for job, owner in self._owner.items() if owner == worker_id]

    def _migrate(self, job, *, source) -> list[Emission]:
        """Move one job to its current ring owner, rebuilding its session.

        ``source`` is the job's previous worker when it is still alive
        (scale events) — its session state is dropped first so a stale
        replica can never emit for the job again; ``None`` when the
        previous worker is already gone (failover).
        """
        if source is not None:
            source.end_session(job)
        new_worker_id = self.ring.owner(job)
        ctx = self._trace_ctx.get(job) if self.tracer is not None else None
        rebuild_ctx = None
        if ctx is not None:
            rebuild_ctx = self.tracer.child(ctx)
            start = self.clock()
            tic = time.perf_counter()
        emissions = self.rebuilder.rebuild(
            job,
            self._delivered.get(job, 0),
            self._workers[new_worker_id],
            emit_after_index=self._last_index.get(job, -1),
            trace=rebuild_ctx,
        )
        if rebuild_ctx is not None:
            # Recorded in the *original* request's trace: the rebuild is
            # causally part of whatever chunk was last in flight for the
            # job, and the links annotation makes that explicit.
            self.tracer.emit(
                rebuild_ctx, "failover.rebuild",
                start_s=start, end_s=self.clock(),
                wall_s=time.perf_counter() - tic,
                worker_id=new_worker_id,
                annotations={"job": job, "recovered": len(emissions),
                             "links": rebuild_ctx.trace_id},
            )
        self._owner[job] = new_worker_id
        self.metrics.counter("fleet.sessions.migrated").inc()
        if emissions:
            self.metrics.counter("fleet.predictions.recovered").inc(
                len(emissions))
            self._note(emissions)
            self._buffer.extend(emissions)
        return emissions

    def _on_worker_death(self, worker_id: str) -> None:
        """Abrupt failover: un-ring the dead worker, rebuild its jobs."""
        self._workers.pop(worker_id)
        self.ring.remove(worker_id)
        if self.health is not None:
            self.health.deregister(worker_id)
        self.metrics.counter("fleet.failovers").inc()
        self.metrics.gauge("fleet.workers").set(len(self._workers))
        if not self._workers:
            raise WorkerUnavailable(
                f"last worker {worker_id!r} died; nothing to fail over to"
            )
        jobs = self._jobs_owned_by(worker_id)
        if self.tracer is not None:
            now = self.clock()
            for job in jobs:
                ctx = self._trace_ctx.get(job)
                if ctx is not None:
                    # The request that was in flight on the dead worker is
                    # marked failed in its own trace; the rebuild spans
                    # that follow (via _migrate) attach alongside it.
                    self.tracer.emit(
                        self.tracer.child(ctx), "worker.lost",
                        start_s=now, end_s=now, worker_id=worker_id,
                        status="failed", annotations={"job": job},
                    )
        recovered = sum(
            len(self._migrate(job, source=None)) for job in jobs
        )
        self.events.append(FailoverEvent(
            at_s=self.clock(), kind="failover", worker_id=worker_id,
            n_jobs=len(jobs), n_recovered=recovered,
        ))

    def _handoff(self, worker_id: str, *, kind: str):
        """Retire a live worker: drain it, migrate its jobs, un-ring it."""
        worker = self._workers.pop(worker_id)
        self.ring.remove(worker_id)
        if self.health is not None:
            self.health.deregister(worker_id)
        self.metrics.counter("fleet.scale.down").inc()
        self.metrics.gauge("fleet.workers").set(len(self._workers))
        try:
            emissions = worker.drain()
            self._note(emissions)
            self._buffer.extend(emissions)
        except WorkerUnavailable:
            pass                        # died while retiring; replay covers it
        jobs = self._jobs_owned_by(worker_id)
        recovered = 0
        for job in jobs:
            try:
                worker.end_session(job)
            except WorkerUnavailable:
                pass
            recovered += len(self._migrate(job, source=None))
        self.events.append(FailoverEvent(
            at_s=self.clock(), kind=kind, worker_id=worker_id,
            n_jobs=len(jobs), n_recovered=recovered,
        ))
        return worker
