"""The fleet ingress tier: consistent-hash routing, failover, aggregation.

:class:`FleetRouter` presents the same surface as a single
:class:`~repro.serve.server.InferenceServer` (``submit`` / ``step`` /
``drain`` / ``end_session`` — the :class:`~repro.serve.FleetLoadGenerator`
drives it unchanged) but fans the work across N workers:

* **Routing** — each chunk goes to ``ring.owner(job_id)``; session
  affinity falls out of hashing, no routing table to replicate.
* **Failure handling** — a worker that raises
  :class:`~repro.fleet.worker.WorkerUnavailable` (crashed, SIGKILLed
  child) or whose heartbeat lease lapses is removed from the ring; its
  jobs are re-owned by the survivors and their sessions rebuilt from
  history replay (:class:`~repro.fleet.failover.SessionRebuilder`), so
  post-recovery emissions are bit-identical to an unfailed run.
* **Typed rejections** — a worker answering ``DRAINING`` is retired
  (flushed, its sessions migrated) rather than treated as an error; an
  overloaded worker's ``REJECTED`` is surfaced to the caller as ordinary
  backpressure.
* **Aggregation** — :meth:`fleet_metrics` merges every worker's registry
  with the router's own (counters add, gauges sum, histogram
  percentiles over the union of samples), giving the operator one
  fleet-wide view — the signal the autoscaler consumes.

Everything is synchronous and clock-injected; a fleet replay is
deterministic for a fixed seed, which is what lets ``repro fleet-bench``
gate routing determinism and failover parity bit-for-bit.
"""

from __future__ import annotations

import time

import numpy as np

from repro.fleet.failover import FailoverEvent, SessionRebuilder
from repro.fleet.ring import HashRing
from repro.fleet.worker import WorkerUnavailable
from repro.serve.metrics import MetricsRegistry
from repro.serve.server import Emission, SubmitResult

__all__ = ["FleetRouter"]


class FleetRouter:
    """Route job streams across a resizable set of serving workers.

    Parameters
    ----------
    workers:
        Initial worker objects (:class:`~repro.fleet.worker.FleetWorker`
        or :class:`~repro.fleet.worker.SubprocessWorker`); at least one.
        All must share ``clock``.
    clock:
        The fleet's shared time source.
    history:
        Optional ``job_id -> full row array`` provider for failover
        replay (see :class:`~repro.fleet.failover.SessionRebuilder`);
        without it, failed-over sessions restart cold.
    health:
        Optional :class:`~repro.fleet.health.HeartbeatMonitor`.  The
        router checks leases at the top of every :meth:`step` and fails
        over expired workers; workers must be constructed with
        ``heartbeat=health`` so their steps actually beat it.
    vnodes / salt:
        Hash-ring shape (see :class:`~repro.fleet.ring.HashRing`).
    """

    def __init__(
        self,
        workers,
        *,
        clock=time.monotonic,
        history=None,
        health=None,
        vnodes: int = 128,
        salt: str = "repro-fleet",
    ):
        workers = list(workers)
        if not workers:
            raise ValueError("need at least one worker")
        self.clock = clock
        self.health = health
        self.metrics = MetricsRegistry()
        self.rebuilder = SessionRebuilder(history)
        self._workers: dict[str, object] = {}
        self.ring = HashRing(vnodes=vnodes, salt=salt)
        #: job -> current owning worker id (insertion-ordered: migration
        #: and failover walk jobs in first-seen order, deterministically).
        self._owner: dict[object, str] = {}
        self._delivered: dict[object, int] = {}
        #: job -> highest sample_index the fleet has actually emitted.
        self._last_index: dict[object, int] = {}
        self._buffer: list[Emission] = []
        self.events: list[FailoverEvent] = []
        for worker in workers:
            if worker.worker_id in self._workers:
                raise ValueError(f"duplicate worker id {worker.worker_id!r}")
            self._workers[worker.worker_id] = worker
            self.ring.add(worker.worker_id)
            if self.health is not None:
                self.health.register(worker.worker_id)
        self.metrics.gauge("fleet.workers").set(len(self._workers))

    # ------------------------------------------------------------------
    # introspection
    @property
    def n_workers(self) -> int:
        """Live workers behind the router."""
        return len(self._workers)

    @property
    def worker_ids(self) -> list[str]:
        """Live worker ids in join order (newest last)."""
        return list(self._workers)

    def worker(self, worker_id: str):
        """The live worker object for ``worker_id`` (KeyError when gone)."""
        return self._workers[worker_id]

    @property
    def queue_depth(self) -> int:
        """Total chunks queued across live workers."""
        total = 0
        for worker in self._workers.values():
            try:
                total += worker.queue_depth
            except WorkerUnavailable:
                continue
        return total

    @property
    def n_sessions(self) -> int:
        """Total sessions resident across live workers."""
        total = 0
        for worker in self._workers.values():
            try:
                total += worker.n_sessions
            except WorkerUnavailable:
                continue
        return total

    def owner_of(self, job_id) -> str:
        """The worker id currently owning ``job_id``'s session."""
        worker_id = self._owner.get(job_id)
        if worker_id is None or worker_id not in self._workers:
            worker_id = self.ring.owner(job_id)
            self._owner[job_id] = worker_id
        return worker_id

    def fleet_metrics(self) -> MetricsRegistry:
        """Fleet-wide registry: the router's own + every worker's, merged."""
        merged = MetricsRegistry().merge(self.metrics)
        for worker_id in sorted(self._workers):
            try:
                merged.merge(self._workers[worker_id].metrics_registry())
            except WorkerUnavailable:
                continue
        return merged

    # ------------------------------------------------------------------
    # ingress
    def submit(self, job_id, samples) -> SubmitResult:
        """Route one chunk to the owning worker, failing over on death.

        A dead owner triggers an immediate failover (ring removal +
        session rebuild) and the chunk retries on the new owner — the
        caller never sees the crash.  ``REJECTED`` (overload) is returned
        as-is: backpressure is the caller's signal, not a routing error.
        """
        samples = np.atleast_2d(np.asarray(samples))
        for _ in range(len(self._workers) + 1):
            worker_id = self.owner_of(job_id)
            worker = self._workers[worker_id]
            try:
                result = worker.submit(job_id, samples)
            except WorkerUnavailable:
                self._on_worker_death(worker_id)
                continue
            if result is SubmitResult.DRAINING:
                self.metrics.counter("fleet.rerouted.draining").inc()
                self._handoff(worker_id, kind="drain")
                continue
            if result:
                self.metrics.counter("fleet.chunks.routed").inc()
                self._delivered[job_id] = (
                    self._delivered.get(job_id, 0) + samples.shape[0]
                )
            else:
                self.metrics.counter("fleet.chunks.rejected").inc()
            return result
        raise WorkerUnavailable("no live worker accepted the chunk")

    # ------------------------------------------------------------------
    # processing
    def step(self) -> list[Emission]:
        """One fleet tick: lease checks, then every worker steps.

        Workers step in sorted-id order (determinism); any crash observed
        mid-step fails over inline, and emissions recovered by the
        resulting rebuilds are appended to this tick's output.
        """
        out = self._take_buffer()
        if self.health is not None:
            for worker_id in self.health.expired():
                if worker_id in self._workers:
                    self.metrics.counter("fleet.lease_expired").inc()
                    self._on_worker_death(worker_id)
        for worker_id in sorted(self._workers):
            worker = self._workers.get(worker_id)
            if worker is None:          # removed by an earlier failover
                continue
            try:
                emissions = worker.step()
            except WorkerUnavailable:
                self._on_worker_death(worker_id)
                continue
            self._note(emissions)
            out.extend(emissions)
        out.extend(self._take_buffer())
        return out

    def drain(self) -> list[Emission]:
        """Flush every worker (graceful fleet shutdown)."""
        out = self._take_buffer()
        for worker_id in sorted(self._workers):
            try:
                emissions = self._workers[worker_id].drain()
            except WorkerUnavailable:
                self._on_worker_death(worker_id)
                continue
            self._note(emissions)
            out.extend(emissions)
        out.extend(self._take_buffer())
        return out

    def end_session(self, job_id) -> bool:
        """Forget ``job_id`` fleet-wide (stream finished)."""
        worker_id = self._owner.pop(job_id, None)
        self._delivered.pop(job_id, None)
        self._last_index.pop(job_id, None)
        if worker_id is not None and worker_id in self._workers:
            try:
                return self._workers[worker_id].end_session(job_id)
            except WorkerUnavailable:
                self._on_worker_death(worker_id)
        return False

    # ------------------------------------------------------------------
    # membership
    def add_worker(self, worker) -> list:
        """Join a worker; migrate exactly the jobs its vnodes claim.

        Consistent hashing guarantees every migrated job moves *to* the
        new worker; each migration ends the session on its old (live)
        owner and rebuilds it on the new one from history replay, so the
        resize is emission-lossless.  Returns the migrated job ids.
        """
        worker_id = worker.worker_id
        if worker_id in self._workers:
            raise ValueError(f"worker {worker_id!r} already routed")
        self._workers[worker_id] = worker
        self.ring.add(worker_id)
        if self.health is not None:
            self.health.register(worker_id)
        self.metrics.counter("fleet.scale.up").inc()
        self.metrics.gauge("fleet.workers").set(len(self._workers))
        moved = [
            job for job, owner in self._owner.items()
            if self.ring.owner(job) != owner
        ]
        recovered = 0
        for job in moved:
            source = self._workers.get(self._owner[job])
            recovered += len(self._migrate(job, source=source))
        self.events.append(FailoverEvent(
            at_s=self.clock(), kind="scale-up", worker_id=worker_id,
            n_jobs=len(moved), n_recovered=recovered,
        ))
        return moved

    def remove_worker(self, worker_id: str):
        """Gracefully retire a worker: flush, migrate, close.

        The leaving replica drains first (its queued work emits here,
        attributed normally), then every session it owned is rebuilt on
        the survivors.  Returns the removed worker object.
        """
        if worker_id not in self._workers:
            raise KeyError(f"worker {worker_id!r} not routed")
        if len(self._workers) == 1:
            raise ValueError("cannot remove the last worker")
        worker = self._handoff(worker_id, kind="scale-down")
        worker.close()
        return worker

    # ------------------------------------------------------------------
    # internals
    def _take_buffer(self) -> list[Emission]:
        out, self._buffer = self._buffer, []
        return out

    def _note(self, emissions) -> None:
        for emission in emissions:
            index = emission.prediction.sample_index
            if index > self._last_index.get(emission.job_id, -1):
                self._last_index[emission.job_id] = index

    def _jobs_owned_by(self, worker_id: str) -> list:
        return [job for job, owner in self._owner.items() if owner == worker_id]

    def _migrate(self, job, *, source) -> list[Emission]:
        """Move one job to its current ring owner, rebuilding its session.

        ``source`` is the job's previous worker when it is still alive
        (scale events) — its session state is dropped first so a stale
        replica can never emit for the job again; ``None`` when the
        previous worker is already gone (failover).
        """
        if source is not None:
            source.end_session(job)
        new_worker_id = self.ring.owner(job)
        emissions = self.rebuilder.rebuild(
            job,
            self._delivered.get(job, 0),
            self._workers[new_worker_id],
            emit_after_index=self._last_index.get(job, -1),
        )
        self._owner[job] = new_worker_id
        self.metrics.counter("fleet.sessions.migrated").inc()
        if emissions:
            self.metrics.counter("fleet.predictions.recovered").inc(
                len(emissions))
            self._note(emissions)
            self._buffer.extend(emissions)
        return emissions

    def _on_worker_death(self, worker_id: str) -> None:
        """Abrupt failover: un-ring the dead worker, rebuild its jobs."""
        self._workers.pop(worker_id)
        self.ring.remove(worker_id)
        if self.health is not None:
            self.health.deregister(worker_id)
        self.metrics.counter("fleet.failovers").inc()
        self.metrics.gauge("fleet.workers").set(len(self._workers))
        if not self._workers:
            raise WorkerUnavailable(
                f"last worker {worker_id!r} died; nothing to fail over to"
            )
        jobs = self._jobs_owned_by(worker_id)
        recovered = sum(
            len(self._migrate(job, source=None)) for job in jobs
        )
        self.events.append(FailoverEvent(
            at_s=self.clock(), kind="failover", worker_id=worker_id,
            n_jobs=len(jobs), n_recovered=recovered,
        ))

    def _handoff(self, worker_id: str, *, kind: str):
        """Retire a live worker: drain it, migrate its jobs, un-ring it."""
        worker = self._workers.pop(worker_id)
        self.ring.remove(worker_id)
        if self.health is not None:
            self.health.deregister(worker_id)
        self.metrics.counter("fleet.scale.down").inc()
        self.metrics.gauge("fleet.workers").set(len(self._workers))
        try:
            emissions = worker.drain()
            self._note(emissions)
            self._buffer.extend(emissions)
        except WorkerUnavailable:
            pass                        # died while retiring; replay covers it
        jobs = self._jobs_owned_by(worker_id)
        recovered = 0
        for job in jobs:
            try:
                worker.end_session(job)
            except WorkerUnavailable:
                pass
            recovered += len(self._migrate(job, source=None))
        self.events.append(FailoverEvent(
            at_s=self.clock(), kind=kind, worker_id=worker_id,
            n_jobs=len(jobs), n_recovered=recovered,
        ))
        return worker
