"""Metrics-driven autoscaling: grow/shrink the fleet from load signals.

The control loop is the same debounced-threshold shape as
:class:`~repro.monitor.alerts.AlertManager`: a raw signal (queue depth
per worker) is compared against high/low watermarks, a breach must
persist for ``for_ticks`` consecutive observations before acting
(single-tick spikes are noise, not load), and every action starts a
``cooldown_ticks`` refractory window so the loop cannot thrash — the
fleet must absorb one resize (and its session migrations, each a
history-replay rebuild) before the next is considered.

Scale-up spawns workers through a caller-supplied factory and joins them
via :meth:`~repro.fleet.router.FleetRouter.add_worker`; scale-down
retires the *newest* worker (join order) through
:meth:`~repro.fleet.router.FleetRouter.remove_worker`, so the
operator-seeded baseline fleet is the last to go.  Both paths are the
lossless migration paths the bench gates — autoscaling never costs an
emission.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscaleConfig", "AutoscaleDecision", "Autoscaler"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Thresholds and debounce shape for the autoscaling loop.

    ``high_queue_per_worker`` / ``low_queue_per_worker`` are watermarks
    on mean ingress queue depth per live worker — the direct measure of
    how far offered load exceeds serving capacity.  ``for_ticks`` is the
    debounce streak; ``cooldown_ticks`` the post-action refractory
    window.  Worker count is clamped to ``[min_workers, max_workers]``.
    """

    min_workers: int = 1
    max_workers: int = 8
    high_queue_per_worker: float = 8.0
    low_queue_per_worker: float = 1.0
    for_ticks: int = 3
    cooldown_ticks: int = 5

    def __post_init__(self):
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) < min_workers "
                f"({self.min_workers})"
            )
        if self.low_queue_per_worker >= self.high_queue_per_worker:
            raise ValueError(
                "low_queue_per_worker must be below high_queue_per_worker "
                f"(got {self.low_queue_per_worker} >= {self.high_queue_per_worker})"
            )
        if self.for_ticks < 1:
            raise ValueError(f"for_ticks must be >= 1, got {self.for_ticks}")
        if self.cooldown_ticks < 0:
            raise ValueError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}"
            )


@dataclass(frozen=True)
class AutoscaleDecision:
    """One scaling action, for the bench report and tests."""

    tick: int                   # observation count when the action fired
    action: str                 # "scale-up" | "scale-down"
    worker_id: str              # the worker spawned or retired
    queue_per_worker: float     # the signal value that triggered it
    n_workers: int              # fleet size *after* the action


class Autoscaler:
    """Debounced queue-depth controller over a :class:`FleetRouter`.

    Parameters
    ----------
    router:
        The fleet to resize.
    spawn:
        ``spawn(worker_id) -> worker`` factory for scale-up; must return
        a worker on the fleet's shared clock.  Spawned workers are named
        ``auto-1``, ``auto-2``, ... so bench traces read cleanly.
    config:
        :class:`AutoscaleConfig` thresholds.
    """

    def __init__(self, router, spawn, *, config: AutoscaleConfig | None = None):
        self.router = router
        self.spawn = spawn
        self.config = config or AutoscaleConfig()
        self.decisions: list[AutoscaleDecision] = []
        self._tick = 0
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown = 0
        self._spawned = 0

    @property
    def queue_per_worker(self) -> float:
        """The raw control signal: mean ingress queue depth per worker."""
        n = self.router.n_workers
        return self.router.queue_depth / n if n else 0.0

    def tick(self) -> AutoscaleDecision | None:
        """One control-loop observation; returns the action taken, if any.

        Call once per fleet tick (typically from the load generator's
        ``on_tick`` hook).  Breach streaks keep accumulating during
        cooldown, so a persistent overload acts the moment the window
        closes rather than re-earning its debounce.
        """
        cfg = self.config
        self._tick += 1
        signal = self.queue_per_worker
        if signal >= cfg.high_queue_per_worker:
            self._high_streak += 1
            self._low_streak = 0
        elif signal <= cfg.low_queue_per_worker:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        n = self.router.n_workers
        if self._high_streak >= cfg.for_ticks and n < cfg.max_workers:
            self._spawned += 1
            worker = self.spawn(f"auto-{self._spawned}")
            self.router.add_worker(worker)
            return self._acted("scale-up", worker.worker_id, signal)
        if self._low_streak >= cfg.for_ticks and n > cfg.min_workers:
            worker_id = self.router.worker_ids[-1]   # newest joins go first
            self.router.remove_worker(worker_id)
            return self._acted("scale-down", worker_id, signal)
        return None

    def _acted(self, action: str, worker_id: str, signal: float) -> AutoscaleDecision:
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown = self.config.cooldown_ticks
        decision = AutoscaleDecision(
            tick=self._tick,
            action=action,
            worker_id=worker_id,
            queue_per_worker=signal,
            n_workers=self.router.n_workers,
        )
        self.decisions.append(decision)
        return decision
