"""HPC-parallel execution substrate.

Single-node process parallelism for embarrassingly parallel stages (grid
search candidates, per-job telemetry generation).  Design follows the
mpi4py/NumPy guidance for Python parallelism:

* work units communicate NumPy arrays, not rich objects, where possible;
* large read-only inputs can be placed in POSIX shared memory once and
  mapped zero-copy by workers (:mod:`repro.parallel.shared`);
* results are deterministic and independent of scheduling order, because
  every unit carries its own seed/stream (see :mod:`repro.utils.rng`).

On a 1-core machine everything degrades gracefully to serial execution.
"""

from repro.parallel.pool import effective_n_jobs, parallel_map
from repro.parallel.shared import SharedArray, shared_from_array

__all__ = ["parallel_map", "effective_n_jobs", "SharedArray", "shared_from_array"]
