"""Chunked process-pool map.

``parallel_map(fn, items)`` preserves input order and falls back to a plain
serial loop when only one job is requested or available — so callers write
one code path and the 1-core CI machine and a 48-core node both do the
right thing.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["effective_n_jobs", "parallel_map"]


def effective_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve a job count: ``None``/``-1`` → all cores, else clamp to cores."""
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == -1:
        return cores
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return min(n_jobs, cores)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    n_jobs: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Order-preserving map over ``items``, optionally across processes.

    Parameters
    ----------
    fn:
        A *picklable* callable (top-level function or a small callable
        object holding its context — closures won't cross the process
        boundary).
    items:
        Work units.  Materialized to a list to size chunks.
    n_jobs:
        Worker processes; ``None``/``-1`` uses all cores.  With 1 effective
        job the map runs inline (no pool, no pickling).
    chunksize:
        Items per task message.  Default targets ~4 chunks per worker,
        which amortizes IPC without starving the pool on skewed workloads.
    """
    items = list(items)
    jobs = effective_n_jobs(n_jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, len(items) // (jobs * 4))
    ctx = mp.get_context("spawn")  # fork is unsafe with threaded BLAS
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(fn, items, chunksize=chunksize)
