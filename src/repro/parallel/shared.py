"""Zero-copy shared NumPy arrays over POSIX shared memory.

For fan-out over a large read-only design matrix (e.g. a challenge tensor),
pickling the array to every worker doubles memory and dominates wall-clock.
:class:`SharedArray` places the data in ``multiprocessing.shared_memory``
once; workers attach by name and view it as an ndarray without copying.

Usage::

    shared = shared_from_array(X)          # parent: copy in, once
    handle = shared.handle()               # small picklable descriptor
    # in worker:
    X_view = handle.attach()               # zero-copy ndarray view
    ...
    shared.close(unlink=True)              # parent: release when done
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArray", "SharedArrayHandle", "shared_from_array"]


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor a worker uses to attach to the shared block."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def attach(self) -> np.ndarray:
        """Map the shared block and return an ndarray view (no copy).

        The returned array keeps a reference to the mapping alive via its
        ``base`` attribute; it becomes invalid after the owner unlinks and
        all views are dropped.
        """
        shm = shared_memory.SharedMemory(name=self.name)
        arr = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
        # Keep the SharedMemory object alive as long as the array is: plain
        # ndarrays cannot hold attributes, so hand back a trivial subclass.
        view = arr.view(_SharedView)
        view._shm_ref = shm
        return view


class _SharedView(np.ndarray):
    """ndarray view that pins its backing SharedMemory mapping."""

    _shm_ref: shared_memory.SharedMemory | None = None


class SharedArray:
    """Owner-side wrapper for a shared-memory ndarray."""

    def __init__(self, shape: tuple[int, ...], dtype) -> None:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if nbytes <= 0:
            raise ValueError(f"cannot share empty array of shape {shape}")
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        self._closed = False

    def handle(self) -> SharedArrayHandle:
        """Picklable descriptor for attaching from another process."""
        if self._closed:
            raise RuntimeError("shared array already closed")
        return SharedArrayHandle(
            name=self._shm.name,
            shape=tuple(self.array.shape),
            dtype=self.array.dtype.str,
        )

    def close(self, unlink: bool = True) -> None:
        """Release the mapping; with ``unlink`` also destroy the block."""
        if self._closed:
            return
        self._closed = True
        del self.array
        self._shm.close()
        if unlink:
            self._shm.unlink()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close(unlink=True)


def shared_from_array(arr: np.ndarray) -> SharedArray:
    """Copy ``arr`` into a new shared block (one copy, then zero-copy use)."""
    shared = SharedArray(tuple(arr.shape), arr.dtype)
    shared.array[...] = arr
    return shared
