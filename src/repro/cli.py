"""Command-line interface.

Four subcommands cover the common workflows end to end::

    python -m repro simulate         --scale 0.05 --npz-dir release/ --csv-dir logs/
    python -m repro evaluate         --model rf_cov --dataset 60-middle-1 --scale 0.05
    python -m repro efficiency       --scale 0.02
    python -m repro serve-bench      --scale 0.02 --jobs 50
    python -m repro monitor-bench    --scale 0.02 --jobs 24 --challenger good
    python -m repro resilience-bench --scale 0.01 --mtbf-epochs 2
    python -m repro store-bench      --quick --out BENCH_store.json
    python -m repro fleet-bench      --quick --out BENCH_fleet.json
    python -m repro trace-bench      --quick --out BENCH_trace.json

All commands are deterministic for a given ``--seed`` (``serve-bench`` and
``monitor-bench`` wall-clock throughput varies with the machine; every
classification, batch, shed, drift, rollout and preemption decision does
not).
"""

from __future__ import annotations

import argparse
import sys

from repro.simcluster.cluster import SimulationConfig

__all__ = ["main", "build_parser"]

_MODEL_CHOICES = ("svm_pca", "svm_cov", "rf_pca", "rf_cov", "xgb_cov")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIT Supercloud Workload Classification Challenge "
                    "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=2022,
                       help="simulation seed (default 2022)")
        p.add_argument("--scale", type=float, default=0.03,
                       help="trials_scale: fraction of the paper's per-class "
                            "job counts (1.0 = full 3,430-job release)")

    p_sim = sub.add_parser("simulate", help="generate a labelled release")
    add_common(p_sim)
    p_sim.add_argument("--npz-dir", help="write the seven challenge datasets "
                                         "as npz archives here")
    p_sim.add_argument("--csv-dir", help="export scheduler log + telemetry "
                                         "CSVs here")
    p_sim.add_argument("--n-jobs", type=int, default=1,
                       help="worker processes for job generation "
                            "(-1 = all cores; output is bit-identical "
                            "to serial)")
    p_sim.add_argument("--store-dir",
                       help="archive every generated GPU series into a "
                            "crash-safe telemetry store at this path")

    p_eval = sub.add_parser("evaluate", help="train and test one baseline")
    add_common(p_eval)
    p_eval.add_argument("--model", choices=_MODEL_CHOICES, default="rf_cov")
    p_eval.add_argument("--dataset", default="60-middle-1")
    p_eval.add_argument("--cv", type=int, default=3,
                        help="grid-search folds (paper: 10)")

    p_eff = sub.add_parser("efficiency",
                           help="per-job-type power-efficiency analysis "
                                "(Section IV-B's suggestion)")
    add_common(p_eff)

    p_serve = sub.add_parser(
        "serve-bench",
        help="train a quick RF+Cov model, register it, and replay a "
             "simulated fleet through the micro-batching inference server",
    )
    add_common(p_serve)
    p_serve.add_argument("--jobs", type=int, default=50,
                         help="concurrent simulated job streams (default 50)")
    p_serve.add_argument("--rate", type=int, default=90,
                         help="telemetry samples per job per tick "
                              "(default 90 = 10 s at 9 Hz)")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="micro-batch flush size (default 64)")
    p_serve.add_argument("--deadline-s", type=float, default=30.0,
                         help="micro-batch flush deadline in simulated "
                              "seconds (default 30)")
    p_serve.add_argument("--queue", type=int, default=2048,
                         help="ingress queue capacity in chunks (default 2048)")
    p_serve.add_argument("--policy", choices=("shed-oldest", "reject"),
                         default="shed-oldest",
                         help="admission policy when the queue is full")
    p_serve.add_argument("--trees", type=int, default=30,
                         help="random-forest size for the quick model")
    p_serve.add_argument("--max-samples", type=int, default=1620,
                         help="cap each job's replayed stream (default 1620 "
                              "= 3 minutes at 9 Hz)")
    p_serve.add_argument("--registry-dir",
                         help="model registry directory (default: a "
                              "temporary directory)")

    p_mon = sub.add_parser(
        "monitor-bench",
        help="champion-vs-challenger rollout under injected telemetry "
             "drift: detection latency, shadow agreement, canary "
             "promotion/rollback, alert timeline",
    )
    add_common(p_mon)
    p_mon.add_argument("--jobs", type=int, default=24,
                       help="concurrent simulated job streams (default 24)")
    p_mon.add_argument("--trees", type=int, default=30,
                       help="random-forest size for champion/challenger")
    p_mon.add_argument("--challenger", choices=("good", "bad"),
                       default="good",
                       help="'good' retrains the baseline (should be "
                            "promoted); 'bad' scrambles labels (should be "
                            "rolled back)")
    p_mon.add_argument("--max-samples", type=int, default=2700,
                       help="replayed stream length per job (default 2700 "
                            "= 5 minutes at 9 Hz)")
    p_mon.add_argument("--drift-start", type=int, default=1080,
                       help="stream sample where injected drift begins "
                            "(default 1080 = 2 minutes)")
    p_mon.add_argument("--drift-gain", type=float, default=1.6,
                       help="sensor gain at full ramp (default 1.6)")
    p_mon.add_argument("--drift-offset", type=float, default=0.0,
                       help="sensor additive offset at full ramp")
    p_mon.add_argument("--drift-ramp", type=int, default=270,
                       help="samples over which the drift ramps in")
    p_mon.add_argument("--class-shift", type=float, default=0.0,
                       help="fraction of jobs switching workload class at "
                            "the drift offset (default 0)")
    p_mon.add_argument("--canary-fraction", type=float, default=0.4,
                       help="fraction of sessions routed to the "
                            "challenger during canary (default 0.4)")
    p_mon.add_argument("--registry-dir",
                       help="model registry directory (default: a "
                            "temporary directory)")
    p_mon.add_argument("--store-dir",
                       help="replay the fleet from a telemetry store at "
                            "this path (an empty store is seeded with the "
                            "bench's simulated release first)")

    p_res = sub.add_parser(
        "resilience-bench",
        help="SIGKILL an LSTM training run at simulated preemptions and "
             "registry writers mid-save; assert checkpoint/resume is "
             "bit-identical and the registry keeps serving",
    )
    add_common(p_res)
    p_res.set_defaults(scale=0.01)
    p_res.add_argument("--epochs", type=int, default=5,
                       help="training epochs for both twins (default 5)")
    p_res.add_argument("--hidden", type=int, default=8,
                       help="LSTM hidden size (default 8; paper: 128)")
    p_res.add_argument("--time-stride", type=int, default=8,
                       help="window subsampling for CPU budget (default 8)")
    p_res.add_argument("--mtbf-epochs", type=float, default=2.0,
                       help="mean epochs between injected preemptions "
                            "(default 2.0)")
    p_res.add_argument("--workdir",
                       help="checkpoint/registry directory (default: a "
                            "temporary directory)")

    p_perf = sub.add_parser(
        "perf-bench",
        help="time serve/train/infer hot paths against their slow "
             "reference implementations, gate on bit-identical "
             "predictions, and write BENCH_*.json baselines",
    )
    p_perf.add_argument("--seed", type=int, default=0,
                        help="bench data seed (default 0)")
    p_perf.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (0.01 = CI smoke, "
                             "1.0 = workstation baseline)")
    p_perf.add_argument("--repeats", type=int, default=5,
                        help="timed runs per bench (default 5)")
    p_perf.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup runs per bench (default 1)")
    p_perf.add_argument("--n-jobs", type=int, default=2,
                        help="worker processes for the parallel variants "
                             "(default 2)")
    p_perf.add_argument("--out-dir", default=".",
                        help="directory for BENCH_serve.json / "
                             "BENCH_train.json / BENCH_infer.json "
                             "(default: current directory)")

    p_train = sub.add_parser(
        "train-bench",
        help="gate fused backward kernels against their slow references "
             "and data-parallel training against the serial trajectory "
             "(bitwise), then measure training throughput into "
             "BENCH_train.json",
    )
    p_train.add_argument("--seed", type=int, default=0,
                         help="bench data seed (default 0)")
    p_train.add_argument("--scale", type=float, default=1.0,
                         help="workload size multiplier (0.05 = CI smoke, "
                              "1.0 = committed baseline shape)")
    p_train.add_argument("--repeats", type=int, default=3,
                         help="timed runs per bench (default 3)")
    p_train.add_argument("--warmup", type=int, default=1,
                         help="untimed warmup runs per bench (default 1)")
    p_train.add_argument("--n-jobs", type=int, default=4,
                         help="gradient worker processes for the parallel "
                              "variants (default 4)")
    p_train.add_argument("--out", default="BENCH_train.json",
                         help="output path for the bench JSON "
                              "(default: BENCH_train.json)")

    p_store = sub.add_parser(
        "store-bench",
        help="ingest a simulated release into the crash-safe telemetry "
             "store, then gate replay bit-parity, SIGKILL recovery at "
             "every store.* fault point, zero-copy RSS, and compaction "
             "feature parity while timing ingest/recover/replay/compact",
    )
    p_store.add_argument("--seed", type=int, default=2022,
                         help="simulation seed (default 2022)")
    p_store.add_argument("--scale", type=float, default=0.02,
                         help="trials_scale of the ingested release")
    p_store.add_argument("--repeats", type=int, default=3,
                         help="timed runs per bench (default 3)")
    p_store.add_argument("--shards", type=int, nargs="+", default=[1, 4],
                         help="shard counts the parity gates sweep "
                              "(default: 1 4)")
    p_store.add_argument("--rates", type=float, nargs="+", default=[1.0, 4.0],
                         help="replay-rate multipliers the determinism "
                              "gate sweeps (default: 1.0 4.0)")
    p_store.add_argument("--quick", action="store_true",
                         help="CI smoke: smaller release, fewer repeats")
    p_store.add_argument("--out", default="BENCH_store.json",
                         help="output path for the bench JSON "
                              "(default: BENCH_store.json)")

    p_fleet = sub.add_parser(
        "fleet-bench",
        help="drive seeded fleet traffic through 1/2/4/8 workers behind "
             "the consistent-hash router, crash a worker mid-run, and "
             "gate routing determinism, post-failover emission parity, "
             "ring churn bounds, throughput scaling, and autoscaling",
    )
    p_fleet.add_argument("--seed", type=int, default=2022,
                         help="simulation/replay seed (default 2022)")
    p_fleet.add_argument("--scale", type=float, default=0.02,
                         help="trials_scale of the simulated release the "
                              "parity model trains on")
    p_fleet.add_argument("--jobs", type=int, default=32,
                         help="concurrent simulated job streams (default 32)")
    p_fleet.add_argument("--trees", type=int, default=30,
                         help="random-forest size for the parity model")
    p_fleet.add_argument("--workers", type=int, nargs="+",
                         default=[1, 2, 4, 8],
                         help="worker counts the scaling gate sweeps "
                              "(must include 1 and 4; default: 1 2 4 8)")
    p_fleet.add_argument("--capacity", type=int, default=4,
                         help="ingress chunks each worker serves per tick "
                              "(the capacity model; default 4)")
    p_fleet.add_argument("--kill-tick", type=int, default=12,
                         help="tick at which the victim worker crashes "
                              "(default 12)")
    p_fleet.add_argument("--quick", action="store_true",
                         help="CI smoke: stub model over synthetic "
                              "telemetry, shorter streams, 1/2/4 workers")
    p_fleet.add_argument("--out", default="BENCH_fleet.json",
                         help="output path for the bench JSON "
                              "(default: BENCH_fleet.json)")

    p_trace = sub.add_parser(
        "trace-bench",
        help="gate the request-tracing subsystem: traced/untraced "
             "emission parity under a worker crash, span-tree "
             "connectivity at 4 workers, failover trace links, sampled "
             "hot-path overhead <5%%, and span-WAL crash recovery",
    )
    p_trace.add_argument("--seed", type=int, default=2022,
                         help="replay seed (default 2022)")
    p_trace.add_argument("--jobs", type=int, default=None,
                         help="job streams in the failover scenario "
                              "(default 32, or 16 with --quick)")
    p_trace.add_argument("--workers", type=int, default=4,
                         help="fleet size for the connectivity gate "
                              "(default 4)")
    p_trace.add_argument("--kill-tick", type=int, default=6,
                         help="tick at which the victim worker crashes "
                              "(default 6)")
    p_trace.add_argument("--sample", type=float, default=1.0 / 16.0,
                         help="sampling rate the overhead gate runs at "
                              "(default 1/16)")
    p_trace.add_argument("--max-overhead", type=float, default=0.05,
                         help="sampled hot-path overhead budget "
                              "(default 0.05 = 5%%)")
    p_trace.add_argument("--quick", action="store_true",
                         help="CI smoke: shorter streams, earlier kill, "
                              "fewer timing repeats")
    p_trace.add_argument("--out", default="BENCH_trace.json",
                         help="output path for the bench JSON "
                              "(default: BENCH_trace.json)")
    return parser


def _cmd_simulate(args) -> int:
    from repro.data import build_challenge_suite, challenge_suite_table, save_challenge_suite
    from repro.data.labelled import trials_from_jobs
    from repro.data.stats import family_totals, format_table
    from repro.simcluster import ClusterSimulator
    from repro.simcluster.export import export_release

    from repro.simcluster.nodestate import snapshot_cluster

    config = SimulationConfig(seed=args.seed, trials_scale=args.scale)
    store = None
    if args.store_dir:
        from repro.store import TelemetryStore
        store = TelemetryStore(args.store_dir)
    jobs, log = ClusterSimulator(config).generate(n_jobs=args.n_jobs,
                                                  store=store)
    labelled = trials_from_jobs(jobs)
    print(f"simulated {len(jobs)} jobs -> {len(labelled)} labelled GPU series")
    if store is not None:
        print(f"archived telemetry to store: {store.stats()}")
        store.close()
    print("family totals:", family_totals(labelled))
    state = snapshot_cluster(list(log), n_nodes=224, dt_s=600.0)
    print(f"cluster view: peak {state.peak_concurrency()} GPUs in use "
          f"across 224 nodes")

    if args.csv_dir:
        counts = export_release(jobs, log, args.csv_dir)
        print(f"exported CSVs to {args.csv_dir}: {counts}")
    if args.npz_dir:
        suite = build_challenge_suite(labelled, seed=args.seed)
        print(format_table(challenge_suite_table(suite)))
        paths = save_challenge_suite(suite, args.npz_dir)
        print(f"wrote {len(paths)} npz datasets to {args.npz_dir}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.core import WorkloadClassificationChallenge
    from repro.core.baselines import run_traditional_baseline, run_xgboost_baseline

    challenge = WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(seed=args.seed, trials_scale=args.scale),
        names=(args.dataset,),
    )
    if args.model == "xgb_cov":
        result = run_xgboost_baseline(challenge, args.dataset, cv=args.cv)
        print("top-5 features by gain importance:")
        for name, value in result["feature_importance"][:5]:
            print(f"  {value:6.3f}  {name}")
    else:
        result = run_traditional_baseline(
            challenge, args.model, args.dataset, cv=args.cv,
            rf_trees=(50, 100),
        )
        print(f"best params: {result['best_params']}")
    print(f"{args.model} on {args.dataset}: "
          f"test accuracy {result['test_accuracy']:.2%} "
          f"(cv {result['cv_accuracy']:.2%}, "
          f"fit {result['fit_seconds']:.0f}s)")
    return 0


def _cmd_efficiency(args) -> int:
    from repro.analysis import job_type_efficiency
    from repro.data import build_labelled_dataset
    from repro.data.stats import format_table

    labelled = build_labelled_dataset(
        SimulationConfig(seed=args.seed, trials_scale=args.scale)
    )
    reports = job_type_efficiency(labelled)
    print(format_table([r.row() for r in reports]))
    worst = reports[-1]
    print(f"\nleast efficient job type: {worst.class_name} "
          f"({worst.util_per_watt:.3f} util%/W) — the kind of finding the "
          "paper suggests operators could act on.")
    return 0


def _cmd_serve_bench(args) -> int:
    import tempfile
    import time

    from repro.data import build_challenge_suite
    from repro.data.labelled import build_labelled_dataset
    from repro.models import make_rf_cov
    from repro.serve import (
        FleetLoadGenerator,
        InferenceServer,
        ModelRegistry,
        ServeConfig,
    )

    # 1. Offline: simulate a release and fit the paper's best traditional
    #    baseline on one challenge dataset.
    sim = SimulationConfig(seed=args.seed, trials_scale=args.scale)
    labelled = build_labelled_dataset(sim)
    suite = build_challenge_suite(labelled, seed=args.seed,
                                  names=("60-random-1",))
    ds = suite["60-random-1"]
    model = make_rf_cov(n_estimators=args.trees, random_state=0)
    tic = time.perf_counter()
    model.fit(ds.X_train, ds.y_train)
    print(f"fitted rf_cov({args.trees} trees) on {ds.n_train} windows "
          f"in {time.perf_counter() - tic:.1f}s")

    # 2. Publish + fetch through the registry (round-trips via disk).
    registry_dir = args.registry_dir or tempfile.mkdtemp(prefix="repro-registry-")
    registry = ModelRegistry(registry_dir)
    version = registry.register("rf_cov", model)
    served_model = registry.get("rf_cov")
    print(f"registered rf_cov v{version} in {registry_dir}")

    # 3. Replay a simulated fleet through the micro-batching server.
    window = ds.n_samples
    eligible = labelled.eligible(window)
    gen = FleetLoadGenerator(
        [t.series for t in eligible.trials],
        [t.label for t in eligible.trials],
        n_jobs=args.jobs,
        samples_per_tick=args.rate,
        max_samples_per_job=args.max_samples,
        seed=args.seed,
    )
    server = InferenceServer(
        served_model,
        ServeConfig(
            window=window,
            max_batch=args.max_batch,
            flush_deadline_s=args.deadline_s,
            queue_capacity=args.queue,
            admission=args.policy,
        ),
        clock=gen.clock,
    )
    report = gen.run(server)

    shed = server.metrics.counter("ingress.shed").value
    rejected = server.metrics.counter("ingress.rejected").value
    latency = server.metrics.histogram("latency.window_s").summary()
    print(f"\nfleet: {args.jobs} jobs, {report.n_ticks} ticks "
          f"({report.sim_seconds:.0f}s simulated), "
          f"{report.n_predictions} windows classified")
    print(f"throughput: {report.windows_per_second:,.0f} windows/s "
          f"({report.wall_seconds:.2f}s wall)")
    if latency.get("count"):
        print(f"latency (simulated): p50={latency['p50']:.1f}s "
              f"p95={latency['p95']:.1f}s p99={latency['p99']:.1f}s")
    print(f"predict calls: {server.batcher.n_predict_calls} batched vs "
          f"{server.batcher.n_windows} per-session "
          f"({server.batcher.n_windows / max(1, server.batcher.n_predict_calls):.1f}"
          " windows/call)")
    print(f"shed: {shed} chunks, rejected: {rejected} chunks")
    print(f"fleet smoothed-label accuracy: {report.smoothed_accuracy():.2%}")
    print("\nmetrics\n-------")
    print(server.metrics.report())
    return 0


def _cmd_monitor_bench(args) -> int:
    from repro.monitor import MonitorBenchConfig, run_monitor_bench

    config = MonitorBenchConfig(
        seed=args.seed,
        scale=args.scale,
        trees=args.trees,
        challenger=args.challenger,
        registry_dir=args.registry_dir,
        n_jobs=args.jobs,
        max_samples_per_job=args.max_samples,
        drift_start=args.drift_start,
        drift_ramp=args.drift_ramp,
        drift_gain=args.drift_gain,
        drift_offset=args.drift_offset,
        class_shift_fraction=args.class_shift,
        canary_fraction=args.canary_fraction,
        store_dir=args.store_dir,
    )
    report = run_monitor_bench(config)
    print(f"trained champion + {args.challenger} challenger "
          f"({args.trees} trees) in {report.fit_seconds:.1f}s; "
          f"registry v{report.champion_version} active at start\n")
    print(report.format())
    # Sanity line for scripts/CI: the expected terminal decision.
    expected = "promoted" if args.challenger == "good" else "rolled_back"
    verdict = "as expected" if report.state == expected else (
        f"UNEXPECTED (wanted {expected})")
    print(f"\nrollout verdict: {report.state} — {verdict}")
    return 0 if report.state == expected else 1


def _cmd_resilience_bench(args) -> int:
    from repro.resilience.bench import ResilienceBenchConfig, run_resilience_bench

    config = ResilienceBenchConfig(
        seed=args.seed,
        scale=args.scale,
        hidden_size=args.hidden,
        time_stride=args.time_stride,
        max_epochs=args.epochs,
        patience=args.epochs,
        mtbf_epochs=args.mtbf_epochs,
        workdir=args.workdir,
    )
    report = run_resilience_bench(config)
    print(report.format())
    print(f"\n({report.fit_seconds:.1f}s total)")
    verdict = "ok" if report.ok else "VIOLATED"
    print(f"resilience verdict: {verdict}")
    return 0 if report.ok else 1


def _cmd_perf_bench(args) -> int:
    from pathlib import Path

    from repro.perf import ParityError, run_perf_suite, write_bench_json

    try:
        groups = run_perf_suite(
            scale=args.scale, warmup=args.warmup, repeats=args.repeats,
            n_jobs=args.n_jobs, seed=args.seed,
        )
    except ParityError as exc:
        print(f"PARITY FAILURE: {exc}", file=sys.stderr)
        return 1
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for stem, results in groups.items():
        path = write_bench_json(out_dir / f"BENCH_{stem}.json", results)
        print(f"# {path}")
        for result in results:
            print(f"  {result}")

    def _p50(name: str) -> float:
        for results in groups.values():
            for r in results:
                if r.bench == name:
                    return r.p50_s
        raise KeyError(name)

    print("\nspeedups (slow p50 / fast p50):")
    for label, slow, fast in (
        ("forest predict", "forest.predict.slow", "forest.predict.flat"),
        ("boosting margins", "boosting.margins.slow", "boosting.margins.flat"),
        ("lstm predict", "lstm.predict.grad", "lstm.predict.nograd"),
        ("batch assembly", "serve.batch.stack", "serve.batch.scratch"),
        ("datagen", "datagen.serial", f"datagen.parallel.j{args.n_jobs}"),
    ):
        try:
            print(f"  {label:<18s} {_p50(slow) / _p50(fast):6.2f}x")
        except KeyError:
            pass
    print("parity: all fast paths bit-identical to slow references")
    return 0


def _cmd_train_bench(args) -> int:
    from repro.perf import ParityError, run_train_bench, write_bench_json

    try:
        results, failures, checked = run_train_bench(
            scale=args.scale, warmup=args.warmup, repeats=args.repeats,
            n_jobs=args.n_jobs, seed=args.seed,
        )
    except ParityError as exc:
        print(f"PARITY FAILURE: {exc}", file=sys.stderr)
        return 1
    print(f"parity: {len(checked)} gates bit-identical "
          f"({', '.join(checked)})")
    path = write_bench_json(args.out, results)
    print(f"# {path}")
    for result in results:
        print(f"  {result}")
    if failures:
        for msg in failures:
            print(f"THROUGHPUT GATE FAILED: {msg}", file=sys.stderr)
        return 1
    if args.scale >= 1.0:
        print("throughput: all gates met")
    return 0


def _cmd_store_bench(args) -> int:
    from repro.perf import ParityError, write_bench_json
    from repro.store.bench import StoreBenchConfig, run_store_bench

    if args.quick:
        config = StoreBenchConfig(
            seed=args.seed, scale=min(args.scale, 0.01),
            shard_counts=(1, 2), rates=(1.0, 4.0), repeats=2,
        )
    else:
        config = StoreBenchConfig(
            seed=args.seed, scale=args.scale,
            shard_counts=tuple(args.shards), rates=tuple(args.rates),
            repeats=args.repeats,
        )
    try:
        results = run_store_bench(config)
    except ParityError as exc:
        print(f"STORE GATE FAILURE: {exc}", file=sys.stderr)
        return 1
    path = write_bench_json(args.out, results)
    print(f"# {path}")
    for result in results:
        print(f"  {result}")
    print("gates: ingest/readback bit-parity at shards "
          f"{list(config.shard_counts)}, replay determinism at rates "
          f"{list(config.rates)}, SIGKILL recovery at store.wal.append / "
          "store.segment.finalize / store.manifest.swap, replay RSS, "
          "compaction feature parity — all passed")
    return 0


def _cmd_fleet_bench(args) -> int:
    from repro.fleet.bench import FleetBenchConfig, run_fleet_bench
    from repro.perf import write_bench_json

    if args.quick:
        config = FleetBenchConfig.quick(
            seed=args.seed, kill_tick=min(args.kill_tick, 6),
        )
    else:
        config = FleetBenchConfig(
            seed=args.seed,
            scale=args.scale,
            trees=args.trees,
            n_jobs=args.jobs,
            worker_counts=tuple(args.workers),
            capacity_per_step=args.capacity,
            kill_tick=args.kill_tick,
        )
    report = run_fleet_bench(config)
    if report.fit_seconds:
        print(f"trained rf_cov({config.trees} trees) parity model in "
              f"{report.fit_seconds:.1f}s\n")
    print(report.format())
    path = write_bench_json(args.out, report.results)
    print(f"\n# {path}")
    for result in report.results:
        print(f"  {result}")
    verdict = "ok" if report.ok else "VIOLATED"
    print(f"fleet verdict: {verdict} ({report.wall_seconds:.1f}s)")
    return 0 if report.ok else 1


def _cmd_trace_bench(args) -> int:
    from repro.perf import write_bench_json
    from repro.trace.bench import TraceBenchConfig, run_trace_bench

    overrides = dict(
        seed=args.seed,
        parity_workers=args.workers,
        sample=args.sample,
        max_overhead=args.max_overhead,
    )
    if args.jobs is not None:
        overrides["n_jobs"] = args.jobs
    if args.quick:
        config = TraceBenchConfig.quick(
            **overrides, kill_tick=min(args.kill_tick, 3),
        )
    else:
        config = TraceBenchConfig(**overrides, kill_tick=args.kill_tick)
    report = run_trace_bench(config)
    print(report.format())
    if report.example_trace:
        print("\nthe killed request's trace:")
        print(report.example_trace)
    path = write_bench_json(args.out, report.results)
    print(f"\n# {path}")
    for result in report.results:
        print(f"  {result}")
    verdict = "ok" if report.ok else "VIOLATED"
    print(f"trace verdict: {verdict} ({report.wall_seconds:.1f}s)")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "evaluate": _cmd_evaluate,
        "efficiency": _cmd_efficiency,
        "serve-bench": _cmd_serve_bench,
        "monitor-bench": _cmd_monitor_bench,
        "resilience-bench": _cmd_resilience_bench,
        "perf-bench": _cmd_perf_bench,
        "train-bench": _cmd_train_bench,
        "store-bench": _cmd_store_bench,
        "fleet-bench": _cmd_fleet_bench,
        "trace-bench": _cmd_trace_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
