"""Command-line interface.

Three subcommands cover the common workflows end to end::

    python -m repro simulate  --scale 0.05 --npz-dir release/ --csv-dir logs/
    python -m repro evaluate  --model rf_cov --dataset 60-middle-1 --scale 0.05
    python -m repro efficiency --scale 0.02

All commands are deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from repro.simcluster.cluster import SimulationConfig

__all__ = ["main", "build_parser"]

_MODEL_CHOICES = ("svm_pca", "svm_cov", "rf_pca", "rf_cov", "xgb_cov")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIT Supercloud Workload Classification Challenge "
                    "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=2022,
                       help="simulation seed (default 2022)")
        p.add_argument("--scale", type=float, default=0.03,
                       help="trials_scale: fraction of the paper's per-class "
                            "job counts (1.0 = full 3,430-job release)")

    p_sim = sub.add_parser("simulate", help="generate a labelled release")
    add_common(p_sim)
    p_sim.add_argument("--npz-dir", help="write the seven challenge datasets "
                                         "as npz archives here")
    p_sim.add_argument("--csv-dir", help="export scheduler log + telemetry "
                                         "CSVs here")

    p_eval = sub.add_parser("evaluate", help="train and test one baseline")
    add_common(p_eval)
    p_eval.add_argument("--model", choices=_MODEL_CHOICES, default="rf_cov")
    p_eval.add_argument("--dataset", default="60-middle-1")
    p_eval.add_argument("--cv", type=int, default=3,
                        help="grid-search folds (paper: 10)")

    p_eff = sub.add_parser("efficiency",
                           help="per-job-type power-efficiency analysis "
                                "(Section IV-B's suggestion)")
    add_common(p_eff)
    return parser


def _cmd_simulate(args) -> int:
    from repro.data import build_challenge_suite, challenge_suite_table, save_challenge_suite
    from repro.data.labelled import trials_from_jobs
    from repro.data.stats import family_totals, format_table
    from repro.simcluster import ClusterSimulator
    from repro.simcluster.export import export_release

    from repro.simcluster.nodestate import snapshot_cluster

    config = SimulationConfig(seed=args.seed, trials_scale=args.scale)
    jobs, log = ClusterSimulator(config).generate()
    labelled = trials_from_jobs(jobs)
    print(f"simulated {len(jobs)} jobs -> {len(labelled)} labelled GPU series")
    print("family totals:", family_totals(labelled))
    state = snapshot_cluster(list(log), n_nodes=224, dt_s=600.0)
    print(f"cluster view: peak {state.peak_concurrency()} GPUs in use "
          f"across 224 nodes")

    if args.csv_dir:
        counts = export_release(jobs, log, args.csv_dir)
        print(f"exported CSVs to {args.csv_dir}: {counts}")
    if args.npz_dir:
        suite = build_challenge_suite(labelled, seed=args.seed)
        print(format_table(challenge_suite_table(suite)))
        paths = save_challenge_suite(suite, args.npz_dir)
        print(f"wrote {len(paths)} npz datasets to {args.npz_dir}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.core import WorkloadClassificationChallenge
    from repro.core.baselines import run_traditional_baseline, run_xgboost_baseline

    challenge = WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(seed=args.seed, trials_scale=args.scale),
        names=(args.dataset,),
    )
    if args.model == "xgb_cov":
        result = run_xgboost_baseline(challenge, args.dataset, cv=args.cv)
        print("top-5 features by gain importance:")
        for name, value in result["feature_importance"][:5]:
            print(f"  {value:6.3f}  {name}")
    else:
        result = run_traditional_baseline(
            challenge, args.model, args.dataset, cv=args.cv,
            rf_trees=(50, 100),
        )
        print(f"best params: {result['best_params']}")
    print(f"{args.model} on {args.dataset}: "
          f"test accuracy {result['test_accuracy']:.2%} "
          f"(cv {result['cv_accuracy']:.2%}, "
          f"fit {result['fit_seconds']:.0f}s)")
    return 0


def _cmd_efficiency(args) -> int:
    from repro.analysis import job_type_efficiency
    from repro.data import build_labelled_dataset
    from repro.data.stats import format_table

    labelled = build_labelled_dataset(
        SimulationConfig(seed=args.seed, trials_scale=args.scale)
    )
    reports = job_type_efficiency(labelled)
    print(format_table([r.row() for r in reports]))
    worst = reports[-1]
    print(f"\nleast efficient job type: {worst.class_name} "
          f"({worst.util_per_watt:.3f} util%/W) — the kind of finding the "
          "paper suggests operators could act on.")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "evaluate": _cmd_evaluate,
        "efficiency": _cmd_efficiency,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
