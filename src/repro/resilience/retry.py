"""Retry-with-backoff for transient load failures.

A reader can race a writer even with atomic replacement: the model file may
not exist *yet* (registry rsync in flight), or an NFS attribute cache can
briefly serve a stale view.  Those failures are transient — the correct
response is a short, bounded, deterministic backoff, not a crash and not an
unbounded spin.

:func:`retry_call` is the generic wrapper; :func:`load_model_with_retry`
is the common case pre-wired for :func:`repro.utils.persist.load_model`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, TypeVar

__all__ = ["RetryPolicy", "retry_call", "load_model_with_retry"]

R = TypeVar("R")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff.

    ``attempts`` total tries; the k-th failure (k from 0) sleeps
    ``min(base_delay_s * growth**k, max_delay_s)`` before the next try.
    Deterministic: no jitter, so tests and benches replay exactly.
    """

    attempts: int = 3
    base_delay_s: float = 0.05
    growth: float = 2.0
    max_delay_s: float = 1.0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.growth < 1.0:
            raise ValueError(f"growth must be >= 1, got {self.growth}")

    def delay(self, failure_index: int) -> float:
        """Sleep before retry number ``failure_index + 1`` (0-based)."""
        return min(self.base_delay_s * self.growth**failure_index, self.max_delay_s)


def retry_call(
    fn: Callable[[], R],
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (OSError, ValueError),
    sleep: Callable[[float], None] = time.sleep,
) -> R:
    """Call ``fn`` until it succeeds or the policy's attempts are spent.

    Only exceptions in ``retry_on`` are retried — by default ``OSError``
    (missing/locked file) and ``ValueError`` (truncated or mid-checksum
    archive, the signature of reading a file while its writer dies).  The
    last failure is re-raised unchanged when attempts run out.
    """
    policy = policy or RetryPolicy()
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on:
            if attempt == policy.attempts - 1:
                raise
            sleep(policy.delay(attempt))
    raise AssertionError("unreachable")  # pragma: no cover


def load_model_with_retry(
    path: str | Path,
    *,
    policy: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """:func:`repro.utils.persist.load_model` with transient-failure retry."""
    from repro.utils.persist import load_model

    return retry_call(
        lambda: load_model(path),
        policy=policy,
        retry_on=(FileNotFoundError, ValueError, OSError),
        sleep=sleep,
    )
