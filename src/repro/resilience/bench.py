"""The ``repro resilience-bench`` harness.

End-to-end proof that the stack survives the failures a fleet actually
sees, asserted (not eyeballed):

1. **Preempted training resumes bit-identically.**  An LSTM baseline run
   is SIGKILLed *mid-epoch* at preemption times sampled from the
   simulated cluster's failure process, restarted from its crash-safe
   checkpoint after each death, and the stitched-together history must
   match the fault-free run's history bit for bit — same losses, same
   validation accuracies, same LR trajectory, same final test accuracy.
2. **A writer killed mid-save cannot corrupt the registry.**  Children
   are SIGKILLed halfway through ``register`` and right before the
   ``ACTIVE`` pointer flip; the registry must keep serving the prior
   version with no load errors, ignore stray ``*.tmp`` files, detect a
   bit-flipped archive via its CRC32, and warn-and-recover from a
   garbled ``ACTIVE`` pointer.

Every violated invariant is reported and turns into a nonzero CLI exit.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.faults import FaultInjector, FaultSpec, install
from repro.simcluster.preemption import PreemptionProcess

__all__ = ["ResilienceBenchConfig", "ResilienceBenchReport", "run_resilience_bench"]

_CHECKPOINT_NAME = "lstm.ckpt"


@dataclass(frozen=True)
class ResilienceBenchConfig:
    """Knobs for :func:`run_resilience_bench`.

    ``mtbf_epochs`` is the mean time between preemptions measured in
    training epochs; with the default the nominal run is preempted about
    twice.  ``workdir=None`` uses a fresh temporary directory.
    """

    seed: int = 2022
    scale: float = 0.01
    dataset: str = "60-middle-1"
    hidden_size: int = 8
    time_stride: int = 8
    max_epochs: int = 5
    patience: int = 5
    batch_size: int = 32
    lr: float = 2e-3
    cycle_len: int = 4
    mtbf_epochs: float = 2.0
    workdir: str | None = None


@dataclass
class ResilienceBenchReport:
    """Outcome of one bench run; ``ok`` is the CI verdict."""

    kill_epochs: list[int] = field(default_factory=list)
    n_deaths: int = 0
    epochs_run: int = 0
    histories_match: bool = False
    baseline_accuracy: float = float("nan")
    resumed_accuracy: float = float("nan")
    accuracy_equal: bool = False
    register_kill_safe: bool = False
    active_flip_kill_safe: bool = False
    stray_tmp_ignored: bool = False
    corruption_detected: bool = False
    garbled_pointer_recovered: bool = False
    fit_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every resilience invariant held."""
        return (
            self.n_deaths >= 1
            and self.histories_match
            and self.accuracy_equal
            and self.register_kill_safe
            and self.active_flip_kill_safe
            and self.stray_tmp_ignored
            and self.corruption_detected
            and self.garbled_pointer_recovered
        )

    def format(self) -> str:
        """Human-readable pass/fail table."""
        def mark(flag: bool) -> str:
            return "PASS" if flag else "FAIL"

        lines = [
            f"preemptions injected (epochs {self.kill_epochs}): "
            f"{self.n_deaths} SIGKILLs survived",
            f"[{mark(self.histories_match)}] resumed history bit-identical "
            f"to fault-free run ({self.epochs_run} epochs)",
            f"[{mark(self.accuracy_equal)}] final test accuracy equal "
            f"(fault-free {self.baseline_accuracy:.2%}, "
            f"resumed {self.resumed_accuracy:.2%})",
            f"[{mark(self.register_kill_safe)}] register() killed mid-write: "
            "prior version still serves, no load error",
            f"[{mark(self.active_flip_kill_safe)}] set_active() killed before "
            "flip: promotion never half-applied",
            f"[{mark(self.stray_tmp_ignored)}] stray .tmp files invisible to "
            "the registry",
            f"[{mark(self.corruption_detected)}] bit-flipped archive rejected "
            "by CRC32 check",
            f"[{mark(self.garbled_pointer_recovered)}] garbled ACTIVE pointer: "
            "warned and fell back to latest",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# child workers (module-level: must be picklable for the spawn context)

def _build_trainer(payload: dict):
    """Reconstruct the bench trainer exactly (same seeds every process)."""
    from repro.models import LSTMClassifier
    from repro.nn.loss import NLLLoss
    from repro.nn.optim.adam import Adam
    from repro.nn.optim.schedulers import CyclicCosineLR
    from repro.nn.training import Trainer

    model = LSTMClassifier(
        n_sensors=int(payload["n_sensors"]),
        seq_len=int(payload["seq_len"]),
        n_classes=int(payload["n_classes"]),
        hidden_size=int(payload["hidden_size"]),
        seed=int(payload["seed"]),
    )
    optimizer = Adam(model.parameters(), lr=float(payload["lr"]))
    scheduler = CyclicCosineLR(optimizer, cycle_len=int(payload["cycle_len"]))
    return Trainer(
        model,
        optimizer,
        NLLLoss(),
        scheduler=scheduler,
        batch_size=int(payload["batch_size"]),
        max_epochs=int(payload["max_epochs"]),
        patience=int(payload["patience"]),
        shuffle_rng=int(payload["seed"]),
    )


def _crash_training_worker(payload: dict) -> None:
    """Child: train (or resume) with a SIGKILL scheduled mid-epoch."""
    install(FaultInjector([
        FaultSpec("trainer.mid_epoch", at_hit=int(payload["kill_hit"]), mode="kill")
    ]))
    trainer = _build_trainer(payload)
    ckpt = payload["checkpoint_path"]
    data = (payload["X_train"], payload["y_train"],
            payload["X_val"], payload["y_val"])
    if payload["resume"]:
        trainer.resume(ckpt, *data)
    else:
        trainer.fit(*data, checkpoint_path=ckpt)
    raise SystemExit("worker was supposed to die before finishing")


def _crash_registry_worker(payload: dict) -> None:
    """Child: run one registry write with a SIGKILL scheduled inside it."""
    from repro.serve.registry import ModelRegistry

    install(FaultInjector([FaultSpec(payload["point"], mode="kill")]))
    registry = ModelRegistry(payload["root"])
    if payload["op"] == "register":
        registry.register(
            payload["name"], payload["model"], version=int(payload["version"])
        )
    else:
        registry.set_active(payload["name"], int(payload["version"]))
    raise SystemExit("worker was supposed to die before finishing")


def _run_to_sigkill(worker, payload: dict, *, timeout_s: float = 300.0) -> bool:
    """Run ``worker(payload)`` in a child; True iff it died by SIGKILL."""
    ctx = multiprocessing.get_context("spawn")
    proc = ctx.Process(target=worker, args=(payload,))
    proc.start()
    proc.join(timeout_s)
    if proc.is_alive():  # pragma: no cover - hang safety net
        proc.kill()
        proc.join()
        return False
    return proc.exitcode == -signal.SIGKILL


# ----------------------------------------------------------------------

def _bench_data(config: ResilienceBenchConfig):
    """Standardized, time-strided arrays for the bench's LSTM run."""
    from repro.core import WorkloadClassificationChallenge
    from repro.ml.preprocessing import TimeSeriesStandardScaler
    from repro.simcluster.cluster import SimulationConfig

    challenge = WorkloadClassificationChallenge.from_simulation(
        SimulationConfig(
            seed=config.seed,
            trials_scale=config.scale,
            min_jobs_per_class=3,
            startup_mean_s=28.0,
        ),
        names=(config.dataset,),
    )
    ds = challenge.dataset(config.dataset)
    scaler = TimeSeriesStandardScaler()
    X_train = scaler.fit_transform(ds.X_train).astype(np.float32)
    X_test = scaler.transform(ds.X_test).astype(np.float32)
    if config.time_stride > 1:
        X_train = np.ascontiguousarray(X_train[:, :: config.time_stride])
        X_test = np.ascontiguousarray(X_test[:, :: config.time_stride])
    n_classes = int(max(ds.y_train.max(), ds.y_test.max())) + 1
    return X_train, ds.y_train, X_test, ds.y_test, n_classes


def _training_scenario(config: ResilienceBenchConfig, workdir: Path,
                       report: ResilienceBenchReport) -> None:
    """Kill training at sampled preemptions; resume; compare histories."""
    from repro.nn.training import load_checkpoint

    X_train, y_train, X_val, y_val, n_classes = _bench_data(config)
    payload = {
        "n_sensors": X_train.shape[2],
        "seq_len": X_train.shape[1],
        "n_classes": n_classes,
        "hidden_size": config.hidden_size,
        "seed": config.seed,
        "lr": config.lr,
        "cycle_len": config.cycle_len,
        "batch_size": config.batch_size,
        "max_epochs": config.max_epochs,
        "patience": config.patience,
        "X_train": X_train, "y_train": y_train,
        "X_val": X_val, "y_val": y_val,
    }

    # Fault-free twin.
    baseline = _build_trainer(payload)
    history_free = baseline.fit(X_train, y_train, X_val, y_val)
    report.baseline_accuracy = baseline.evaluate_accuracy(X_val, y_val)

    # Preemption schedule from the simulated cluster's failure process.
    process = PreemptionProcess(
        config.mtbf_epochs, seed=config.seed, job="resilience-bench"
    )
    kill_epochs = [
        e for e in process.kill_epochs(config.max_epochs, epoch_s=1.0)
        if e <= len(history_free.epochs)
    ]
    if not kill_epochs:  # guarantee at least one injected preemption
        kill_epochs = [max(1, len(history_free.epochs) // 2)]
    report.kill_epochs = kill_epochs

    ckpt = workdir / _CHECKPOINT_NAME
    n = X_train.shape[0]
    n_batches = -(-n // config.batch_size)
    mid_batch = n_batches // 2 + 1

    for kill_epoch in kill_epochs:
        resume = ckpt.is_file()
        start_epoch = load_checkpoint(ckpt).epoch if resume else 0
        if kill_epoch <= start_epoch:  # already past this preemption
            continue
        child = dict(payload)
        child.update({
            "checkpoint_path": str(ckpt),
            "resume": resume,
            "kill_hit": (kill_epoch - start_epoch - 1) * n_batches + mid_batch,
        })
        if _run_to_sigkill(_crash_training_worker, child):
            report.n_deaths += 1

    # Final incarnation finishes in-process.
    survivor = _build_trainer(payload)
    if ckpt.is_file():
        history = survivor.resume(ckpt, X_train, y_train, X_val, y_val)
    else:  # every kill hit epoch 1 before the first checkpoint
        history = survivor.fit(
            X_train, y_train, X_val, y_val, checkpoint_path=ckpt
        )
    report.epochs_run = len(history.epochs)
    report.histories_match = history_free.matches(history)
    report.resumed_accuracy = survivor.evaluate_accuracy(X_val, y_val)
    report.accuracy_equal = (
        report.baseline_accuracy == report.resumed_accuracy
    )


@dataclass
class _StubModel:
    """Tiny picklable stand-in for a fitted pipeline in registry tests."""

    version: int
    blob: bytes = b""


def _registry_scenario(workdir: Path, report: ResilienceBenchReport) -> None:
    """Kill registry writers mid-save; verify the prior version survives."""
    from repro.serve.registry import ModelRegistry
    from repro.utils.persist import load_model, save_model

    root = workdir / "registry"
    registry = ModelRegistry(root)
    registry.register("clf", _StubModel(1, b"x" * 4096), version=1)
    registry.set_active("clf", 1)

    # (a) writer SIGKILLed halfway through pickling version 2.
    died = _run_to_sigkill(_crash_registry_worker, {
        "root": str(root), "op": "register", "name": "clf", "version": 2,
        "point": "persist.mid_write",
        "model": _StubModel(2, b"y" * 4096),
    })
    fresh = ModelRegistry(root)  # what a restarted server sees
    try:
        served = fresh.get_active("clf")
        report.register_kill_safe = (
            died and fresh.versions("clf") == [1] and served.version == 1
        )
    except (ValueError, KeyError):
        report.register_kill_safe = False
    report.stray_tmp_ignored = (
        any(p.suffix == ".tmp" for p in (root / "clf").iterdir())
        and fresh.versions("clf") == [1]
    )

    # (b) version 2 lands, but the promoter dies right before the flip.
    registry.register("clf", _StubModel(2, b"y" * 4096), version=2)
    died = _run_to_sigkill(_crash_registry_worker, {
        "root": str(root), "op": "set_active", "name": "clf", "version": 2,
        "point": "registry.before_active_flip",
    })
    fresh = ModelRegistry(root)
    report.active_flip_kill_safe = (
        died
        and fresh.active_version("clf") == 1
        and fresh.get_active("clf").version == 1
    )

    # (c) silent corruption: flip one payload byte, CRC must catch it.
    victim = workdir / "corrupt.pkl"
    save_model(_StubModel(9, b"z" * 4096), victim)
    raw = bytearray(victim.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    victim.write_bytes(bytes(raw))
    try:
        load_model(victim)
        report.corruption_detected = False
    except ValueError:
        report.corruption_detected = True

    # (d) garbled ACTIVE pointer: warn, fall back to latest, keep serving.
    (root / "clf" / "ACTIVE").write_text("###garbage###\n")
    fresh = ModelRegistry(root)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        version = fresh.active_version("clf")
    report.garbled_pointer_recovered = (
        version == 2
        and any("garbled" in str(w.message) for w in caught)
        and fresh.get_active("clf").version == 2
    )


def run_resilience_bench(
    config: ResilienceBenchConfig | None = None,
) -> ResilienceBenchReport:
    """Run both scenarios; see :class:`ResilienceBenchReport` for verdicts."""
    import tempfile

    config = config or ResilienceBenchConfig()
    workdir = Path(
        config.workdir or tempfile.mkdtemp(prefix="repro-resilience-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    report = ResilienceBenchReport()
    tic = time.perf_counter()
    _training_scenario(config, workdir, report)
    _registry_scenario(workdir, report)
    report.fit_seconds = time.perf_counter() - tic
    return report
