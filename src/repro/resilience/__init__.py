"""Crash-safety toolkit: fault injection, retries, and the resilience bench.

At fleet scale the dominant operational cost is not steady-state compute
but preemptions, node failures and the corrupt state they leave behind
(Kokolis et al., "Revisiting Reliability in Large-Scale ML Research
Clusters").  This package holds the machinery for *proving* the repo
survives them:

* :mod:`repro.resilience.faults` — named fault points + deterministic
  injector (SIGKILL or raise, on the N-th hit) wired into the durable
  write path and the training loop.
* :mod:`repro.resilience.retry` — bounded exponential backoff for
  transient load failures.
* :mod:`repro.resilience.bench` — the ``repro resilience-bench`` runner:
  kills training at a simcluster-sampled preemption, resumes from the
  checkpoint, and asserts bit-identical history; kills registry writers
  mid-save and asserts the previous version still serves.

The crash-safe primitives themselves live where their callers are:
atomic replace + CRC32 checksums in :mod:`repro.utils.persist`,
checkpoint/resume in :mod:`repro.nn.training.checkpoint`.
(:mod:`repro.resilience.bench` is imported lazily by the CLI — importing
this package does not pull in the nn/data stack.)
"""

from repro.resilience.faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    fault_point,
    inject,
    install,
    uninstall,
)
from repro.resilience.retry import RetryPolicy, load_model_with_retry, retry_call

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
    "inject",
    "install",
    "uninstall",
    "RetryPolicy",
    "retry_call",
    "load_model_with_retry",
]
