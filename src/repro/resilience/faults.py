"""Deterministic fault injection for crash-safety testing.

Crash-safety claims ("a kill mid-write cannot corrupt the registry",
"resume reproduces the uninterrupted history") are only credible when the
crash actually happens at the bad moment.  This module provides *named
fault points* — no-op markers compiled into the durable-write and training
code paths — and an injector that trips a configured point on its N-th
hit, either by raising :class:`InjectedFault` (for in-process tests of
error handling) or by sending ``SIGKILL`` to the current process (for
subprocess tests of abrupt preemption: no ``atexit``, no ``finally``, no
flushing — exactly what a cluster preemption or OOM kill looks like).

Instrumented points (grep for ``fault_point(`` to audit):

==============================  =================================================
``persist.mid_write``           half the payload bytes written to the tmp file
``persist.before_replace``      tmp file durable, before ``os.replace``
``persist.after_replace``       destination replaced, before directory fsync
``registry.before_active_flip`` version registered, before the ACTIVE pointer flips
``trainer.mid_epoch``           once per mini-batch, before the optimizer step
``trainer.epoch_end``           epoch finished, checkpoint (if any) durable
``store.wal.append``            half of one WAL record's bytes written
``store.segment.finalize``      segment data durable in tmp, before the rename
``store.manifest.swap``         segments finalized, before the manifest replace
``fleet.worker.crash``          top of a fleet worker's step, before any work
``train.worker.crash``          top of a gradient worker's shard, before any work
``fleet.heartbeat.drop``        a worker's heartbeat, dropped in transit
``trace.sink.flush``            half of a trace WAL batch's bytes written
==============================  =================================================

Injection is process-local and off by default; ``fault_point`` is a single
``is None`` check when no injector is installed, so production paths pay
nothing.

Usage::

    with inject(FaultSpec("persist.mid_write", mode="raise")):
        save_model(model, path)        # raises InjectedFault mid-write

    # In a sacrificial child process:
    install(FaultInjector([FaultSpec("trainer.epoch_end", at_hit=3)]))
    trainer.fit(...)                   # SIGKILLed at the end of epoch 3
"""

from __future__ import annotations

import contextlib
import os
import signal
from dataclasses import dataclass, field

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
    "inject",
    "install",
    "uninstall",
]

#: Every fault point compiled into the codebase, for spec validation.
FAULT_POINTS = frozenset({
    "persist.mid_write",
    "persist.before_replace",
    "persist.after_replace",
    "registry.before_active_flip",
    "trainer.mid_epoch",
    "trainer.epoch_end",
    "store.wal.append",
    "store.segment.finalize",
    "store.manifest.swap",
    "fleet.worker.crash",
    "fleet.heartbeat.drop",
    "train.worker.crash",
    "trace.sink.flush",
})


class InjectedFault(RuntimeError):
    """Raised by a tripped fault point in ``mode="raise"``."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: trip ``point`` on its ``at_hit``-th execution.

    Parameters
    ----------
    point:
        A name from :data:`FAULT_POINTS`.
    at_hit:
        1-based hit count at which the fault fires (``at_hit=3`` lets the
        point pass twice, then fires).
    mode:
        ``"kill"`` sends ``SIGKILL`` to the current process (abrupt death,
        use in a sacrificial subprocess); ``"raise"`` raises
        :class:`InjectedFault` (unwinds like a transient error).
    """

    point: str
    at_hit: int = 1
    mode: str = "kill"

    def __post_init__(self):
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"known: {sorted(FAULT_POINTS)}"
            )
        if self.at_hit < 1:
            raise ValueError(f"at_hit must be >= 1, got {self.at_hit}")
        if self.mode not in ("kill", "raise"):
            raise ValueError(f"mode must be 'kill' or 'raise', got {self.mode!r}")


@dataclass
class FaultInjector:
    """Counts fault-point hits and fires matching :class:`FaultSpec` s.

    Each spec fires at most once; hit counts are kept per point name so
    several specs can target different occurrences of the same point.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    hits: dict[str, int] = field(default_factory=dict)
    fired: list[FaultSpec] = field(default_factory=list)

    def trip(self, point: str) -> None:
        """Record one hit of ``point``; fire any spec scheduled for it."""
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        for spec in self.specs:
            if spec.point == point and spec.at_hit == count and spec not in self.fired:
                self.fired.append(spec)
                if spec.mode == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                raise InjectedFault(f"injected fault at {point} (hit {count})")


_ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` as this process's active injector."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the active injector (fault points become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def inject(*specs: FaultSpec):
    """Context manager installing a fresh injector for the given specs."""
    injector = install(FaultInjector(list(specs)))
    try:
        yield injector
    finally:
        uninstall()


def fault_point(name: str) -> None:
    """Mark a crash-relevant point in the calling code path.

    A no-op (one ``is None`` test) unless an injector is installed in this
    process.
    """
    if _ACTIVE is not None:
        _ACTIVE.trip(name)
