"""Tests for repro.utils.timer and repro.utils.arrayio."""

import numpy as np
import pytest

from repro.utils.arrayio import CHALLENGE_KEYS, load_npz_dataset, save_npz_dataset
from repro.utils.timer import Timer, format_duration


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (5e-7, "0.5us"),
            (0.0123, "12.3ms"),
            (3.5, "3.50s"),
            (125.0, "2m05.0s"),
        ],
    )
    def test_units(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestTimer:
    def test_context_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed > 0

    def test_laps_accumulate(self):
        t = Timer()
        with t.lap("a"):
            pass
        with t.lap("a"):
            pass
        with t.lap("b"):
            pass
        assert set(t.laps) == {"a", "b"}
        assert t.total() >= t.laps["a"]

    def test_report_contains_laps(self):
        t = Timer()
        with t.lap("stage1"):
            pass
        assert "stage1" in t.report()


def _toy_arrays(n_train=6, n_test=3, t=10, s=4):
    rng = np.random.default_rng(0)
    return dict(
        X_train=rng.normal(size=(n_train, t, s)).astype(np.float32),
        y_train=rng.integers(0, 3, size=n_train),
        model_train=np.array([f"m{i % 3}" for i in range(n_train)]),
        X_test=rng.normal(size=(n_test, t, s)).astype(np.float32),
        y_test=rng.integers(0, 3, size=n_test),
        model_test=np.array([f"m{i % 3}" for i in range(n_test)]),
    )


class TestNpzIO:
    def test_round_trip(self, tmp_path):
        arrays = _toy_arrays()
        path = save_npz_dataset(tmp_path / "ds.npz", **arrays)
        loaded = load_npz_dataset(path)
        assert set(loaded) == set(CHALLENGE_KEYS)
        np.testing.assert_array_equal(loaded["X_train"], arrays["X_train"])
        np.testing.assert_array_equal(loaded["model_test"], arrays["model_test"])

    def test_creates_parent_dirs(self, tmp_path):
        path = save_npz_dataset(tmp_path / "deep" / "dir" / "ds.npz", **_toy_arrays())
        assert path.exists()

    def test_rejects_2d_X(self, tmp_path):
        arrays = _toy_arrays()
        arrays["X_train"] = arrays["X_train"].reshape(6, -1)
        with pytest.raises(ValueError, match="3-D"):
            save_npz_dataset(tmp_path / "bad.npz", **arrays)

    def test_rejects_count_mismatch(self, tmp_path):
        arrays = _toy_arrays()
        arrays["y_train"] = arrays["y_train"][:-1]
        with pytest.raises(ValueError, match="inconsistent"):
            save_npz_dataset(tmp_path / "bad.npz", **arrays)

    def test_rejects_window_mismatch(self, tmp_path):
        arrays = _toy_arrays()
        arrays["X_test"] = arrays["X_test"][:, :5, :]
        with pytest.raises(ValueError, match="window shapes"):
            save_npz_dataset(tmp_path / "bad.npz", **arrays)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_npz_dataset(tmp_path / "nope.npz")

    def test_load_missing_keys(self, tmp_path):
        np.savez(tmp_path / "partial.npz", X_train=np.ones((1, 2, 3)))
        with pytest.raises(KeyError, match="missing challenge keys"):
            load_npz_dataset(tmp_path / "partial.npz")
