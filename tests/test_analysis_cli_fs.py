"""Tests for the analysis module, the filesystem-log model, and the CLI."""

import numpy as np
import pytest

from repro.analysis import family_confusion, hardest_pairs, job_type_efficiency
from repro.analysis.confusion import within_family_error_fraction
from repro.cli import build_parser, main
from repro.simcluster.architectures import class_index, get_architecture
from repro.simcluster.filesystem import FS_COUNTER_NAMES, FsModel
from repro.simcluster.phases import build_phase_schedule
from repro.simcluster.signatures import signature_for


class TestEfficiencyAnalysis:
    def test_reports_cover_classes(self, labelled_tiny):
        reports = job_type_efficiency(labelled_tiny)
        assert 1 <= len(reports) <= 26
        names = {r.class_name for r in reports}
        assert "VGG11" in names

    def test_sorted_by_efficiency(self, labelled_tiny):
        reports = job_type_efficiency(labelled_tiny)
        ratios = [r.util_per_watt for r in reports]
        assert ratios == sorted(ratios, reverse=True)

    def test_physical_plausibility(self, labelled_tiny):
        for r in job_type_efficiency(labelled_tiny):
            assert 0 < r.mean_util_pct <= 100
            assert 0 < r.mean_power_w <= 350
            assert r.energy_kj_per_trial > 0

    def test_nlp_more_efficient_than_gnn(self, labelled_tiny):
        """Dense NLP workloads convert power to utilization better than
        sparse GNNs in our signature model."""
        reports = {r.class_name: r for r in job_type_efficiency(labelled_tiny)}
        if "Bert" in reports and "NNConv" in reports:
            assert reports["Bert"].util_per_watt > reports["NNConv"].util_per_watt

    def test_empty_rejected(self):
        from repro.data.dataset import LabelledDataset

        with pytest.raises(ValueError):
            job_type_efficiency(LabelledDataset([]))


class TestConfusionAnalysis:
    def test_family_confusion_shape(self):
        y = np.array([class_index("VGG11"), class_index("VGG16"),
                      class_index("Bert")])
        p = np.array([class_index("VGG16"), class_index("VGG16"),
                      class_index("NNConv")])
        C, families = family_confusion(y, p)
        assert C.shape == (6, 6)
        assert C.sum() == 3
        # VGG→VGG twice, NLP→GNN once.
        assert C[families.index("VGG"), families.index("VGG")] == 2
        assert C[families.index("NLP"), families.index("GNN")] == 1

    def test_within_family_fraction(self):
        vgg11, vgg16 = class_index("VGG11"), class_index("VGG16")
        bert = class_index("Bert")
        y = np.array([vgg11, vgg11, bert])
        p = np.array([vgg16, vgg11, vgg11])
        # Two errors: one within-family (VGG11→VGG16), one across.
        assert within_family_error_fraction(y, p) == pytest.approx(0.5)

    def test_no_errors_nan(self):
        y = np.array([0, 1])
        assert np.isnan(within_family_error_fraction(y, y))

    def test_hardest_pairs(self):
        vgg11, vgg16 = class_index("VGG11"), class_index("VGG16")
        y = np.array([vgg11] * 5 + [vgg16])
        p = np.array([vgg16] * 5 + [vgg16])
        pairs = hardest_pairs(y, p, top=3)
        assert pairs[0]["true"] == "VGG11"
        assert pairs[0]["predicted"] == "VGG16"
        assert pairs[0]["count"] == 5
        assert pairs[0]["same_family"] is True

    def test_label_range_validated(self):
        with pytest.raises(ValueError):
            family_confusion(np.array([99]), np.array([0]))


class TestFsModel:
    def _counters(self, name="VGG16", seed=0, total=300.0):
        sig = signature_for(get_architecture(name))
        sched = build_phase_schedule(sig, total, np.random.default_rng(seed))
        return FsModel().generate(sig, sched, np.random.default_rng(seed))

    def test_shape(self):
        counters = self._counters()
        assert counters.data.shape[1] == len(FS_COUNTER_NAMES)
        assert counters.n_samples >= 2

    def test_counters_monotone(self):
        counters = self._counters(seed=3)
        assert np.all(np.diff(counters.data, axis=0) >= -1e-9)

    def test_closes_never_exceed_opens(self):
        counters = self._counters(seed=4)
        opens = counters.data[:, FS_COUNTER_NAMES.index("open_ops")]
        closes = counters.data[:, FS_COUNTER_NAMES.index("close_ops")]
        assert np.all(closes <= opens + 1e-9)

    def test_reads_dominate_writes_for_training(self):
        """Input pipelines read far more than they checkpoint-write."""
        counters = self._counters("Bert", seed=5, total=400.0)
        read = counters.data[-1, FS_COUNTER_NAMES.index("read_bytes")]
        write = counters.data[-1, FS_COUNTER_NAMES.index("write_bytes")]
        assert read > write

    def test_rates_view(self):
        counters = self._counters(seed=6)
        rates = counters.rates()
        assert rates.shape == counters.data.shape
        np.testing.assert_allclose(rates.sum(axis=0), counters.data[-1],
                                   rtol=1e-9)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            FsModel(dt_s=0.0)

    def test_cluster_integration(self):
        """generate_fs=True attaches counters to every simulated job and
        the exporter writes them."""
        from repro.simcluster.cluster import ClusterSimulator, SimulationConfig
        from repro.simcluster.export import export_release
        import tempfile
        from pathlib import Path

        cfg = SimulationConfig(seed=3, trials_scale=0.002,
                               min_jobs_per_class=1, generate_fs=True,
                               duration_clip_s=(150.0, 300.0))
        jobs, log = ClusterSimulator(cfg).generate()
        assert all(j.fs_counters is not None for j in jobs)
        with tempfile.TemporaryDirectory() as tmp:
            counts = export_release(jobs, log, tmp)
            assert counts["fs_series"] == len(jobs)
            assert len(list((Path(tmp) / "fsio").glob("*.csv"))) == len(jobs)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--scale", "0.01"])
        assert args.command == "simulate"
        assert args.scale == 0.01

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_round_trip(self, tmp_path, capsys):
        rc = main(["simulate", "--scale", "0.004", "--seed", "7",
                   "--csv-dir", str(tmp_path / "csv")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "labelled GPU series" in out
        assert (tmp_path / "csv" / "scheduler.csv").exists()

    def test_efficiency_command(self, capsys):
        rc = main(["efficiency", "--scale", "0.004", "--seed", "7"])
        assert rc == 0
        assert "least efficient job type" in capsys.readouterr().out

    def test_invalid_model_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--model", "mlp"])
