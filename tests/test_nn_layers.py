"""Tests for NN modules and layers: Linear, activations, Dropout, Conv1d,
MaxPool1d, LSTM/BiLSTM — each gradient-checked against finite differences."""

import numpy as np
import pytest

from repro.nn import (
    BiLSTM,
    Conv1d,
    Dropout,
    LeakyReLU,
    Linear,
    MaxPool1d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
    Tensor,
)
from repro.nn.layers.conv import conv_output_length
from repro.nn.layers.rnn import LSTM
from tests.test_nn_tensor import numerical_grad


def layer_gradcheck(layer, x_shape, seed=0, atol=3e-2):
    """Finite-difference check for a layer's input and parameter grads.

    Uses float64 data through a float32-initialized layer; parameters are
    upcast for the check.
    """
    rng = np.random.default_rng(seed)
    for p in layer.parameters():
        p.data = p.data.astype(np.float64)
    x_data = rng.normal(size=x_shape)
    x = Tensor(x_data, requires_grad=True, dtype=np.float64)
    out = layer(x)
    out.sum().backward()

    def forward():
        return float(layer(Tensor(x_data, dtype=np.float64)).data.sum())

    num_x = numerical_grad(forward, x_data)
    np.testing.assert_allclose(x.grad, num_x, atol=atol, rtol=1e-3)
    for name, p in layer.named_parameters():
        num_p = numerical_grad(forward, p.data)
        np.testing.assert_allclose(
            p.grad, num_p, atol=atol, rtol=1e-3,
            err_msg=f"parameter {name}",
        )


class TestModuleSystem:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones((2, 2)))
                self.inner = Linear(2, 3, rng=0)

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names
        assert "inner.weight" in names and "inner.bias" in names

    def test_train_eval_propagate(self):
        seq = Sequential(Linear(2, 2, rng=0), Dropout(0.5, rng=0))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_round_trip(self):
        a = Linear(3, 4, rng=0)
        b = Linear(3, 4, rng=1)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_mismatch(self):
        a = Linear(3, 4, rng=0)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.ones((3, 4))})

    def test_n_parameters(self):
        lin = Linear(3, 4, rng=0)
        assert lin.n_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        lin = Linear(2, 2, rng=0)
        out = lin(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


class TestLinear:
    def test_shapes(self):
        lin = Linear(5, 3, rng=0)
        out = lin(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_3d_input(self):
        lin = Linear(5, 3, rng=0)
        out = lin(Tensor(np.ones((2, 4, 5))))
        assert out.shape == (2, 4, 3)

    def test_no_bias(self):
        lin = Linear(4, 2, bias=False, rng=0)
        assert lin.bias is None
        assert lin.n_parameters() == 8

    def test_wrong_features(self):
        lin = Linear(4, 2, rng=0)
        with pytest.raises(ValueError, match="expected last dim 4"):
            lin(Tensor(np.ones((3, 5))))

    def test_gradcheck(self):
        layer_gradcheck(Linear(4, 3, rng=1), (5, 4))


class TestActivations:
    def test_relu_zeroes_negatives(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1)(Tensor(np.array([-10.0, 10.0])))
        np.testing.assert_allclose(out.data, [-1.0, 10.0])

    def test_tanh_range(self):
        out = Tanh()(Tensor(np.linspace(-5, 5, 20)))
        assert np.all(np.abs(out.data) <= 1.0)

    def test_negative_slope_validation(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.5)


class TestDropout:
    def test_eval_mode_identity(self):
        d = Dropout(0.5, rng=0)
        d.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_train_mode_drops_and_scales(self):
        d = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 100)))
        out = d(x).data
        dropped = np.mean(out == 0.0)
        assert 0.4 < dropped < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_p_zero_identity(self):
        d = Dropout(0.0, rng=0)
        x = Tensor(np.ones((5, 5)))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_gradient_masks_match(self):
        d = Dropout(0.5, rng=42)
        x = Tensor(np.ones((20, 20)), requires_grad=True)
        out = d(x)
        out.sum().backward()
        # Gradient is zero exactly where activations were dropped.
        np.testing.assert_array_equal(x.grad == 0.0, out.data == 0.0)


class TestConv1d:
    def test_output_length(self):
        assert conv_output_length(540, 7, 2) == 267
        assert conv_output_length(10, 3, 1) == 8
        with pytest.raises(ValueError):
            conv_output_length(2, 3, 1)

    def test_shapes(self):
        conv = Conv1d(7, 16, kernel_size=5, stride=2, rng=0)
        out = conv(Tensor(np.random.default_rng(0).normal(size=(3, 50, 7))))
        assert out.shape == (3, conv_output_length(50, 5, 2), 16)

    def test_known_convolution(self):
        """Hand-checked valid convolution with identity-ish kernel."""
        conv = Conv1d(1, 1, kernel_size=2, stride=1, bias=False, rng=0)
        conv.weight.data = np.array([[[1.0, -1.0]]], dtype=np.float32)
        x = Tensor(np.array([[[1.0], [3.0], [6.0]]]))
        out = conv(x)
        # Window [x_t, x_{t+1}] . [1, -1] = x_t - x_{t+1}
        np.testing.assert_allclose(out.data[0, :, 0], [-2.0, -3.0])

    def test_gradcheck(self):
        layer_gradcheck(Conv1d(3, 2, kernel_size=3, stride=2, rng=2), (2, 9, 3))

    def test_gradcheck_overlapping_stride(self):
        layer_gradcheck(Conv1d(2, 3, kernel_size=3, stride=1, rng=3), (2, 7, 2))

    def test_channel_mismatch(self):
        conv = Conv1d(3, 2, kernel_size=3, rng=0)
        with pytest.raises(ValueError, match="expected"):
            conv(Tensor(np.ones((1, 10, 4))))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Conv1d(1, 1, kernel_size=0)


class TestMaxPool1d:
    def test_known_pooling(self):
        pool = MaxPool1d(2)
        x = Tensor(np.array([[[1.0], [5.0], [3.0], [2.0]]]))
        out = pool(x)
        np.testing.assert_allclose(out.data[0, :, 0], [5.0, 3.0])

    def test_gradient_routes_to_argmax(self):
        pool = MaxPool1d(2)
        x = Tensor(np.array([[[1.0], [5.0], [3.0], [2.0]]]), requires_grad=True)
        pool(x).sum().backward()
        np.testing.assert_allclose(x.grad[0, :, 0], [0.0, 1.0, 1.0, 0.0])

    def test_gradcheck(self):
        # Distinct values avoid tie ambiguity in finite differences.
        rng = np.random.default_rng(0)
        x_data = rng.permutation(24).astype(np.float64).reshape(2, 6, 2)
        pool = MaxPool1d(2)
        x = Tensor(x_data, requires_grad=True, dtype=np.float64)
        pool(x).sum().backward()

        def forward():
            return float(pool(Tensor(x_data, dtype=np.float64)).data.sum())

        np.testing.assert_allclose(x.grad, numerical_grad(forward, x_data),
                                   atol=1e-4)

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            MaxPool1d(2)(Tensor(np.ones((4, 4))))


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(4, 8, rng=0)
        out = lstm(Tensor(np.random.default_rng(0).normal(size=(3, 10, 4))))
        assert out.shape == (3, 10, 8)

    def test_gradcheck_small(self):
        layer_gradcheck(LSTM(3, 4, rng=1), (2, 5, 3), atol=3e-2)

    def test_gradcheck_reverse(self):
        rng = np.random.default_rng(2)
        lstm = LSTM(2, 3, rng=5)
        for p in lstm.parameters():
            p.data = p.data.astype(np.float64)
        x_data = rng.normal(size=(2, 4, 2))
        x = Tensor(x_data, requires_grad=True, dtype=np.float64)
        lstm(x, reverse=True).sum().backward()

        def forward():
            return float(
                lstm(Tensor(x_data, dtype=np.float64), reverse=True).data.sum()
            )

        np.testing.assert_allclose(x.grad, numerical_grad(forward, x_data),
                                   atol=3e-2, rtol=1e-3)

    def test_reverse_equals_forward_on_reversed_input(self):
        lstm = LSTM(3, 5, rng=7)
        x = np.random.default_rng(1).normal(size=(2, 6, 3)).astype(np.float32)
        fw = lstm(Tensor(x[:, ::-1].copy())).data
        bw = lstm(Tensor(x), reverse=True).data
        np.testing.assert_allclose(bw, fw[:, ::-1], atol=1e-6)

    def test_state_carries_information(self):
        """Final hidden state must depend on early inputs (memory)."""
        lstm = LSTM(1, 4, rng=3)
        x1 = np.zeros((1, 10, 1), dtype=np.float32)
        x2 = x1.copy()
        x2[0, 0, 0] = 5.0  # perturb only the first timestep
        h1 = lstm(Tensor(x1)).data[:, -1]
        h2 = lstm(Tensor(x2)).data[:, -1]
        assert np.abs(h1 - h2).max() > 1e-4

    def test_forget_bias_initialized_to_one(self):
        lstm = LSTM(2, 4, rng=0)
        H = 4
        np.testing.assert_allclose(lstm.bias.data[H : 2 * H], 1.0)

    def test_input_validation(self):
        lstm = LSTM(3, 4, rng=0)
        with pytest.raises(ValueError, match="expected"):
            lstm(Tensor(np.ones((2, 5, 7))))


class TestBiLSTM:
    def test_output_concatenates_directions(self):
        bi = BiLSTM(3, 4, rng=0)
        out = bi(Tensor(np.random.default_rng(0).normal(size=(2, 6, 3))))
        assert out.shape == (2, 6, 8)

    def test_final_states_shape(self):
        bi = BiLSTM(3, 4, rng=0)
        out = bi(Tensor(np.random.default_rng(0).normal(size=(2, 6, 3))))
        final = bi.final_states(out)
        assert final.shape == (2, 8)

    def test_final_states_pick_correct_ends(self):
        bi = BiLSTM(2, 3, rng=1)
        x = Tensor(np.random.default_rng(2).normal(size=(1, 5, 2)))
        out = bi(x)
        final = bi.final_states(out)
        np.testing.assert_allclose(final.data[0, :3], out.data[0, -1, :3])
        np.testing.assert_allclose(final.data[0, 3:], out.data[0, 0, 3:])

    def test_end_to_end_gradients_flow(self):
        bi = BiLSTM(2, 3, rng=4)
        x = Tensor(np.random.default_rng(5).normal(size=(2, 4, 2)),
                   requires_grad=True)
        bi.final_states(bi(x)).sum().backward()
        assert x.grad is not None
        for p in bi.parameters():
            assert p.grad is not None
