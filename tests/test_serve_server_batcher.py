"""Serving subsystem tests: micro-batcher, server, metrics, load generator."""

import numpy as np
import pytest

from repro.core.streaming import OnlineWorkloadClassifier
from repro.serve import (
    FleetLoadGenerator,
    Histogram,
    InferenceServer,
    MetricsRegistry,
    MicroBatcher,
    ServeConfig,
    SimulatedClock,
    StreamSession,
    SubmitResult,
)


class _CountingModel:
    """Deterministic classifier that counts its predict() invocations."""

    def __init__(self):
        self.calls = 0
        self.windows = 0

    def predict(self, X):
        X = np.asarray(X)
        self.calls += 1
        self.windows += X.shape[0]
        return (X[:, :, 0].mean(axis=1) > 0).astype(np.int64)


def _series(n, level=1.0, seed=0):
    rng = np.random.default_rng(seed)
    out = rng.normal(0, 0.1, size=(n, 7))
    out[:, 0] += level
    return out


def _requests(n, window=10, seed=0):
    session = StreamSession("j", window=window, hop=1)
    return session.push(_series(window + n - 1, seed=seed))[:n]


class TestMicroBatcher:
    def test_flushes_when_batch_fills(self):
        model = _CountingModel()
        batcher = MicroBatcher(model, max_batch=3, max_delay_s=1e9)
        reqs = _requests(3)
        assert batcher.submit(reqs[0]) == []
        assert batcher.submit(reqs[1]) == []
        done = batcher.submit(reqs[2])
        assert [c.request.seq for c in done] == [0, 1, 2]
        assert model.calls == 1 and model.windows == 3
        assert batcher.queued == 0

    def test_deadline_flush_with_fake_clock(self):
        clock = SimulatedClock()
        model = _CountingModel()
        batcher = MicroBatcher(model, max_batch=100, max_delay_s=5.0,
                               clock=clock)
        batcher.submit(_requests(1)[0])
        assert batcher.poll() == []          # deadline not reached
        clock.advance(4.9)
        assert batcher.poll() == []
        clock.advance(0.2)                   # oldest has now waited 5.1s
        done = batcher.poll()
        assert len(done) == 1
        assert done[0].waited_s == pytest.approx(5.1)
        assert model.calls == 1

    def test_drain_flushes_everything(self):
        model = _CountingModel()
        batcher = MicroBatcher(model, max_batch=4, max_delay_s=1e9)
        for req in _requests(6):
            batcher.submit(req)
        # 6 queued at max_batch 4: submit auto-flushed 4, drain gets 2.
        assert batcher.queued == 2
        done = batcher.drain()
        assert len(done) == 2
        assert batcher.queued == 0
        assert model.calls == 2

    def test_labels_routed_to_matching_request(self):
        model = _CountingModel()
        batcher = MicroBatcher(model, max_batch=2, max_delay_s=1e9)
        pos = StreamSession("pos", window=10, hop=1)
        neg = StreamSession("neg", window=10, hop=1)
        (rp,) = pos.push(_series(10, level=1.0))
        (rn,) = neg.push(_series(10, level=-1.0))
        done = batcher.submit(rp) + batcher.submit(rn)
        labels = {c.request.session_id: c.label for c in done}
        assert labels == {"pos": 1, "neg": 0}

    def test_bad_model_output_shape(self):
        class Bad:
            def predict(self, X):
                return np.zeros(99)

        batcher = MicroBatcher(Bad(), max_batch=1)
        with pytest.raises(ValueError, match="shape"):
            batcher.submit(_requests(1)[0])

    def test_validates_parameters(self):
        with pytest.raises(TypeError, match="predict"):
            MicroBatcher(object())
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(_CountingModel(), max_batch=0)


class TestInferenceServer:
    def _server(self, model=None, **overrides):
        clock = SimulatedClock()
        defaults = dict(window=10, hop=5, vote_window=3, max_batch=4,
                        flush_deadline_s=5.0, queue_capacity=1024)
        defaults.update(overrides)
        server = InferenceServer(model or _CountingModel(),
                                 ServeConfig(**defaults), clock=clock)
        return server, clock

    def test_end_to_end_emissions(self):
        server, clock = self._server()
        server.submit("a", _series(20, level=1.0))
        server.submit("b", _series(20, level=-1.0, seed=1))
        emissions = server.step()
        clock.advance(10.0)
        emissions += server.step()           # deadline flush of the rest
        by_job = {}
        for e in emissions:
            by_job.setdefault(e.job_id, []).append(e.prediction.label)
        assert set(by_job["a"]) == {1}
        assert set(by_job["b"]) == {0}
        assert server.n_sessions == 2

    def test_shed_oldest_under_tiny_queue(self):
        server, _ = self._server(queue_capacity=2, admission="shed-oldest")
        assert server.submit("a", _series(5))
        assert server.submit("b", _series(5))
        assert server.submit("c", _series(5))     # queue full: sheds "a"
        assert server.queue_depth == 2
        assert server.metrics.counter("ingress.shed").value == 1
        server.step()
        # "a"'s chunk never reached its session; b and c got theirs.
        assert server.n_sessions == 2

    def test_reject_policy_returns_false(self):
        server, _ = self._server(queue_capacity=1, admission="reject")
        assert server.submit("a", _series(5))
        assert not server.submit("b", _series(5))
        assert server.metrics.counter("ingress.rejected").value == 1
        assert server.queue_depth == 1

    def test_graceful_drain_and_reopen(self):
        model = _CountingModel()
        server, _ = self._server(model, max_batch=1000,
                                 flush_deadline_s=1e9)
        server.submit("a", _series(10))
        emissions = server.drain()               # forces the partial batch out
        assert len(emissions) == 1
        # Draining is a typed (falsy) refusal, not an exception — the
        # fleet router relies on telling it apart from overload.
        result = server.submit("a", _series(5))
        assert result is SubmitResult.DRAINING
        assert not result
        assert server.metrics.counter("ingress.draining").value == 1
        server.reopen()
        assert server.submit("a", _series(5)) is SubmitResult.ACCEPTED

    def test_end_session_orphans_inflight_windows(self):
        server, _ = self._server(max_batch=1000, flush_deadline_s=1e9)
        server.submit("a", _series(10))
        server.step()                            # window queued in batcher
        assert server.end_session("a")
        assert not server.end_session("a")
        emissions = server.drain()
        assert emissions == []
        assert server.metrics.counter("predictions.orphaned").value == 1

    def test_latency_measured_on_server_clock(self):
        server, clock = self._server(max_batch=1000, flush_deadline_s=3.0)
        server.submit("a", _series(10))
        server.step()                            # request created at t=0
        clock.advance(4.0)
        (emission,) = server.step()
        assert emission.latency_s == pytest.approx(4.0)
        summary = server.metrics.histogram("latency.window_s").summary()
        assert summary["count"] == 1

    def test_invalid_admission_policy(self):
        with pytest.raises(ValueError, match="admission"):
            ServeConfig(admission="drop-newest")


class TestBatchingBeatsPerSession:
    def test_fewer_predict_calls_than_online_classifiers(self):
        """The tentpole claim: micro-batched serving of M streams issues
        strictly fewer predict calls than M online classifiers, while
        emitting the same labels for the same telemetry."""
        streams = {
            j: _series(64, level=(1.0 if j % 2 else -1.0), seed=j)
            for j in range(6)
        }
        kwargs = dict(window=10, hop=5, vote_window=3)

        baseline = _CountingModel()
        expected = {}
        for j, data in streams.items():
            online = OnlineWorkloadClassifier(model=baseline, **kwargs)
            preds = []
            for i in range(0, data.shape[0], 8):
                preds.extend(online.push(data[i: i + 8]))
            expected[j] = preds

        batched = _CountingModel()
        clock = SimulatedClock()
        server = InferenceServer(
            batched,
            ServeConfig(max_batch=16, flush_deadline_s=1e9,
                        queue_capacity=1024, **kwargs),
            clock=clock,
        )
        emissions = []
        for i in range(0, 64, 8):
            for j, data in streams.items():
                server.submit(j, data[i: i + 8])
            emissions.extend(server.step())
        emissions.extend(server.drain())

        got = {}
        for e in emissions:
            got.setdefault(e.job_id, []).append(e.prediction)
        assert got == expected
        assert batched.windows == baseline.windows
        assert batched.calls < baseline.calls
        # All per-session overhead amortized: every predict call classified
        # several sessions' windows on average.
        assert baseline.calls / batched.calls > 2


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        snap = registry.as_dict()
        assert snap["c"] == 5 and snap["g"] == 2.5
        with pytest.raises(ValueError, match=">= 0"):
            registry.counter("c").inc(-1)

    def test_histogram_percentile_math(self):
        h = Histogram("lat")
        for v in range(1, 101):                  # 1..100
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(99) == 99
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100
        s = h.summary()
        assert (s["min"], s["max"]) == (1.0, 100.0)
        with pytest.raises(ValueError, match="percentile"):
            h.percentile(101)

    def test_histogram_empty_and_invalid(self):
        h = Histogram("lat")
        assert h.summary() == {"count": 0}
        assert np.isnan(h.percentile(50))
        with pytest.raises(ValueError, match="finite"):
            h.observe(float("inf"))

    def test_histogram_decimation_bounds_memory(self):
        h = Histogram("big", capacity=64)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert len(h._values) < 64
        # Percentiles stay approximately right after decimation.
        assert abs(h.percentile(50) - 500) < 50

    def test_histogram_extreme_percentiles_exact_after_decimation(self):
        # p0/p100 come from the exactly-tracked min/max, never from the
        # decimated reservoir — which very likely dropped both extremes.
        h = Histogram("lat", capacity=16)
        values = [500.0] * 200 + [1.0] + [500.0] * 200 + [9999.0]
        for i, v in enumerate(values):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 9999.0
        s = h.summary()
        assert (s["min"], s["max"]) == (1.0, 9999.0)

    def test_report_renders_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(1)
        registry.histogram("lat").observe(0.5)
        report = registry.report()
        for name in ("requests", "depth", "lat", "p95"):
            assert name in report


class TestFleetLoadGenerator:
    def _generator(self, **kwargs):
        series = [_series(40, level=1.0, seed=1),
                  _series(55, level=-1.0, seed=2)]
        defaults = dict(n_jobs=5, samples_per_tick=10, stagger_ticks=2, seed=9)
        defaults.update(kwargs)
        return FleetLoadGenerator(series, [1, 0], **defaults)

    def _run(self):
        gen = self._generator()
        server = InferenceServer(
            _CountingModel(),
            ServeConfig(window=10, hop=5, vote_window=3, max_batch=8,
                        flush_deadline_s=2.0, queue_capacity=64),
            clock=gen.clock,
        )
        return gen.run(server), server

    def test_deterministic_replay(self):
        r1, s1 = self._run()
        r2, s2 = self._run()
        assert r1.emissions == r2.emissions
        assert r1.n_ticks == r2.n_ticks
        assert s1.batcher.n_predict_calls == s2.batcher.n_predict_calls
        # batch.predict_wall_s is the one deliberately wall-clock metric
        # (rollout latency guardrails need real time); everything else
        # must replay bit-identically.
        m1, m2 = s1.metrics.as_dict(), s2.metrics.as_dict()
        wall1 = m1.pop("batch.predict_wall_s")
        wall2 = m2.pop("batch.predict_wall_s")
        assert m1 == m2
        assert wall1["count"] == wall2["count"]

    def test_report_contents(self):
        report, server = self._run()
        assert report.n_predictions > 0
        assert report.n_predictions == len(report.emissions)
        assert report.smoothed_accuracy() == 1.0
        assert set(report.final_smoothed()) <= set(range(5))
        assert report.sim_seconds == pytest.approx(
            report.n_ticks * 10 / 9.0, rel=1e-6)
        assert server.metrics.counter("predictions.emitted").value == \
            report.n_predictions

    def test_requires_shared_clock(self):
        gen = self._generator()
        server = InferenceServer(_CountingModel(),
                                 ServeConfig(window=10, hop=5))
        with pytest.raises(ValueError, match="clock"):
            gen.run(server)

    def test_max_samples_cap(self):
        gen = self._generator(max_samples_per_job=20)
        for j in range(gen.n_jobs):
            assert gen.job_stream(j).shape[0] <= 20

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetLoadGenerator([], n_jobs=1)
        with pytest.raises(ValueError, match="n_jobs"):
            FleetLoadGenerator([_series(10)], n_jobs=0)
        with pytest.raises(ValueError, match="labels"):
            FleetLoadGenerator([_series(10)], [1, 2], n_jobs=1)


class TestGaugeArithmetic:
    def test_inc_dec_default_and_sized(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.inc()
        g.inc(4)
        g.dec()
        g.dec(1.5)
        assert g.value == pytest.approx(2.5)

    def test_set_overrides_accumulation(self):
        g = MetricsRegistry().gauge("g")
        g.inc(10)
        g.set(3)
        g.dec(3)
        assert g.value == 0


class TestHistogramRunningExtremes:
    def test_min_max_survive_decimation(self):
        h = Histogram("lat", capacity=32)
        h.observe(123.0)                    # early max
        h.observe(-7.0)                     # early min
        for v in range(1000):               # forces repeated decimation
            h.observe(float(v % 50))
        s = h.summary()
        assert s["min"] == -7.0
        assert s["max"] == 123.0
        assert len(h._values) < 32          # reservoir decimated, extremes kept

    def test_extremes_track_every_observation(self):
        h = Histogram("lat")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert (h.summary()["min"], h.summary()["max"]) == (1.0, 3.0)


class _RecordingTap:
    """Tap that records every hook invocation."""

    def __init__(self):
        self.ingress = []
        self.batches = []
        self.ended = []

    def on_ingress(self, job_id, samples):
        self.ingress.append((job_id, samples.shape))

    def on_batch(self, completions):
        self.batches.append(len(completions))

    def end_session(self, job_id):
        self.ended.append(job_id)


class TestServerTaps:
    def _server(self, tap):
        clock = SimulatedClock()
        return InferenceServer(
            _CountingModel(),
            ServeConfig(window=10, hop=5, max_batch=4, flush_deadline_s=0.0),
            clock=clock, taps=[tap]), clock

    def test_taps_observe_ingress_batches_and_session_end(self):
        tap = _RecordingTap()
        server, clock = self._server(tap)
        server.submit("job", _series(20, seed=1))
        emissions = server.step()
        assert emissions                     # traffic actually flowed
        assert tap.ingress == [("job", (20, 7))]
        assert sum(tap.batches) == len(emissions)
        server.end_session("job")
        server.end_session("job")            # idempotent notify
        assert tap.ended == ["job", "job"]

    def test_ingress_only_tap_accepted(self):
        class _IngressOnly:
            def on_ingress(self, job_id, samples):
                pass

        server, _ = self._server(_IngressOnly())
        server.submit("j", _series(12, seed=2))
        assert server.step() is not None

    def test_tap_without_hooks_rejected(self):
        with pytest.raises(TypeError, match="on_ingress"):
            InferenceServer(_CountingModel(), taps=[object()])


class TestLoadgenDriftHook:
    def _series_pair(self):
        return [_series(60, level=1.0, seed=1), _series(60, level=-1.0, seed=2)]

    def test_injected_streams_deterministic_and_length_preserving(self):
        from repro.monitor import DriftInjection

        # clip=False: _series() telemetry is synthetic, not physical.
        drift = DriftInjection(start_sample=20, ramp_samples=10,
                               gain=1.5, sensors=(0,), clip=False)
        make = lambda: FleetLoadGenerator(
            self._series_pair(), [1, 0], n_jobs=4, samples_per_tick=10,
            seed=9, drift=drift)
        g1, g2 = make(), make()
        for job in range(4):
            clean = FleetLoadGenerator(
                self._series_pair(), [1, 0], n_jobs=4,
                samples_per_tick=10, seed=9).job_stream(job)
            np.testing.assert_array_equal(g1.job_stream(job),
                                          g2.job_stream(job))
            assert g1.job_stream(job).shape == clean.shape
            np.testing.assert_array_equal(g1.job_stream(job)[:20], clean[:20])
            assert not np.array_equal(g1.job_stream(job)[40:], clean[40:])

    def test_class_shift_splices_donor_of_other_class(self):
        from repro.monitor import DriftInjection

        drift = DriftInjection(start_sample=30, class_shift_fraction=0.5)
        gen = FleetLoadGenerator(
            self._series_pair(), [1, 0], n_jobs=4, samples_per_tick=10,
            seed=9, drift=drift)
        shifted = gen.class_shifted_jobs()
        assert len(shifted) == 2
        for job, donor in shifted.items():
            assert gen.true_label(job) != [1, 0][donor]
            np.testing.assert_array_equal(
                gen.job_stream(job)[30:],
                gen.series[donor][30:60])

    def test_class_shift_without_labels_rejected(self):
        from repro.monitor import DriftInjection

        with pytest.raises(ValueError, match="labels"):
            FleetLoadGenerator(
                self._series_pair(), None, n_jobs=2,
                drift=DriftInjection(class_shift_fraction=0.5))
