"""Tests for repro.utils.rng: determinism and stream independence."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import SeedSequenceFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_reproducible(self):
        a = as_generator(123).normal(size=5)
        b = as_generator(123).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).normal(size=5)
        b = as_generator(2).normal(size=5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_generator(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 7)) == 7

    def test_children_independent_of_sibling_draws(self):
        gens_a = spawn_generators(5, 3)
        gens_b = spawn_generators(5, 3)
        # Burn numbers from a sibling in one set only.
        gens_a[0].normal(size=100)
        np.testing.assert_array_equal(
            gens_a[2].normal(size=4), gens_b[2].normal(size=4)
        )

    def test_children_mutually_distinct(self):
        gens = spawn_generators(9, 4)
        draws = [g.normal(size=8) for g in gens]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count_ok(self):
        assert spawn_generators(0, 0) == []


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        f = SeedSequenceFactory(77)
        a = f.stream("noise").normal(size=6)
        b = f.stream("noise").normal(size=6)
        np.testing.assert_array_equal(a, b)

    def test_different_names_different_streams(self):
        f = SeedSequenceFactory(77)
        a = f.stream("noise").normal(size=6)
        b = f.stream("schedule").normal(size=6)
        assert not np.array_equal(a, b)

    def test_streams_order_independent(self):
        f1 = SeedSequenceFactory(3)
        f2 = SeedSequenceFactory(3)
        _ = f1.stream("a").normal(size=50)  # extra draws elsewhere
        np.testing.assert_array_equal(
            f1.stream("target").normal(size=4),
            f2.stream("target").normal(size=4),
        )

    def test_root_seed_changes_streams(self):
        a = SeedSequenceFactory(1).stream("x").normal(size=4)
        b = SeedSequenceFactory(2).stream("x").normal(size=4)
        assert not np.array_equal(a, b)

    def test_child_factory_deterministic(self):
        a = SeedSequenceFactory(10).child("job-1").stream("s").normal(size=3)
        b = SeedSequenceFactory(10).child("job-1").stream("s").normal(size=3)
        np.testing.assert_array_equal(a, b)

    def test_negative_root_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-5)

    def test_streams_dict(self):
        f = SeedSequenceFactory(4)
        d = f.streams(["a", "b"])
        assert set(d) == {"a", "b"}

    @given(st.integers(min_value=0, max_value=2**40),
           st.text(min_size=1, max_size=20))
    def test_property_stream_reproducible(self, seed, name):
        a = SeedSequenceFactory(seed).stream(name).integers(0, 1000, size=3)
        b = SeedSequenceFactory(seed).stream(name).integers(0, 1000, size=3)
        np.testing.assert_array_equal(a, b)
