"""Tracing subsystem tests: spans, sampling, sink/WAL, query, threading.

The end-to-end serve/fleet paths run tiny replays (few jobs, few ticks)
at ``sample=1.0`` so every request is traced; crash-path tracing with a
real SIGKILL lives in ``tests/test_fleet_crash.py``.
"""

import time

import numpy as np
import pytest

from repro.fleet import FleetRouter, FleetWorker
from repro.fleet.bench import _ThresholdModel
from repro.fleet.health import HeartbeatMonitor
from repro.resilience.faults import FaultSpec, InjectedFault, inject
from repro.serve import FleetLoadGenerator, ServeConfig, SimulatedClock
from repro.serve.server import InferenceServer
from repro.trace import Span, TraceContext, TraceQuery, TraceSink, Tracer, load_spans


def _span(trace_id, span_id, parent_id=None, name="stage", *, start=0.0,
          end=1.0, wall=0.0, status="ok", worker_id=None, annotations=None):
    return Span(trace_id, span_id, parent_id, name, worker_id,
                start, end, wall, status, annotations)


class TestTracer:
    def test_span_ids_are_component_namespaced_and_unique(self):
        sink = TraceSink()
        a = Tracer(sink, component="router")
        b = Tracer(sink, component="w0")
        ids = [a.root("t").span_id, a.root("t").span_id, b.root("t").span_id]
        assert len(set(ids)) == 3
        assert ids[0].startswith("router:") and ids[2].startswith("w0:")

    def test_child_links_to_parent_same_trace(self):
        tracer = Tracer(TraceSink())
        root = tracer.root("t1")
        child = tracer.child(root)
        assert child.trace_id == "t1"
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_emit_uses_tracer_worker_id_unless_overridden(self):
        sink = TraceSink()
        tracer = Tracer(sink, component="w3", worker_id="w3")
        ctx = tracer.root("t")
        tracer.emit(ctx, "a", start_s=0.0, end_s=1.0)
        tracer.emit(ctx, "b", start_s=0.0, end_s=1.0, worker_id="other")
        assert [s.worker_id for s in sink.spans()] == ["w3", "other"]

    def test_sample_validation(self):
        with pytest.raises(ValueError, match="sample"):
            Tracer(TraceSink(), sample=0.0)
        with pytest.raises(ValueError, match="sample"):
            Tracer(TraceSink(), sample=1.5)

    def test_begin_sampling_is_deterministic(self):
        a = Tracer(TraceSink(), sample=0.25)
        b = Tracer(TraceSink(), sample=0.25)
        keys = [f"j{i}.t{j}" for i in range(32) for j in range(4)]
        assert [a.sampled(k) for k in keys] == [b.sampled(k) for k in keys]
        for k in keys:
            ctx = a.begin(k)
            assert (ctx is not None) == a.sampled(k)
            if ctx is not None:
                assert ctx.trace_id == k and ctx.parent_id is None

    def test_sampled_fraction_tracks_nominal_rate(self):
        # CRC32 alone clusters short sequential keys (it is GF(2)-linear);
        # the finalizer mix must keep observed rates near nominal.
        for sample in (1.0 / 8.0, 1.0 / 16.0):
            tracer = Tracer(TraceSink(), sample=sample)
            got = sum(tracer.sampled(f"j{i}") for i in range(4096)) / 4096
            assert got == pytest.approx(sample, rel=0.35)

    def test_root_ignores_sampling(self):
        tracer = Tracer(TraceSink(), sample=1.0 / 65536.0)
        assert all(tracer.root(f"k{i}") is not None for i in range(16))

    def test_full_sample_skips_hashing(self):
        tracer = Tracer(TraceSink(), sample=1.0)
        assert tracer.sampled("anything")


class TestTraceSink:
    def test_capacity_evicts_oldest_and_counts_dropped(self):
        sink = TraceSink(capacity=8)
        for i in range(20):
            sink.append(_span("t", f"s:{i}"))
        assert len(sink) == 8
        assert sink.dropped == 12
        assert [s.span_id for s in sink.spans()] == [
            f"s:{i}" for i in range(12, 20)]

    def test_drain_empties_and_extend_merges(self):
        sink = TraceSink()
        sink.append(_span("t", "s:1"))
        shipped = sink.drain()
        assert len(sink) == 0 and [s.span_id for s in shipped] == ["s:1"]
        other = TraceSink()
        other.extend(shipped)
        assert [s.span_id for s in other.spans()] == ["s:1"]

    def test_wal_round_trip_preserves_every_field(self, tmp_path):
        sink = TraceSink(wal_dir=tmp_path, fsync=False)
        spans = [
            _span("t1", "a:1", None, "request", wall=1e-5,
                  annotations={"job": 3}),
            _span("t1", "a:2", "a:1", "route", status="failed",
                  worker_id="w0"),
        ]
        sink.extend(spans)
        assert sink.flush() == 2
        assert load_spans(tmp_path) == spans
        assert sink.n_staged == 0

    def test_auto_flush_at_threshold(self, tmp_path):
        sink = TraceSink(wal_dir=tmp_path, flush_every=4, fsync=False)
        for i in range(9):
            sink.append(_span("t", f"s:{i}"))
        # two automatic flushes of 4; one span still staged
        assert sink.n_staged == 1
        assert len(load_spans(tmp_path)) == 8

    def test_crash_mid_flush_keeps_earlier_batches_and_retries(self, tmp_path):
        sink = TraceSink(wal_dir=tmp_path, flush_every=1 << 30, fsync=False)
        first = [_span("t", f"a:{i}") for i in range(5)]
        second = [_span("t", f"b:{i}") for i in range(5)]
        sink.extend(first)
        sink.flush()
        sink.extend(second)
        with inject(FaultSpec("trace.sink.flush", mode="raise")):
            with pytest.raises(InjectedFault):
                sink.flush()
        # torn tail is invisible to recovery; the batch stayed staged
        assert load_spans(tmp_path) == first
        assert sink.n_staged == len(second)
        sink.flush()
        assert load_spans(tmp_path) == first + second

    def test_new_sink_over_torn_log_trims_then_appends(self, tmp_path):
        crashed = TraceSink(wal_dir=tmp_path, fsync=False)
        crashed.extend([_span("t", f"a:{i}") for i in range(3)])
        crashed.flush()
        crashed.extend([_span("t", "lost:1")])
        with inject(FaultSpec("trace.sink.flush", mode="raise")):
            with pytest.raises(InjectedFault):
                crashed.flush()
        # a fresh process opens the same dir: the torn frame is trimmed
        # on its first flush and never resurfaces
        fresh = TraceSink(wal_dir=tmp_path, fsync=False)
        fresh.extend([_span("t", "c:1")])
        fresh.flush()
        got = [s.span_id for s in load_spans(tmp_path)]
        assert got == ["a:0", "a:1", "a:2", "c:1"]


class TestTraceQuery:
    def _tree(self):
        return [
            _span("t", "g:1", None, "request", start=0.0, end=4.0, wall=2e-6),
            _span("t", "s:1", "g:1", "ingest", start=0.0, end=0.0, wall=9e-6),
            _span("t", "s:2", "g:1", "batch.wait", start=0.0, end=3.0),
            _span("t", "s:3", "g:1", "emit", start=3.0, end=4.0, wall=4e-6),
        ]

    def test_connectivity(self):
        query = TraceQuery(self._tree())
        assert query.is_connected("t")
        orphaned = self._tree() + [_span("t", "x:9", "missing", "route")]
        assert not TraceQuery(orphaned).is_connected("t")
        two_roots = self._tree() + [_span("t", "x:9", None, "request")]
        assert not TraceQuery(two_roots).is_connected("t")
        assert not TraceQuery([]).is_connected("t")

    def test_critical_path_follows_latest_ending_child(self):
        query = TraceQuery(self._tree())
        assert [s.span_id for s in query.critical_path("t")] == ["g:1", "s:3"]

    def test_stage_summary_self_time(self):
        # request's self wall time excludes its children's wall time
        summary = TraceQuery(self._tree()).stage_summary()
        assert summary["ingest"]["count"] == 1
        assert summary["ingest"]["p50_self_s"] == pytest.approx(9e-6)
        assert summary["request"]["total_self_s"] == pytest.approx(0.0)

    def test_failed_spans_and_formatting(self):
        spans = self._tree() + [
            _span("t", "s:4", "g:1", "route", status="failed",
                  worker_id="w0"),
        ]
        query = TraceQuery(spans)
        assert [s.span_id for s in query.failed_spans("t")] == ["s:4"]
        rendered = query.format_trace("t")
        assert "request" in rendered and "[failed]" in rendered
        assert "@w0" in rendered
        table = query.format_summary()
        assert "batch.wait" in table


class TestServeTracing:
    def _replay(self, *, traced):
        clock = SimulatedClock()
        series = [np.full((270, 7), 80.0), np.full((270, 7), 20.0)]
        gen = FleetLoadGenerator(series, n_jobs=3, samples_per_tick=90,
                                 max_samples_per_job=270, seed=3, clock=clock)
        sink = TraceSink() if traced else None
        server = InferenceServer(
            _ThresholdModel(),
            ServeConfig(window=90, hop=90, flush_deadline_s=0.0),
            clock=clock,
            tracer=Tracer(sink, component="srv", worker_id="srv")
            if traced else None,
        )
        tracer = Tracer(sink, component="gen") if traced else None
        report = gen.run(server, tracer=tracer)
        return report, sink

    def test_traced_replay_emits_identically_and_connects(self):
        traced_report, sink = self._replay(traced=True)
        untraced_report, _ = self._replay(traced=False)

        def key(report):
            return [(e.job_id, e.prediction.sample_index,
                     e.prediction.label) for e in report.emissions]

        assert key(traced_report) == key(untraced_report)
        query = TraceQuery(sink.spans())
        trace_ids = query.trace_ids()
        assert len(trace_ids) == 9           # 3 jobs x 3 chunks
        assert all(query.is_connected(t) for t in trace_ids)
        names = {s.name for s in sink.spans()}
        assert {"request", "ingest", "batch.wait", "predict", "emit"} <= names
        ingest = next(s for s in sink.spans() if s.name == "ingest")
        assert ingest.annotations["rows"] == 90

    def test_server_without_tracer_accepts_trace_contexts(self):
        clock = SimulatedClock()
        server = InferenceServer(
            _ThresholdModel(),
            ServeConfig(window=90, hop=90, flush_deadline_s=0.0),
            clock=clock,
        )
        ctx = Tracer(TraceSink()).root("t")
        assert server.submit(0, np.ones((90, 7)), trace=ctx)
        assert server.step() != [] or True   # processes without error

    def test_untraced_submit_records_no_spans(self):
        sink = TraceSink()
        clock = SimulatedClock()
        server = InferenceServer(
            _ThresholdModel(),
            ServeConfig(window=90, hop=90, flush_deadline_s=0.0),
            clock=clock, tracer=Tracer(sink, component="srv"),
        )
        server.submit(0, np.ones((90, 7)))
        server.step()
        assert sink.spans() == []


class TestFleetClockPropagation:
    """Satellite: one injected clock must reach every component."""

    def _worker(self, wid, clock):
        return FleetWorker(
            wid, _ThresholdModel(),
            ServeConfig(window=90, hop=90, flush_deadline_s=0.0),
            clock=clock,
        )

    def test_router_propagates_one_shared_clock_everywhere(self):
        clock = SimulatedClock()
        health = HeartbeatMonitor(lease_s=5.0)      # defaults to monotonic
        assert health.clock is time.monotonic
        router = FleetRouter(
            [self._worker("w0", clock), self._worker("w1", clock)],
            clock=clock, health=health,
        )
        holders = [router.clock, health.clock]
        for wid in router.worker_ids:
            worker = router.worker(wid)
            holders += [worker.clock, worker.server.clock,
                        worker.server.batcher.clock]
        assert all(h is clock for h in holders)
        assert time.monotonic not in holders

    def test_router_adopts_first_workers_clock_when_unset(self):
        clock = SimulatedClock()
        router = FleetRouter([self._worker("w0", clock)])
        assert router.clock is clock

    def test_added_worker_is_rebound_to_router_clock(self):
        clock = SimulatedClock()
        router = FleetRouter([self._worker("w0", clock)], clock=clock)
        stray = self._worker("w2", SimulatedClock())
        router.add_worker(stray)
        assert stray.clock is clock
        assert stray.server.clock is clock
        assert stray.server.batcher.clock is clock
