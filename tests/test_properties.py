"""Cross-cutting property-based tests (hypothesis) on core invariants.

These complement the per-module suites with randomized sweeps of the
algebraic properties the stack relies on: estimator contracts, metric
identities, preprocessing invariances, and solver feasibility.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.ensemble import RandomForestClassifier
from repro.ml.metrics import accuracy_score, confusion_matrix, f1_score
from repro.ml.preprocessing import PCA, StandardScaler, upper_triangle_covariance
from repro.ml.tree import DecisionTreeClassifier
from repro.nn.tensor import Tensor


def _labels(seed: int, n: int, k: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, k, n)


class TestMetricIdentities:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 60), st.integers(2, 6))
    def test_confusion_marginals(self, seed, n, k):
        y = _labels(seed, n, k)
        p = _labels(seed + 1, n, k)
        C = confusion_matrix(y, p, n_classes=k)
        assert C.sum() == n
        np.testing.assert_array_equal(C.sum(axis=1), np.bincount(y, minlength=k))
        np.testing.assert_array_equal(C.sum(axis=0), np.bincount(p, minlength=k))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 60), st.integers(2, 6))
    def test_accuracy_is_trace_ratio(self, seed, n, k):
        y = _labels(seed, n, k)
        p = _labels(seed + 1, n, k)
        C = confusion_matrix(y, p, n_classes=k)
        assert accuracy_score(y, p) == pytest.approx(np.trace(C) / n)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 40))
    def test_permuting_both_preserves_accuracy(self, seed, n):
        y = _labels(seed, n, 4)
        p = _labels(seed + 1, n, 4)
        perm = np.random.default_rng(seed + 2).permutation(n)
        assert accuracy_score(y, p) == pytest.approx(
            accuracy_score(y[perm], p[perm]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(6, 40))
    def test_f1_bounded(self, seed, n):
        y = _labels(seed, n, 3)
        p = _labels(seed + 1, n, 3)
        f1 = f1_score(y, p, average="macro")
        assert 0.0 <= f1 <= 1.0


class TestPreprocessingInvariances:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 30), st.integers(2, 6))
    def test_scaler_idempotent_on_standardized_data(self, seed, n, p):
        X = np.random.default_rng(seed).normal(size=(n, p))
        Z = StandardScaler().fit_transform(X)
        Z2 = StandardScaler().fit_transform(Z)
        np.testing.assert_allclose(Z, Z2, atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(8, 30), st.integers(3, 6))
    def test_pca_projection_contraction(self, seed, n, p):
        """Projection onto k < p components never increases the centered
        norm of a sample."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, p))
        pca = PCA(n_components=p - 1).fit(X)
        Z = pca.transform(X)
        centered = X - X.mean(axis=0)
        assert np.all(
            np.linalg.norm(Z, axis=1) <= np.linalg.norm(centered, axis=1) + 1e-8
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(8, 40))
    def test_covariance_permutation_invariance_over_time(self, seed, n, t):
        """Shuffling timesteps leaves the (unnormalized-mean) covariance
        features unchanged: they are order statistics of the window."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, t, 3))
        perm = rng.permutation(t)
        F1 = upper_triangle_covariance(X)
        F2 = upper_triangle_covariance(X[:, perm])
        np.testing.assert_allclose(F1, F2, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_covariance_scale_equivariance(self, seed):
        """Scaling a sensor by c scales its var by c^2 and covs by c."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(2, 30, 3))
        Xs = X.copy()
        Xs[:, :, 0] *= 2.0
        F = upper_triangle_covariance(X)
        Fs = upper_triangle_covariance(Xs)
        # Feature order for 3 sensors: (0,0),(0,1),(0,2),(1,1),(1,2),(2,2).
        np.testing.assert_allclose(Fs[:, 0], 4.0 * F[:, 0], rtol=1e-9)
        np.testing.assert_allclose(Fs[:, 1], 2.0 * F[:, 1], rtol=1e-9)
        np.testing.assert_allclose(Fs[:, 3], F[:, 3], rtol=1e-9)


class TestEstimatorContracts:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_tree_invariant_to_feature_scaling(self, seed):
        """CART splits depend only on feature order, so monotone rescaling
        must not change predictions."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        Xq = X.copy()
        Xq[:, 0] = X[:, 0] * 100.0 + 5.0
        a = DecisionTreeClassifier(max_depth=4).fit(X, y).predict(X)
        b = DecisionTreeClassifier(max_depth=4).fit(Xq, y).predict(Xq)
        np.testing.assert_array_equal(a, b)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_forest_probabilities_valid(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 3))
        y = rng.integers(0, 3, 40)
        clf = RandomForestClassifier(n_estimators=8, random_state=seed).fit(X, y)
        proba = clf.predict_proba(X)
        assert np.all(proba >= -1e-12)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_predict_matches_argmax_proba(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 3))
        y = rng.integers(0, 3, 40)
        clf = RandomForestClassifier(n_estimators=8, random_state=seed).fit(X, y)
        pred = clf.predict(X)
        expected = clf.classes_[np.argmax(clf.predict_proba(X), axis=1)]
        np.testing.assert_array_equal(pred, expected)


class TestTensorAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 5))
    def test_linearity_of_gradient(self, seed, n, m):
        """grad of (a·f + b·g) = a·grad f + b·grad g."""
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=(n, m))

        def grad_of(scale_f, scale_g):
            x = Tensor(x_data, requires_grad=True, dtype=np.float64)
            out = scale_f * (x * x).sum() + scale_g * x.sum()
            out.backward()
            return x.grad

        g_combined = grad_of(2.0, 3.0)
        g_f = grad_of(1.0, 0.0)
        g_g = grad_of(0.0, 1.0)
        np.testing.assert_allclose(g_combined, 2.0 * g_f + 3.0 * g_g,
                                   rtol=1e-6, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 6))
    def test_sum_of_parts_equals_whole(self, seed, n):
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=(n, 4))
        x = Tensor(x_data, requires_grad=True, dtype=np.float64)
        whole = x.sum()
        parts = x[: n // 2].sum() + x[n // 2 :].sum()
        np.testing.assert_allclose(whole.data, parts.data, rtol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(2, 5),
           st.integers(2, 5))
    def test_matmul_associativity_forward(self, seed, a, b, c):
        rng = np.random.default_rng(seed)
        A = Tensor(rng.normal(size=(a, b)), dtype=np.float64)
        B = Tensor(rng.normal(size=(b, c)), dtype=np.float64)
        C = Tensor(rng.normal(size=(c, a)), dtype=np.float64)
        left = ((A @ B) @ C).data
        right = (A @ (B @ C)).data
        np.testing.assert_allclose(left, right, rtol=1e-8, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sigmoid_tanh_identity(self, seed):
        """tanh(x) = 2·sigmoid(2x) − 1 must hold through the engine."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=8), dtype=np.float64)
        lhs = x.tanh().data
        rhs = (2.0 * (2.0 * x).sigmoid() - 1.0).data
        np.testing.assert_allclose(lhs, rhs, rtol=1e-8, atol=1e-10)
