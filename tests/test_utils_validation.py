"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_2d,
    check_3d,
    check_array,
    check_consistent_length,
    check_labels,
    check_positive,
    check_probability,
)


class TestCheckArray:
    def test_passthrough(self):
        X = np.ones((3, 2))
        out = check_array(X)
        assert out.shape == (3, 2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array(np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array(np.array([1.0, np.inf]))

    def test_allow_nan(self):
        out = check_array(np.array([1.0, np.nan]), allow_nan=True)
        assert np.isnan(out[1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_array(np.empty((0, 3)))

    def test_copy_flag(self):
        X = np.ones(4)
        assert check_array(X, copy=True) is not X

    def test_dtype_coercion(self):
        out = check_array([1, 2, 3])
        assert out.dtype == np.float64


class TestCheckDims:
    def test_2d_accepts(self):
        assert check_2d(np.ones((4, 3))).shape == (4, 3)

    def test_2d_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_2d(np.ones(5))

    def test_2d_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_2d(np.ones((2, 3, 4)))

    def test_3d_accepts(self):
        assert check_3d(np.ones((2, 3, 4))).shape == (2, 3, 4)

    def test_3d_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            check_3d(np.ones((3, 4)))


class TestConsistentLength:
    def test_ok(self):
        check_consistent_length(np.ones(3), np.zeros(3))

    def test_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_consistent_length(np.ones(3), np.zeros(4))

    def test_names_in_message(self):
        with pytest.raises(ValueError, match="X=3.*y=4"):
            check_consistent_length(np.ones(3), np.zeros(4), names=("X", "y"))


class TestCheckLabels:
    def test_int_labels(self):
        out = check_labels([0, 1, 2])
        assert out.dtype == np.int64

    def test_float_integral_ok(self):
        out = check_labels(np.array([0.0, 1.0]))
        assert out.dtype == np.int64

    def test_float_fractional_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            check_labels(np.array([0.5, 1.0]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            check_labels(np.zeros((2, 2), dtype=int))

    def test_n_samples_enforced(self):
        with pytest.raises(ValueError, match="3 labels for 5"):
            check_labels([0, 1, 2], n_samples=5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            check_labels(np.array([], dtype=int))


class TestScalars:
    def test_probability_ok(self):
        assert check_probability(0.5, name="p") == 0.5

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probability_bad(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, name="p")

    def test_positive_strict(self):
        assert check_positive(2, name="x") == 2
        with pytest.raises(ValueError):
            check_positive(0, name="x")

    def test_positive_nonstrict(self):
        assert check_positive(0, name="x", strict=False) == 0
        with pytest.raises(ValueError):
            check_positive(-1, name="x", strict=False)
