"""Tests for metrics and model selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    top_k_accuracy,
)
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    StratifiedKFold,
    cross_val_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([0, 1, 2], [0, 1, 2]) == 1.0

    def test_partial(self):
        assert accuracy_score([0, 1, 2, 3], [0, 1, 0, 0]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0, 1, 2])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_property_self_accuracy(self, labels):
        assert accuracy_score(labels, labels) == 1.0


class TestConfusion:
    def test_counts(self):
        C = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(C, [[1, 1], [0, 2]])

    def test_row_sums_are_class_counts(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 4, 100)
        p = rng.integers(0, 4, 100)
        C = confusion_matrix(y, p, n_classes=4)
        np.testing.assert_array_equal(C.sum(axis=1), np.bincount(y, minlength=4))

    def test_explicit_n_classes(self):
        C = confusion_matrix([0], [0], n_classes=5)
        assert C.shape == (5, 5)

    def test_labels_exceed_n_classes(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 7], [0, 1], n_classes=3)

    def test_trace_is_correct_count(self):
        y = [0, 1, 2, 2, 1]
        p = [0, 1, 0, 2, 0]
        C = confusion_matrix(y, p)
        assert np.trace(C) == 3


class TestPrecisionRecallF1:
    def test_perfect(self):
        p, r, f = precision_recall_f1([0, 1, 1], [0, 1, 1])
        np.testing.assert_allclose(p, 1.0)
        np.testing.assert_allclose(f, 1.0)

    def test_absent_class_zero_not_nan(self):
        p, r, f = precision_recall_f1([0, 0, 1], [0, 0, 0], n_classes=3)
        assert np.all(np.isfinite(p)) and np.all(np.isfinite(f))
        assert r[1] == 0.0

    def test_micro_f1_equals_accuracy(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 3, 60)
        p = rng.integers(0, 3, 60)
        assert f1_score(y, p, average="micro") == pytest.approx(
            accuracy_score(y, p))

    def test_macro_averages_present_classes(self):
        f = f1_score([0, 0, 1, 1], [0, 0, 1, 1], average="macro")
        assert f == 1.0

    def test_bad_average(self):
        with pytest.raises(ValueError):
            f1_score([0], [0], average="weighted")


class TestTopK:
    def test_top1_equals_accuracy(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        y = np.array([0, 1, 1])
        assert top_k_accuracy(y, scores, k=1) == pytest.approx(2 / 3)

    def test_topk_all_classes(self):
        scores = np.random.default_rng(0).normal(size=(10, 4))
        y = np.random.default_rng(1).integers(0, 4, 10)
        assert top_k_accuracy(y, scores, k=4) == 1.0

    def test_monotone_in_k(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(size=(50, 6))
        y = rng.integers(0, 6, 50)
        accs = [top_k_accuracy(y, scores, k=k) for k in range(1, 7)]
        assert all(a <= b + 1e-12 for a, b in zip(accs, accs[1:]))

    def test_bad_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy([0], np.ones((1, 3)), k=4)


class TestClassificationReport:
    def test_contains_classes_and_accuracy(self):
        rep = classification_report([0, 1, 1], [0, 1, 0],
                                    class_names=["cat", "dog"])
        assert "cat" in rep and "dog" in rep and "accuracy" in rep

    def test_insufficient_names(self):
        with pytest.raises(ValueError):
            classification_report([0, 3], [0, 3], class_names=["a"])


class TestKFold:
    def test_partition(self):
        X = np.arange(23)
        folds = list(KFold(5, random_state=0).split(X))
        assert len(folds) == 5
        all_val = np.sort(np.concatenate([v for _, v in folds]))
        np.testing.assert_array_equal(all_val, np.arange(23))

    def test_train_val_disjoint(self):
        X = np.arange(20)
        for tr, va in KFold(4).split(X):
            assert len(np.intersect1d(tr, va)) == 0

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(np.arange(3)))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestStratifiedKFold:
    def test_class_balance_per_fold(self):
        y = np.repeat([0, 1], [40, 20])
        for tr, va in StratifiedKFold(4, random_state=0).split(np.zeros(60), y):
            frac = np.mean(y[va] == 0)
            assert 0.55 < frac < 0.78  # population is 2/3

    def test_partition(self):
        y = np.repeat([0, 1, 2], 10)
        folds = list(StratifiedKFold(5).split(np.zeros(30), y))
        all_val = np.sort(np.concatenate([v for _, v in folds]))
        np.testing.assert_array_equal(all_val, np.arange(30))

    def test_rare_class_never_val_only(self):
        """A 2-member class must appear in training for folds that hold one
        of its members in validation."""
        y = np.array([0] * 30 + [1, 1])
        for tr, va in StratifiedKFold(3).split(np.zeros(32), y):
            if np.any(y[va] == 1):
                assert np.any(y[tr] == 1)


class TestParameterGrid:
    def test_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == len(grid) == 6
        assert {"a": 1, "b": "z"} in combos

    def test_list_of_grids(self):
        grid = ParameterGrid([{"a": [1, 2]}, {"b": [3]}])
        assert len(grid) == 3

    def test_empty_grid(self):
        assert list(ParameterGrid({})) == [{}]

    def test_rejects_scalar_values(self):
        with pytest.raises(TypeError):
            ParameterGrid({"a": 5})


class TestGridSearchCV:
    def test_finds_better_depth(self, blobs_split):
        from repro.ml.tree import DecisionTreeClassifier

        Xtr, ytr, Xte, yte = blobs_split
        search = GridSearchCV(
            DecisionTreeClassifier(),
            {"max_depth": [1, 8]},
            cv=3,
        )
        search.fit(Xtr, ytr)
        assert search.best_params_["max_depth"] == 8
        assert search.best_score_ > 0.8
        assert search.score(Xte, yte) > 0.8

    def test_cv_results_structure(self, blobs_split):
        from repro.ml.tree import DecisionTreeClassifier

        Xtr, ytr, _, _ = blobs_split
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [2, 4]}, cv=3
        ).fit(Xtr, ytr)
        res = search.cv_results_
        assert len(res["params"]) == 2
        assert res["fold_scores"].shape == (2, 3)
        assert res["mean_score"].shape == (2,)

    def test_refit_false(self, blobs_split):
        from repro.ml.tree import DecisionTreeClassifier

        Xtr, ytr, _, _ = blobs_split
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [3]}, cv=3, refit=False
        ).fit(Xtr, ytr)
        assert not hasattr(search, "best_estimator_")
        with pytest.raises(RuntimeError):
            search.predict(Xtr)

    def test_empty_grid_rejected(self, blobs_split):
        from repro.ml.tree import DecisionTreeClassifier

        Xtr, ytr, _, _ = blobs_split
        with pytest.raises(ValueError, match="empty"):
            GridSearchCV(DecisionTreeClassifier(), []).fit(Xtr, ytr)


class TestCrossValScore:
    def test_returns_fold_scores(self, blobs_split):
        from repro.ml.tree import DecisionTreeClassifier

        Xtr, ytr, _, _ = blobs_split
        scores = cross_val_score(DecisionTreeClassifier(max_depth=6), Xtr, ytr, cv=4)
        assert scores.shape == (4,)
        assert scores.mean() > 0.8
