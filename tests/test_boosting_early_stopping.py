"""Tests for boosting early stopping (the plateau finding as a rule)."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingClassifier


class TestEarlyStopping:
    def _data(self, seed=0):
        rng = np.random.default_rng(seed)
        n, p, k = 200, 5, 3
        centers = rng.normal(0, 2.0, size=(k, p))
        y = rng.integers(0, k, n)
        X = centers[y] + rng.normal(0, 1.5, size=(n, p))
        return X[:150], y[:150], X[150:], y[150:]

    def test_stops_before_cap(self):
        Xtr, ytr, Xte, yte = self._data()
        clf = GradientBoostingClassifier(n_estimators=100, max_depth=3)
        clf.fit(Xtr, ytr, eval_set=(Xte, yte), early_stopping_rounds=3)
        assert len(clf.trees_) < 100
        assert hasattr(clf, "best_iteration_")

    def test_keeps_best_round_trees(self):
        Xtr, ytr, Xte, yte = self._data(seed=1)
        clf = GradientBoostingClassifier(n_estimators=60, max_depth=3)
        clf.fit(Xtr, ytr, eval_set=(Xte, yte), early_stopping_rounds=4)
        assert len(clf.trees_) == clf.best_iteration_ + 1
        # Final model scores exactly the recorded best eval accuracy.
        best_recorded = max(clf.evals_result_["eval_accuracy"])
        assert clf.score(Xte, yte) == pytest.approx(best_recorded)

    def test_requires_eval_set(self):
        Xtr, ytr, _, _ = self._data()
        clf = GradientBoostingClassifier(n_estimators=10)
        with pytest.raises(ValueError, match="eval_set"):
            clf.fit(Xtr, ytr, early_stopping_rounds=2)

    def test_invalid_rounds(self):
        Xtr, ytr, Xte, yte = self._data()
        clf = GradientBoostingClassifier(n_estimators=10)
        with pytest.raises(ValueError, match="early_stopping_rounds"):
            clf.fit(Xtr, ytr, eval_set=(Xte, yte), early_stopping_rounds=0)

    def test_without_early_stopping_all_rounds_kept(self):
        Xtr, ytr, Xte, yte = self._data()
        clf = GradientBoostingClassifier(n_estimators=8, max_depth=3)
        clf.fit(Xtr, ytr, eval_set=(Xte, yte))
        assert len(clf.trees_) == 8
        assert not hasattr(clf, "best_iteration_")
