"""Public-API surface checks: every ``__all__`` name resolves, and every
public item carries a docstring (the documentation contract)."""

import ast
import importlib
import pathlib
import pkgutil

import pytest

import repro

SRC = pathlib.Path(repro.__file__).parent


def _all_modules():
    names = ["repro"]
    for mod in pkgutil.walk_packages([str(SRC)], prefix="repro."):
        if "__main__" in mod.name:
            continue
        names.append(mod.name)
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", _all_modules())
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


# Local closures (e.g. per-op ``backward`` functions) are implementation
# detail even though their names lack underscores; only top-level and
# class-level definitions are held to the docstring contract.
def _public_defs_without_docstrings():
    missing = []
    for path in SRC.rglob("*.py"):
        tree = ast.parse(path.read_text())
        scopes = [(tree, None)]
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, ast.ClassDef):
                scopes.append((node, node.name))
        for scope, _name in scopes:
            for node in ast.iter_child_nodes(scope):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        missing.append(
                            f"{path.relative_to(SRC.parent)}:{node.lineno} "
                            f"{node.name}"
                        )
    return missing


def test_every_public_item_documented():
    missing = _public_defs_without_docstrings()
    assert not missing, "undocumented public items:\n" + "\n".join(missing)
