"""Tests for the CSV release exporter."""

import csv

import numpy as np
import pytest

from repro.simcluster.cluster import ClusterSimulator
from repro.simcluster.export import (
    SCHEDULER_COLUMNS,
    export_job_telemetry,
    export_release,
    export_scheduler_log,
)
from repro.simcluster.sensors import GPU_SENSORS


@pytest.fixture(scope="module")
def release(tiny_sim_config):
    return ClusterSimulator(tiny_sim_config).generate()


class TestSchedulerExport:
    def test_header_and_rows(self, release, tmp_path):
        jobs, log = release
        path = export_scheduler_log(log, tmp_path / "scheduler.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert tuple(rows[0]) == SCHEDULER_COLUMNS
        assert len(rows) - 1 == len(log)

    def test_no_raw_usernames(self, release, tmp_path):
        """Anonymization: exported identities are hex hashes."""
        jobs, log = release
        path = export_scheduler_log(log, tmp_path / "scheduler.csv")
        with path.open() as handle:
            next(handle)
            for line in handle:
                user_hash = line.split(",")[1]
                assert not user_hash.startswith("user")
                int(user_hash, 16)  # must parse as hex


class TestTelemetryExport:
    def test_per_gpu_files(self, release, tmp_path):
        jobs, _ = release
        job = next(j for j in jobs if len(j.gpu_series) > 1)
        paths = export_job_telemetry(job, tmp_path)
        gpu_paths = [p for p in paths if "gpu" in p.parent.name]
        assert len(gpu_paths) == len(job.gpu_series)

    def test_gpu_csv_round_trip(self, release, tmp_path):
        jobs, _ = release
        job = jobs[0]
        paths = export_job_telemetry(job, tmp_path)
        gpu_path = paths[0]
        with gpu_path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["timestamp_s", *(s.name for s in GPU_SENSORS)]
        data = np.array([[float(v) for v in r[1:]] for r in rows[1:]])
        np.testing.assert_allclose(data, job.gpu_series[0].data, atol=1e-3)
        # Timestamps offset by the job's start time.
        t0 = float(rows[1][0])
        assert t0 == pytest.approx(job.record.start_time_s, abs=1e-3)

    def test_full_release_counts(self, release, tmp_path):
        jobs, log = release
        counts = export_release(jobs, log, tmp_path)
        assert counts["gpu_series"] == log.total_gpu_series()
        assert counts["cpu_series"] == len(jobs)
        assert (tmp_path / "scheduler.csv").exists()
        assert len(list((tmp_path / "gpu").glob("*.csv"))) == counts["gpu_series"]
